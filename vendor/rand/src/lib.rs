//! Offline stand-in for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic implementation of the APIs it consumes:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods (`gen`, `gen_bool`, `gen_range`) and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 feeding xoshiro256++ — not the ChaCha12 core of
//! the real `StdRng`, so seeded *streams* differ from upstream, but every
//! consumer in this repository only relies on determinism and uniformity, not
//! on a specific stream.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

mod dist {
    use super::RngCore;

    /// Types samplable from the "standard" distribution (`Rng::gen`).
    pub trait Standard: Sized {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl Standard for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 high bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// Ranges accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let unit = <$t as Standard>::sample(rng);
                    self.start + unit * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let unit = <$t as Standard>::sample(rng);
                    lo + unit * (hi - lo)
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);
}

pub use dist::{SampleRange, Standard};

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample(self) < p
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(2..=3);
            assert!((2..=3).contains(&w));
            let f = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_rate_tracks_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }
}
