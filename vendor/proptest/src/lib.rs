//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! exactly what the repository's property tests consume:
//!
//! * [`Strategy`] with `prop_map` and `boxed`
//! * strategies: numeric ranges, regex-lite string literals, tuples,
//!   [`collection::vec`], [`option::of`], [`sample::select`], [`any`]
//! * macros: [`proptest!`], [`prop_compose!`], [`prop_oneof!`],
//!   [`prop_assert!`], [`prop_assert_eq!`]
//! * [`ProptestConfig::with_cases`]
//!
//! Differences from upstream: cases are generated from a fixed deterministic
//! seed (stable across runs and machines), and failing cases are **not
//! shrunk** — the failing input is printed as generated.

use std::fmt;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic per-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index, so each test
        // function explores its own deterministic sequence.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Config and failure plumbing
// ---------------------------------------------------------------------------

/// Subset of proptest's `Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!` family macros.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of values for property tests (no shrinking).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy defined by a sampling closure (used by `prop_compose!`).
pub struct FnStrategy<F>(F);

impl<F, T> Strategy for FnStrategy<F>
where
    F: Fn(&mut TestRng) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Build a strategy from a sampling function.
pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

/// Uniform choice among boxed alternatives (used by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// `Just` — constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Numeric range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Regex-lite string strategies
// ---------------------------------------------------------------------------

/// One element of a regex-lite pattern: a set of candidate chars plus a
/// repetition range.
struct PatternPiece {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parse the subset of regex syntax the tests use: literal chars, `[...]`
/// classes with ranges, and `{n}` / `{m,n}` repetitions.
fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let mut pieces = Vec::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .expect("unclosed [ in pattern")
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    for c in lo..=hi {
                        set.push(char::from_u32(c).unwrap());
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed { in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition"),
                    hi.trim().parse().expect("bad repetition"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(PatternPiece {
            chars: set,
            min,
            max,
        });
    }
    pieces
}

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..n {
                out.push(piece.chars[rng.below(piece.chars.len())]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// collection / option / sample / any
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec` — vectors of `size` elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below(self.size.max - self.size.min);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    /// `prop::option::of` — `Some` three times out of four, like upstream.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T>(Vec<T>);

    /// `prop::sample::select` — uniform choice from a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident()($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::Strategy<Value = $ret> {
            $(let $arg = $strat;)+
            $crate::from_fn(move |rng| {
                $(let $arg = $crate::Strategy::sample(&$arg, rng);)+
                $body
            })
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $(let $arg = $strat;)+
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::sample(&$arg, &mut rng);)+
                    let inputs = $crate::__fmt_inputs!($($arg),+);
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {case} of {} failed: {e}\n inputs: {inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __fmt_inputs {
    ($($arg:ident),+) => {
        {
            let mut s = String::new();
            $(
                s.push_str(stringify!($arg));
                s.push_str(" = ");
                s.push_str(&format!("{:?}", $arg));
                s.push_str("; ");
            )+
            s
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirrors upstream's `prelude::prop` module tree.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::TestRng::for_case("string_pattern_shapes", 0);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,11}".sample(&mut rng);
            assert!((1..=12).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn vec_and_select_and_option() {
        let mut rng = crate::TestRng::for_case("vec_and_select_and_option", 1);
        let strat = prop::collection::vec(0usize..5, 2..6);
        let mut saw_none = false;
        let opt = prop::option::of(prop::sample::select(vec![7, 8]));
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            match opt.sample(&mut rng) {
                Some(x) => assert!(x == 7 || x == 8),
                None => saw_none = true,
            }
        }
        assert!(saw_none, "option::of must sometimes yield None");
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::TestRng::for_case("oneof_covers_all_arms", 2);
        let strat = prop_oneof![(0usize..1).prop_map(|_| 'a'), (0usize..1).prop_map(|_| 'b')];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(strat.sample(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro pipeline itself works end to end.
        #[test]
        fn macro_roundtrip(xs in prop::collection::vec(0u64..100, 1..8), flip in any::<bool>()) {
            prop_assert!(xs.len() < 8);
            let doubled: Vec<u64> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            prop_assert!(!flip || xs.iter().all(|&x| x * 2 < 200));
        }
    }

    prop_compose! {
        fn pair()(a in 0u64..10, b in 0u64..10) -> (u64, u64) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed_strategy_samples(p in pair()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }
    }
}
