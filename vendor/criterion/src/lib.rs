//! Offline stand-in for the subset of `criterion` used by this workspace.
//!
//! Implements `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros with a simple
//! wall-clock measurement loop: a warm-up phase, then `sample_size` samples
//! whose median per-iteration time is reported on stdout.
//!
//! No statistical analysis, plotting, or baseline management — the perfsnap
//! binary (`crates/bench/src/bin/perfsnap.rs`) is the repository's
//! machine-readable perf trajectory; these benches are for interactive runs.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a bench within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

/// Timing driver passed to bench closures.
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call, in nanoseconds.
    last_ns: f64,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up and estimate a per-sample iteration count targeting ~2 ms.
        let start = Instant::now();
        let mut warmup_iters = 0u64;
        while start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        let iters_per_sample = ((2e6 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.last_ns = samples[samples.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// The bench context handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            last_ns: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b);
        println!("{name:<40} time: {}", format_ns(b.last_ns));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benches.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let mut b = Bencher {
            last_ns: 0.0,
            sample_size: self.criterion.sample_size,
        };
        f(&mut b, input);
        println!("{label:<40} time: {}", format_ns(b.last_ns));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.0);
        let mut b = Bencher {
            last_ns: 0.0,
            sample_size: self.criterion.sample_size,
        };
        f(&mut b);
        println!("{label:<40} time: {}", format_ns(b.last_ns));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_positive_time() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
        });
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("a", 5).0, "a/5");
        assert_eq!(BenchmarkId::from_parameter(6000).0, "6000");
    }
}
