//! Deterministic fault injection for chaos testing the serving stack.
//!
//! A [`FaultPlan`] is parsed from a compact spec string (same flavour as the
//! tenant corpus specs), seeds a deterministic per-point RNG, and arms named
//! injection points threaded through the workspace:
//!
//! | point              | action when fired                                  |
//! |--------------------|----------------------------------------------------|
//! | `embed.latency`    | sleep `ms` inside `TextEmbedder::embed_into`       |
//! | `retrieve.latency` | sleep `ms` inside the GRED retriever seam          |
//! | `backend.error`    | translation returns a structured `internal` error  |
//! | `backend.panic`    | translation worker job panics                      |
//! | `snapshot.corrupt` | flip one byte of a snapshot file as it is read     |
//! | `conn.write_stall` | sleep `ms` before writing an HTTP response         |
//!
//! Grammar (clauses separated by `;`, parameters by `,`):
//!
//! ```text
//! seed=42;embed.latency:p=0.5,count=10,ms=25;backend.error:backend=transformer
//! ```
//!
//! * `seed=N` — RNG seed for the whole plan (default 0). Same spec + same
//!   request order ⇒ same faults, so chaos runs are replayable.
//! * `p=F` — per-call fire probability in `[0,1]` (default 1).
//! * `count=N` — total fire budget; once spent the point goes quiet
//!   (default 0 = unlimited).
//! * `ms=N` — delay for latency/stall points (default 25).
//! * `backend=ID` — only fire for this backend label (backend.* points).
//!
//! Hooks call [`fire`] (or [`fire_for`] with a backend label) through a
//! process-global armed plan. When nothing is armed the hook is a single
//! relaxed atomic load — the hot path pays nothing for the capability.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Named injection points, in stable index order (RNG streams key off it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    EmbedLatency,
    RetrieveLatency,
    BackendError,
    BackendPanic,
    SnapshotCorrupt,
    ConnWriteStall,
}

/// Every point, in index order.
pub const ALL_POINTS: [FaultPoint; 6] = [
    FaultPoint::EmbedLatency,
    FaultPoint::RetrieveLatency,
    FaultPoint::BackendError,
    FaultPoint::BackendPanic,
    FaultPoint::SnapshotCorrupt,
    FaultPoint::ConnWriteStall,
];

impl FaultPoint {
    /// Stable spec / metrics name.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::EmbedLatency => "embed.latency",
            FaultPoint::RetrieveLatency => "retrieve.latency",
            FaultPoint::BackendError => "backend.error",
            FaultPoint::BackendPanic => "backend.panic",
            FaultPoint::SnapshotCorrupt => "snapshot.corrupt",
            FaultPoint::ConnWriteStall => "conn.write_stall",
        }
    }

    pub fn from_name(name: &str) -> Option<FaultPoint> {
        ALL_POINTS.into_iter().find(|p| p.name() == name)
    }

    fn index(self) -> usize {
        self as usize
    }

    /// Whether `backend=` targeting applies to this point.
    fn backend_scoped(self) -> bool {
        matches!(self, FaultPoint::BackendError | FaultPoint::BackendPanic)
    }
}

/// What a fired point asks the hook site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep this long before proceeding.
    Delay(Duration),
    /// Fail with a structured internal error.
    Error,
    /// Panic (the worker pool must translate this into a fast structured
    /// error, never a hang — that contract is what chaos runs verify).
    Panic,
    /// Corrupt the bytes being read.
    Corrupt,
}

/// Parsed per-point configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// Fire probability per call, in `[0, 1]`.
    pub probability: f64,
    /// Total fire budget; 0 means unlimited.
    pub count: u64,
    /// Delay for latency/stall points, in milliseconds.
    pub delay_ms: u64,
    /// Restrict backend.* points to this backend label.
    pub backend: Option<String>,
}

impl Default for PointSpec {
    fn default() -> Self {
        PointSpec {
            probability: 1.0,
            count: 0,
            delay_ms: 25,
            backend: None,
        }
    }
}

/// Structured rejection of a malformed fault spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    Empty,
    UnknownPoint(String),
    DuplicatePoint(String),
    BadParam {
        clause: String,
        param: String,
        reason: String,
    },
    BadSeed(String),
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpecError::Empty => write!(f, "fault spec is empty"),
            FaultSpecError::UnknownPoint(p) => {
                write!(f, "unknown fault point {p:?} (valid: ")?;
                for (i, point) in ALL_POINTS.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", point.name())?;
                }
                write!(f, ")")
            }
            FaultSpecError::DuplicatePoint(p) => {
                write!(f, "fault point {p:?} appears more than once")
            }
            FaultSpecError::BadParam {
                clause,
                param,
                reason,
            } => {
                write!(f, "bad parameter {param:?} in clause {clause:?}: {reason}")
            }
            FaultSpecError::BadSeed(s) => write!(f, "bad seed {s:?}: expected u64"),
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// A parsed, not-yet-armed fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    points: [Option<PointSpec>; 6],
}

impl FaultPlan {
    /// Parse the spec grammar documented at the crate root.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan {
            seed: 0,
            points: std::array::from_fn(|_| None),
        };
        let mut saw_clause = false;
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            saw_clause = true;
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| FaultSpecError::BadSeed(seed.trim().to_string()))?;
                continue;
            }
            let (name, params) = match clause.split_once(':') {
                Some((name, params)) => (name.trim(), params),
                None => (clause, ""),
            };
            let point = FaultPoint::from_name(name)
                .ok_or_else(|| FaultSpecError::UnknownPoint(name.to_string()))?;
            if plan.points[point.index()].is_some() {
                return Err(FaultSpecError::DuplicatePoint(name.to_string()));
            }
            let mut spec = PointSpec::default();
            for param in params.split(',') {
                let param = param.trim();
                if param.is_empty() {
                    continue;
                }
                let bad = |reason: &str| FaultSpecError::BadParam {
                    clause: clause.to_string(),
                    param: param.to_string(),
                    reason: reason.to_string(),
                };
                let (key, value) = param
                    .split_once('=')
                    .ok_or_else(|| bad("expected key=value"))?;
                match (key.trim(), value.trim()) {
                    ("p", v) => {
                        let p: f64 = v.parse().map_err(|_| bad("expected float"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(bad("probability must be in [0, 1]"));
                        }
                        spec.probability = p;
                    }
                    ("count", v) => {
                        spec.count = v.parse().map_err(|_| bad("expected u64"))?;
                    }
                    ("ms", v) => {
                        spec.delay_ms = v.parse().map_err(|_| bad("expected u64"))?;
                    }
                    ("backend", v) => {
                        if !point.backend_scoped() {
                            return Err(bad("backend= only applies to backend.* points"));
                        }
                        if v.is_empty() {
                            return Err(bad("backend label is empty"));
                        }
                        spec.backend = Some(v.to_string());
                    }
                    _ => return Err(bad("unknown key (valid: p, count, ms, backend)")),
                }
            }
            plan.points[point.index()] = Some(spec);
        }
        if !saw_clause {
            return Err(FaultSpecError::Empty);
        }
        Ok(plan)
    }

    /// Points configured by this plan, in index order.
    pub fn configured(&self) -> impl Iterator<Item = (FaultPoint, &PointSpec)> {
        ALL_POINTS
            .into_iter()
            .filter_map(|p| self.points[p.index()].as_ref().map(|s| (p, s)))
    }

    pub fn point(&self, point: FaultPoint) -> Option<&PointSpec> {
        self.points[point.index()].as_ref()
    }

    /// Arm the plan: seed per-point RNG streams and fire budgets. The
    /// returned [`ArmedPlan`] is self-contained (tests drive it directly);
    /// [`arm`] installs one globally for the in-process hooks.
    pub fn armed(&self) -> ArmedPlan {
        ArmedPlan {
            points: std::array::from_fn(|i| {
                self.points[i].as_ref().map(|spec| ArmedPoint {
                    spec: spec.clone(),
                    // Distinct, well-mixed stream per point: a plain
                    // `seed + i` would correlate streams across points.
                    rng: AtomicU64::new(splitmix64(
                        self.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
                    )),
                    remaining: AtomicU64::new(if spec.count == 0 {
                        u64::MAX
                    } else {
                        spec.count
                    }),
                    fired: AtomicU64::new(0),
                })
            }),
        }
    }
}

struct ArmedPoint {
    spec: PointSpec,
    rng: AtomicU64,
    remaining: AtomicU64,
    fired: AtomicU64,
}

/// A live plan: deterministic RNG state plus remaining budgets.
pub struct ArmedPlan {
    points: [Option<ArmedPoint>; 6],
}

impl ArmedPlan {
    /// Should `point` fire now? Draws from the point's RNG stream (advancing
    /// it even when the budget is spent, so firing order stays a pure
    /// function of the call sequence), then spends one unit of budget.
    pub fn fire(&self, point: FaultPoint) -> Option<FaultAction> {
        self.fire_for(point, None)
    }

    /// Like [`ArmedPlan::fire`] but with the backend label at the hook site;
    /// points armed with `backend=` only fire on a matching label.
    pub fn fire_for(&self, point: FaultPoint, backend: Option<&str>) -> Option<FaultAction> {
        let armed = self.points[point.index()].as_ref()?;
        if let Some(want) = &armed.spec.backend {
            if backend != Some(want.as_str()) {
                return None;
            }
        }
        if armed.spec.probability < 1.0 {
            let draw = advance(&armed.rng);
            // 53 high bits → uniform f64 in [0, 1).
            let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
            if unit >= armed.spec.probability {
                return None;
            }
        }
        // Spend budget only on a positive draw.
        let spent = armed
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
            .is_ok();
        if !spent {
            return None;
        }
        armed.fired.fetch_add(1, Ordering::Relaxed);
        Some(match point {
            FaultPoint::EmbedLatency | FaultPoint::RetrieveLatency | FaultPoint::ConnWriteStall => {
                FaultAction::Delay(Duration::from_millis(armed.spec.delay_ms))
            }
            FaultPoint::BackendError => FaultAction::Error,
            FaultPoint::BackendPanic => FaultAction::Panic,
            FaultPoint::SnapshotCorrupt => FaultAction::Corrupt,
        })
    }

    /// Times `point` has actually fired.
    pub fn fired(&self, point: FaultPoint) -> u64 {
        self.points[point.index()]
            .as_ref()
            .map_or(0, |p| p.fired.load(Ordering::Relaxed))
    }

    /// Remaining fire budget for `point`; `u64::MAX` means unlimited.
    pub fn remaining(&self, point: FaultPoint) -> u64 {
        self.points[point.index()]
            .as_ref()
            .map_or(0, |p| p.remaining.load(Ordering::Relaxed))
    }

    /// True once every bounded point has spent its budget (unbounded points
    /// never exhaust).
    pub fn exhausted(&self) -> bool {
        self.points
            .iter()
            .flatten()
            .all(|p| p.spec.count == 0 || p.remaining.load(Ordering::Relaxed) == 0)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Advance an xorshift64* stream stored in an atomic; lock-free and
/// deterministic given the sequence of calls.
fn advance(state: &AtomicU64) -> u64 {
    let mut out = 0;
    let _ = state.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |mut x| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
        Some(x)
    });
    out
}

// ---------------------------------------------------------------------------
// Process-global arming: hooks compiled into the stack consult this. The
// fast path when nothing is armed is a single relaxed load.
// ---------------------------------------------------------------------------

static ANY_ARMED: AtomicBool = AtomicBool::new(false);

fn global() -> &'static Mutex<Option<Arc<ArmedPlan>>> {
    static GLOBAL: OnceLock<Mutex<Option<Arc<ArmedPlan>>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(None))
}

/// Install `plan` as the process-global armed plan, replacing any previous
/// one. Returns a handle for inspecting fired counts / budgets.
pub fn arm(plan: &FaultPlan) -> Arc<ArmedPlan> {
    let armed = Arc::new(plan.armed());
    *global().lock().unwrap() = Some(Arc::clone(&armed));
    ANY_ARMED.store(true, Ordering::Release);
    armed
}

/// Disarm the process-global plan; every hook reverts to the no-op fast path.
pub fn disarm() {
    ANY_ARMED.store(false, Ordering::Release);
    *global().lock().unwrap() = None;
}

/// Whether any plan is currently armed.
#[inline]
pub fn is_armed() -> bool {
    ANY_ARMED.load(Ordering::Relaxed)
}

/// Global hook: fire `point` against the armed plan, if any.
#[inline]
pub fn fire(point: FaultPoint) -> Option<FaultAction> {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    fire_slow(point, None)
}

/// Global hook with a backend label (for `backend=`-scoped points).
#[inline]
pub fn fire_for(point: FaultPoint, backend: &str) -> Option<FaultAction> {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    fire_slow(point, Some(backend))
}

#[cold]
fn fire_slow(point: FaultPoint, backend: Option<&str>) -> Option<FaultAction> {
    let armed = global().lock().unwrap().as_ref().map(Arc::clone)?;
    let action = armed.fire_for(point, backend);
    if action.is_some() {
        // A fired fault names itself on the span it fired inside, so a
        // stored trace explains the anomaly it caused (no-op untraced).
        t2v_trace::note(format!("fault:{}", point.name()));
    }
    action
}

/// Convenience for pure-latency hook sites: sleep if the point fires.
#[inline]
pub fn inject_delay(point: FaultPoint) {
    if let Some(FaultAction::Delay(d)) = fire(point) {
        std::thread::sleep(d);
    }
}

/// `(point name, fired count)` for every configured point of the armed plan,
/// for the metrics endpoint. `None` when nothing is armed.
pub fn global_fired() -> Option<Vec<(&'static str, u64)>> {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let armed = global().lock().unwrap().as_ref().map(Arc::clone)?;
    Some(
        ALL_POINTS
            .into_iter()
            .filter(|p| armed.points[p.index()].is_some())
            .map(|p| (p.name(), armed.fired(p)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan = FaultPlan::parse(
            "seed=42;embed.latency:p=0.5,count=10,ms=50;backend.error:backend=transformer",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        let embed = plan.point(FaultPoint::EmbedLatency).unwrap();
        assert_eq!(embed.probability, 0.5);
        assert_eq!(embed.count, 10);
        assert_eq!(embed.delay_ms, 50);
        assert_eq!(embed.backend, None);
        let backend = plan.point(FaultPoint::BackendError).unwrap();
        assert_eq!(backend.probability, 1.0);
        assert_eq!(backend.backend.as_deref(), Some("transformer"));
        assert!(plan.point(FaultPoint::SnapshotCorrupt).is_none());
        assert_eq!(plan.configured().count(), 2);
    }

    #[test]
    fn bare_point_defaults() {
        let plan = FaultPlan::parse("backend.panic").unwrap();
        let spec = plan.point(FaultPoint::BackendPanic).unwrap();
        assert_eq!(spec.probability, 1.0);
        assert_eq!(spec.count, 0);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert_eq!(FaultPlan::parse(""), Err(FaultSpecError::Empty));
        assert_eq!(FaultPlan::parse("  ;  "), Err(FaultSpecError::Empty));
        assert!(matches!(
            FaultPlan::parse("bogus.point"),
            Err(FaultSpecError::UnknownPoint(_))
        ));
        assert!(matches!(
            FaultPlan::parse("backend.error;backend.error:p=0.5"),
            Err(FaultSpecError::DuplicatePoint(_))
        ));
        assert!(matches!(
            FaultPlan::parse("embed.latency:p=1.5"),
            Err(FaultSpecError::BadParam { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("embed.latency:p=nan"),
            Err(FaultSpecError::BadParam { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("embed.latency:bogus=1"),
            Err(FaultSpecError::BadParam { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("embed.latency:p"),
            Err(FaultSpecError::BadParam { .. })
        ));
        // backend= targeting only makes sense on backend.* points.
        assert!(matches!(
            FaultPlan::parse("embed.latency:backend=gred"),
            Err(FaultSpecError::BadParam { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("seed=notanumber"),
            Err(FaultSpecError::BadSeed(_))
        ));
    }

    #[test]
    fn every_point_round_trips_by_name() {
        for point in ALL_POINTS {
            assert_eq!(FaultPoint::from_name(point.name()), Some(point));
            let plan = FaultPlan::parse(point.name()).unwrap();
            assert!(plan.point(point).is_some());
        }
        assert_eq!(FaultPoint::from_name("nope"), None);
    }

    #[test]
    fn deterministic_across_armings() {
        let plan = FaultPlan::parse("seed=7;backend.error:p=0.3").unwrap();
        let a = plan.armed();
        let b = plan.armed();
        let seq_a: Vec<bool> = (0..200)
            .map(|_| a.fire(FaultPoint::BackendError).is_some())
            .collect();
        let seq_b: Vec<bool> = (0..200)
            .map(|_| b.fire(FaultPoint::BackendError).is_some())
            .collect();
        assert_eq!(seq_a, seq_b, "same seed must replay the same faults");
        let fired = seq_a.iter().filter(|f| **f).count();
        assert!(
            (20..=100).contains(&fired),
            "p=0.3 over 200 draws fired {fired} times"
        );

        let other = FaultPlan::parse("seed=8;backend.error:p=0.3")
            .unwrap()
            .armed();
        let seq_c: Vec<bool> = (0..200)
            .map(|_| other.fire(FaultPoint::BackendError).is_some())
            .collect();
        assert_ne!(seq_a, seq_c, "different seeds should diverge");
    }

    #[test]
    fn count_budget_exhausts_and_reports() {
        let plan = FaultPlan::parse("backend.error:count=3").unwrap();
        let armed = plan.armed();
        assert!(!armed.exhausted());
        let fired = (0..10)
            .filter(|_| armed.fire(FaultPoint::BackendError).is_some())
            .count();
        assert_eq!(fired, 3);
        assert_eq!(armed.fired(FaultPoint::BackendError), 3);
        assert_eq!(armed.remaining(FaultPoint::BackendError), 0);
        assert!(armed.exhausted());
    }

    #[test]
    fn backend_scoping_filters_labels() {
        let plan = FaultPlan::parse("backend.error:backend=transformer").unwrap();
        let armed = plan.armed();
        assert_eq!(armed.fire_for(FaultPoint::BackendError, Some("gred")), None);
        assert_eq!(armed.fire(FaultPoint::BackendError), None);
        assert_eq!(
            armed.fire_for(FaultPoint::BackendError, Some("transformer")),
            Some(FaultAction::Error)
        );
    }

    #[test]
    fn actions_match_point_kind() {
        let plan = FaultPlan::parse("embed.latency:ms=5;backend.panic;snapshot.corrupt").unwrap();
        let armed = plan.armed();
        assert_eq!(
            armed.fire(FaultPoint::EmbedLatency),
            Some(FaultAction::Delay(Duration::from_millis(5)))
        );
        assert_eq!(
            armed.fire(FaultPoint::BackendPanic),
            Some(FaultAction::Panic)
        );
        assert_eq!(
            armed.fire(FaultPoint::SnapshotCorrupt),
            Some(FaultAction::Corrupt)
        );
        // Unconfigured points never fire.
        assert_eq!(armed.fire(FaultPoint::ConnWriteStall), None);
    }
}
