//! Property tests for corpus generation.

use proptest::prelude::*;
use t2v_corpus::{generate, CorpusConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Structural totals are hit exactly for any seed.
    #[test]
    fn exact_totals_any_seed(seed in 0u64..10_000) {
        let cfg = CorpusConfig::tiny(seed);
        let corpus = generate(&cfg);
        let tables: usize = corpus.databases.iter().map(|d| d.tables.len()).sum();
        let cols: usize = corpus.databases.iter().map(|d| d.column_count()).sum();
        prop_assert_eq!(corpus.databases.len(), cfg.num_dbs);
        prop_assert_eq!(tables, cfg.total_tables);
        prop_assert_eq!(cols, cfg.total_columns);
        for db in &corpus.databases {
            db.validate().unwrap();
        }
    }

    /// Every generated pair's DVQ parses, round-trips, and references only
    /// columns of its own database.
    #[test]
    fn pairs_are_well_formed_any_seed(seed in 0u64..10_000) {
        let corpus = generate(&CorpusConfig::tiny(seed));
        for ex in corpus.dev.iter().step_by(9) {
            let db = &corpus.databases[ex.db];
            let reparsed = t2v_dvq::parse(&ex.dvq_text).unwrap();
            prop_assert_eq!(&reparsed, &ex.dvq);
            let index = db.name_index();
            let mut ok = true;
            ex.dvq.visit_columns(&mut |c| {
                if c.column != "*" && !index.contains_key(&c.column.to_ascii_lowercase()) {
                    ok = false;
                }
            });
            prop_assert!(ok, "query references unknown column: {}", ex.dvq_text);
        }
    }

    /// Explicit NLQs mention their x column's literal name.
    #[test]
    fn explicit_questions_echo_schema(seed in 0u64..5_000) {
        let corpus = generate(&CorpusConfig::tiny(seed));
        let mut mentioned = 0;
        let mut total = 0;
        for ex in corpus.dev.iter().step_by(13) {
            total += 1;
            let db = &corpus.databases[ex.db];
            let xname = db.column_name(ex.spec.x.column());
            if ex.nlq.contains(xname) {
                mentioned += 1;
            }
        }
        prop_assert!(mentioned * 10 >= total * 9, "{}/{} mention x", mentioned, total);
    }
}
