//! # t2v-corpus — synthetic nvBench
//!
//! The paper's benchmark, nvBench, is derived from Spider and is not
//! redistributable here; this crate builds a *synthetic equivalent* with the
//! same structure and published statistics (see Figure 2 of the paper):
//!
//! * 104 databases / 552 tables / 3050 columns (exactly, by construction);
//! * a dev split of 1182 (NLQ, DVQ) pairs with the published chart-type
//!   histogram (891 bar / 88 pie / 51 line / 48 scatter / 60 stacked bar /
//!   11 grouping line / 33 grouping scatter) and hardness targets;
//! * NLQs that **explicitly mention** column names and DVQ keywords — the
//!   lexical-matching trap that makes models trained on nvBench brittle;
//! * a *no-cross-domain* train/dev relationship (the same databases appear in
//!   both), matching the split the paper evaluates on.
//!
//! Every pair carries its semantic [`spec::QuerySpec`] so downstream crates
//! can re-render the NLQ in a paraphrased style and rebuild the target DVQ
//! against a renamed schema — the two perturbation families of nvBench-Rob.

pub mod domains;
pub mod generator;
pub mod lexicon;
pub mod nlq;
pub mod schema;
pub mod spec;
pub mod stats;
pub mod values;

pub use generator::{gen_spec, generate, Corpus, CorpusConfig, Example};
pub use lexicon::{Concept, Lexicon};
pub use nlq::{render_nlq, NlMode};
pub use schema::{ColType, Column, ColumnId, Database, ForeignKey, NamePart, NamingStyle, Table};
pub use spec::{
    AxisSpec, CmpOp, JoinSpec, OrderSpec, OrderTarget, PredSpec, QuerySpec, StyleSpec, ValSpec,
};
pub use stats::CorpusStats;
