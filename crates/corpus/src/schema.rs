//! Relational schema model: databases, tables, columns, foreign keys.
//!
//! Every table and column name is built from *name parts* — references into
//! the concept lexicon plus literal words — so that perturbation can rename
//! consistently (swap the concept lexicalisation, keep the literals) and the
//! NLQ renderer can speak about a column without using its literal name.

use crate::lexicon::Lexicon;
use std::collections::HashMap;
use std::fmt;

/// Column data types, mirroring the three types nvBench distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColType {
    Number,
    Text,
    Date,
}

impl ColType {
    pub fn display(&self) -> &'static str {
        match self {
            ColType::Number => "number",
            ColType::Text => "text",
            ColType::Date => "date",
        }
    }
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display())
    }
}

/// Naming conventions observed in nvBench schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NamingStyle {
    /// `hire_date`
    LowerSnake,
    /// `HIRE_DATE`
    UpperSnake,
    /// `Hire_Date`
    CapSnake,
}

impl NamingStyle {
    pub const ALL: [NamingStyle; 3] = [
        NamingStyle::LowerSnake,
        NamingStyle::UpperSnake,
        NamingStyle::CapSnake,
    ];

    /// Render a word sequence under this convention.
    pub fn render(&self, words: &[String]) -> String {
        match self {
            NamingStyle::LowerSnake => words.join("_"),
            NamingStyle::UpperSnake => words
                .iter()
                .map(|w| w.to_ascii_uppercase())
                .collect::<Vec<_>>()
                .join("_"),
            NamingStyle::CapSnake => words
                .iter()
                .map(|w| {
                    let mut cs = w.chars();
                    match cs.next() {
                        Some(f) => f.to_ascii_uppercase().to_string() + cs.as_str(),
                        None => String::new(),
                    }
                })
                .collect::<Vec<_>>()
                .join("_"),
        }
    }
}

/// One part of a table/column name: either a reference to a lexicon concept
/// (renameable) or a literal word (stable across perturbation).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NamePart {
    Concept(String),
    Literal(String),
}

impl NamePart {
    pub fn concept(id: &str) -> Self {
        NamePart::Concept(id.to_string())
    }

    pub fn literal(w: &str) -> Self {
        NamePart::Literal(w.to_string())
    }
}

/// Expand name parts into words, choosing lexicalisation `alt` for concepts
/// (0 = primary form).
pub fn render_words(parts: &[NamePart], lex: &Lexicon, alt: usize) -> Vec<String> {
    let mut words = Vec::new();
    for p in parts {
        match p {
            NamePart::Concept(id) => {
                let c = lex
                    .get(id)
                    .unwrap_or_else(|| panic!("unknown concept {id}"));
                let a = &c.alts[alt % c.alts.len()];
                words.extend(a.iter().cloned());
            }
            NamePart::Literal(w) => words.push(w.clone()),
        }
    }
    words
}

/// Natural-language phrase for the parts ("date of hire").
pub fn render_phrase(parts: &[NamePart], lex: &Lexicon, alt: usize) -> String {
    render_words(parts, lex, alt).join(" ")
}

/// A column: concrete name + name parts + type.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub parts: Vec<NamePart>,
    pub ctype: ColType,
    /// True for identifier columns (never chosen as a chart measure).
    pub is_key: bool,
}

impl Column {
    /// The head concept of the column (the last concept part), used for
    /// semantic linking priority. `None` for all-literal names.
    pub fn head_concept(&self) -> Option<&str> {
        self.parts.iter().rev().find_map(|p| match p {
            NamePart::Concept(id) => Some(id.as_str()),
            NamePart::Literal(_) => None,
        })
    }

    /// All concept ids referenced by the name.
    pub fn concepts(&self) -> impl Iterator<Item = &str> {
        self.parts.iter().filter_map(|p| match p {
            NamePart::Concept(id) => Some(id.as_str()),
            NamePart::Literal(_) => None,
        })
    }
}

/// A table: concrete name + name parts + columns.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub parts: Vec<NamePart>,
    pub columns: Vec<Column>,
}

impl Table {
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// Foreign key: (table, column) → (table, column), by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForeignKey {
    pub from_table: usize,
    pub from_column: usize,
    pub to_table: usize,
    pub to_column: usize,
}

/// A stable reference to a column that survives renames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnId {
    pub table: usize,
    pub column: usize,
}

/// One database.
#[derive(Debug, Clone)]
pub struct Database {
    /// Database id, e.g. `hr_1`. Perturbed copies get a `_robust` suffix.
    pub id: String,
    pub tables: Vec<Table>,
    pub foreign_keys: Vec<ForeignKey>,
}

impl Database {
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.tables
            .iter()
            .position(|t| t.name.eq_ignore_ascii_case(name))
    }

    pub fn column(&self, id: ColumnId) -> &Column {
        &self.tables[id.table].columns[id.column]
    }

    pub fn column_name(&self, id: ColumnId) -> &str {
        &self.column(id).name
    }

    /// Total number of columns across tables.
    pub fn column_count(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }

    /// Render in the paper's prompt format (Appendix C):
    ///
    /// ```text
    /// # Table employees, columns = [ * , EMPLOYEE_ID , HIRE_DATE ]
    /// # Foreign_keys = [ job_history.JOB_ID = jobs.JOB_ID ]
    /// ```
    pub fn render_prompt_schema(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str("# Table ");
            out.push_str(&t.name);
            out.push_str(", columns = [ *");
            for c in &t.columns {
                out.push_str(" , ");
                out.push_str(&c.name);
            }
            out.push_str(" ]\n");
        }
        out.push_str("# Foreign_keys = [ ");
        let mut first = true;
        for fk in &self.foreign_keys {
            if !first {
                out.push_str(" , ");
            }
            first = false;
            let ft = &self.tables[fk.from_table];
            let tt = &self.tables[fk.to_table];
            out.push_str(&format!(
                "{}.{} = {}.{}",
                ft.name, ft.columns[fk.from_column].name, tt.name, tt.columns[fk.to_column].name
            ));
        }
        out.push_str(" ]\n");
        out
    }

    /// Map every column name (lowercased) to its [`ColumnId`]. Ambiguous
    /// names map to their first occurrence, matching SQL name resolution for
    /// the single-table queries that dominate the corpus.
    pub fn name_index(&self) -> HashMap<String, ColumnId> {
        let mut idx = HashMap::new();
        for (ti, t) in self.tables.iter().enumerate() {
            for (ci, c) in t.columns.iter().enumerate() {
                idx.entry(c.name.to_ascii_lowercase()).or_insert(ColumnId {
                    table: ti,
                    column: ci,
                });
            }
        }
        idx
    }

    /// Validate structural invariants (unique names, FK indices in range).
    pub fn validate(&self) -> Result<(), String> {
        let mut tnames: Vec<String> = self
            .tables
            .iter()
            .map(|t| t.name.to_ascii_lowercase())
            .collect();
        tnames.sort_unstable();
        let n = tnames.len();
        tnames.dedup();
        if tnames.len() != n {
            return Err(format!("duplicate table names in {}", self.id));
        }
        for t in &self.tables {
            let mut cnames: Vec<String> = t
                .columns
                .iter()
                .map(|c| c.name.to_ascii_lowercase())
                .collect();
            cnames.sort_unstable();
            let n = cnames.len();
            cnames.dedup();
            if cnames.len() != n {
                return Err(format!("duplicate column names in {}.{}", self.id, t.name));
            }
        }
        for fk in &self.foreign_keys {
            if fk.from_table >= self.tables.len()
                || fk.to_table >= self.tables.len()
                || fk.from_column >= self.tables[fk.from_table].columns.len()
                || fk.to_column >= self.tables[fk.to_table].columns.len()
            {
                return Err(format!("foreign key out of range in {}", self.id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_db() -> Database {
        Database {
            id: "hr_1".into(),
            tables: vec![
                Table {
                    name: "employees".into(),
                    parts: vec![NamePart::concept("employee")],
                    columns: vec![
                        Column {
                            name: "EMPLOYEE_ID".into(),
                            parts: vec![NamePart::concept("employee"), NamePart::concept("id")],
                            ctype: ColType::Number,
                            is_key: true,
                        },
                        Column {
                            name: "SALARY".into(),
                            parts: vec![NamePart::concept("salary")],
                            ctype: ColType::Number,
                            is_key: false,
                        },
                    ],
                },
                Table {
                    name: "jobs".into(),
                    parts: vec![NamePart::concept("job")],
                    columns: vec![Column {
                        name: "JOB_ID".into(),
                        parts: vec![NamePart::concept("job"), NamePart::concept("id")],
                        ctype: ColType::Number,
                        is_key: true,
                    }],
                },
            ],
            foreign_keys: vec![ForeignKey {
                from_table: 0,
                from_column: 0,
                to_table: 1,
                to_column: 0,
            }],
        }
    }

    #[test]
    fn naming_styles_render() {
        let words = vec!["hire".to_string(), "date".to_string()];
        assert_eq!(NamingStyle::LowerSnake.render(&words), "hire_date");
        assert_eq!(NamingStyle::UpperSnake.render(&words), "HIRE_DATE");
        assert_eq!(NamingStyle::CapSnake.render(&words), "Hire_Date");
    }

    #[test]
    fn render_words_swaps_lexicalisation() {
        let lex = Lexicon::builtin();
        let parts = vec![NamePart::concept("hire_date")];
        assert_eq!(render_words(&parts, &lex, 0).join("_"), "hire_date");
        assert_eq!(render_phrase(&parts, &lex, 1), "date of hire");
    }

    #[test]
    fn literals_survive_alt_changes() {
        let lex = Lexicon::builtin();
        let parts = vec![NamePart::concept("job"), NamePart::literal("history")];
        assert_eq!(render_words(&parts, &lex, 0).join("_"), "job_history");
        assert_eq!(render_words(&parts, &lex, 1).join("_"), "role_history");
    }

    #[test]
    fn head_concept_is_last_concept_part() {
        let c = Column {
            name: "EMPLOYEE_ID".into(),
            parts: vec![NamePart::concept("employee"), NamePart::concept("id")],
            ctype: ColType::Number,
            is_key: true,
        };
        assert_eq!(c.head_concept(), Some("id"));
        assert_eq!(c.concepts().count(), 2);
    }

    #[test]
    fn prompt_schema_format_matches_paper() {
        let s = toy_db().render_prompt_schema();
        assert!(s.contains("# Table employees, columns = [ * , EMPLOYEE_ID , SALARY ]"));
        assert!(s.contains("# Foreign_keys = [ employees.EMPLOYEE_ID = jobs.JOB_ID ]"));
    }

    #[test]
    fn name_index_is_case_insensitive() {
        let db = toy_db();
        let idx = db.name_index();
        assert_eq!(
            idx.get("salary"),
            Some(&ColumnId {
                table: 0,
                column: 1
            })
        );
    }

    #[test]
    fn validate_catches_duplicates() {
        let mut db = toy_db();
        assert!(db.validate().is_ok());
        db.tables[0].columns[1].name = "EMPLOYEE_ID".into();
        assert!(db.validate().is_err());
    }

    #[test]
    fn lookup_helpers() {
        let db = toy_db();
        assert!(db.table("EMPLOYEES").is_some());
        assert_eq!(db.table_index("jobs"), Some(1));
        assert_eq!(db.column_count(), 3);
        assert_eq!(
            db.column_name(ColumnId {
                table: 0,
                column: 1
            }),
            "SALARY"
        );
    }
}
