//! The concept lexicon: the semantic backbone shared by corpus generation,
//! perturbation and the simulated embedding model.
//!
//! A *concept* is an abstract meaning ("salary") with several lexicalisations
//! (`salary`, `wage`, `pay`, `earnings`). Database columns carry a concept id;
//! NLQ templates mention concepts; schema perturbation renames a column to a
//! *different* lexicalisation of the same concept; and the embedding model
//! maps (a sampled subset of) lexicalisations of one concept onto the same
//! semantic dimension — which is what makes cross-surface retrieval possible,
//! just as `text-embedding-3-large` does for the paper.

use std::collections::HashMap;

/// One concept and its alternative word sequences. The first alternative is
/// the *primary* form used when the original corpus names a column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Concept {
    /// Stable id: primary words joined by `_`.
    pub id: String,
    /// Alternative lexicalisations, each a sequence of lowercase words.
    pub alts: Vec<Vec<String>>,
}

impl Concept {
    fn new(alts: &[&[&str]]) -> Self {
        let alts: Vec<Vec<String>> = alts
            .iter()
            .map(|ws| ws.iter().map(|w| w.to_string()).collect())
            .collect();
        Concept {
            id: alts[0].join("_"),
            alts,
        }
    }

    /// The primary (original-corpus) word sequence.
    pub fn primary(&self) -> &[String] {
        &self.alts[0]
    }

    /// Natural-language rendering of alternative `i` ("date of hire").
    pub fn phrase(&self, i: usize) -> String {
        self.alts[i % self.alts.len()].join(" ")
    }
}

/// The full lexicon: concepts plus a word → concept inverted index.
#[derive(Debug, Clone)]
pub struct Lexicon {
    pub concepts: Vec<Concept>,
    by_id: HashMap<String, usize>,
    /// Full lexicalisation (words joined by space) → concept index.
    by_phrase: HashMap<String, usize>,
}

impl Lexicon {
    /// Build the built-in lexicon (deterministic).
    pub fn builtin() -> Self {
        let mut concepts = Vec::new();
        for spec in CONCEPT_SPECS {
            concepts.push(Concept::new(spec));
        }
        Lexicon::from_concepts(concepts)
    }

    /// Rebuild a lexicon from its concept list — the deserialisation path
    /// for persisted embedders. The inverted indexes are derived, so two
    /// lexicons with equal concept lists behave identically.
    pub fn from_concepts(concepts: Vec<Concept>) -> Self {
        let mut by_id = HashMap::new();
        let mut by_phrase = HashMap::new();
        for (i, c) in concepts.iter().enumerate() {
            by_id.insert(c.id.clone(), i);
            for alt in &c.alts {
                // Earlier concepts win phrase collisions; primary forms win
                // within a concept.
                by_phrase.entry(alt.join(" ")).or_insert(i);
            }
        }
        Lexicon {
            concepts,
            by_id,
            by_phrase,
        }
    }

    pub fn get(&self, id: &str) -> Option<&Concept> {
        self.by_id.get(id).map(|&i| &self.concepts[i])
    }

    /// Index of the concept with the given id (panics in debug on unknown id;
    /// generation code only uses ids from the lexicon).
    pub fn index_of(&self, id: &str) -> Option<usize> {
        self.by_id.get(id).copied()
    }

    /// Find the concept that a full phrase (words joined by a single space)
    /// lexicalises, if any.
    pub fn concept_of_phrase(&self, phrase: &str) -> Option<usize> {
        self.by_phrase.get(phrase).copied()
    }

    /// Find the concept whose lexicalisations include this single word.
    pub fn concept_of_word(&self, word: &str) -> Option<usize> {
        self.by_phrase.get(word).copied()
    }

    /// Like [`Lexicon::concept_of_phrase`], but tolerates a simple English
    /// plural on the final word ("employees" matches "employee").
    pub fn concept_of_phrase_stemmed(&self, phrase: &str) -> Option<usize> {
        if let Some(ci) = self.concept_of_phrase(phrase) {
            return Some(ci);
        }
        let mut words: Vec<&str> = phrase.split(' ').collect();
        let last = words.pop()?;
        for stripped in [last.strip_suffix("es"), last.strip_suffix('s')]
            .into_iter()
            .flatten()
        {
            if stripped.len() < 2 || last.ends_with("ss") {
                continue;
            }
            let mut candidate = words.join(" ");
            if !candidate.is_empty() {
                candidate.push(' ');
            }
            candidate.push_str(stripped);
            if let Some(ci) = self.concept_of_phrase(&candidate) {
                return Some(ci);
            }
        }
        None
    }

    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }
}

/// Static concept data: `&[alt0, alt1, ...]`, each alt a word sequence.
/// alt0 is the primary form used by original schemas/NLQs.
#[rustfmt::skip]
const CONCEPT_SPECS: &[&[&[&str]]] = &[
    // ----- generic entity attributes -----
    &[&["id"], &["identifier"], &["key"]],
    &[&["name"], &["title"], &["label"]],
    &[&["first", "name"], &["fname"], &["given", "name"]],
    &[&["last", "name"], &["lname"], &["surname"], &["family", "name"]],
    &[&["age"], &["years", "old"], &["age", "in", "years"]],
    &[&["sex"], &["gender"]],
    &[&["email"], &["mail", "address"], &["email", "address"]],
    &[&["phone"], &["telephone"], &["contact", "number"]],
    &[&["address"], &["location"], &["residence"]],
    &[&["city"], &["town"], &["municipality"]],
    &[&["country"], &["nation"], &["state"]],
    &[&["region"], &["area"], &["zone"]],
    &[&["status"], &["state", "flag"], &["condition"]],
    &[&["type"], &["kind"], &["category", "code"]],
    &[&["category"], &["class"], &["genre", "group"]],
    &[&["description"], &["details"], &["summary", "text"]],
    &[&["rank"], &["position", "order"], &["standing"]],
    &[&["rating"], &["score"], &["grade", "points"]],
    &[&["code"], &["abbreviation"], &["short", "code"]],
    &[&["comment"], &["note"], &["remark"]],
    // ----- money / quantity -----
    &[&["salary"], &["wage"], &["pay"], &["earnings"]],
    &[&["bonus"], &["premium"], &["incentive"]],
    &[&["price"], &["cost"], &["amount", "charged"]],
    &[&["budget"], &["allocated", "funds"], &["spending", "plan"]],
    &[&["revenue"], &["income"], &["turnover"]],
    &[&["profit"], &["gain"], &["net", "earnings"]],
    &[&["balance"], &["remaining", "funds"], &["account", "total"]],
    &[&["quantity"], &["amount"], &["count", "of", "units"]],
    &[&["capacity"], &["seating"], &["max", "occupancy"]],
    &[&["population"], &["inhabitants"], &["residents"]],
    &[&["weight"], &["mass"], &["heaviness"]],
    &[&["height"], &["stature"], &["tallness"]],
    &[&["length"], &["extent"], &["span"]],
    &[&["distance"], &["mileage"], &["range", "covered"]],
    &[&["speed"], &["velocity"], &["pace"]],
    &[&["duration"], &["elapsed", "time"], &["running", "time"]],
    &[&["area", "size"], &["surface", "area"], &["square", "footage"]],
    &[&["temperature"], &["degrees"], &["thermal", "reading"]],
    &[&["stock"], &["inventory"], &["units", "on", "hand"]],
    &[&["sales"], &["units", "sold"], &["purchases", "made"]],
    &[&["attendance"], &["audience", "size"], &["turnout"]],
    &[&["votes"], &["ballots"], &["support", "count"]],
    &[&["percentage"], &["percent"], &["share", "ratio"]],
    &[&["acc", "percent"], &["percentage", "of", "acc"], &["acc", "ratio"]],
    &[&["mileage"], &["miles", "driven"], &["odometer", "reading"]],
    &[&["horsepower"], &["engine", "power"], &["hp", "rating"]],
    // ----- dates -----
    &[&["date"], &["day", "recorded"], &["calendar", "date"]],
    &[&["hire", "date"], &["date", "of", "hire"], &["hiring", "date"], &["employment", "date"]],
    &[&["birth", "date"], &["date", "of", "birth"], &["birthday"]],
    &[&["start", "date"], &["begin", "date"], &["commencement", "date"]],
    &[&["end", "date"], &["finish", "date"], &["completion", "date"]],
    &[&["order", "date"], &["date", "ordered"], &["purchase", "date"]],
    &[&["release", "date"], &["launch", "date"], &["publication", "date"]],
    &[&["open", "date"], &["opening", "day"], &["inauguration", "date"]],
    &[&["due", "date"], &["deadline"], &["date", "due"]],
    &[&["year"], &["calendar", "year"], &["yr"]],
    &[&["openning", "year"], &["opening", "year"], &["year", "opened"]],
    &[&["founded", "year"], &["year", "founded"], &["establishment", "year"]],
    &[&["transaction", "date"], &["date", "of", "transaction"], &["payment", "date"]],
    &[&["checkin", "date"], &["arrival", "date"], &["date", "of", "checkin"]],
    // ----- people / org roles -----
    &[&["employee"], &["staff", "member"], &["worker"]],
    &[&["manager"], &["supervisor"], &["boss"]],
    &[&["department"], &["dept"], &["division"], &["unit"]],
    &[&["job"], &["role"], &["occupation"]],
    &[&["customer"], &["client"], &["patron"]],
    &[&["student"], &["pupil"], &["learner"]],
    &[&["teacher"], &["instructor"], &["tutor"]],
    &[&["professor"], &["faculty", "member"], &["academic"]],
    &[&["advisor"], &["mentor"], &["counselor"]],
    &[&["major"], &["field", "of", "study"], &["specialization"]],
    &[&["owner"], &["proprietor"], &["holder"]],
    &[&["driver"], &["chauffeur"], &["operator"]],
    &[&["pilot"], &["aviator"], &["captain"]],
    &[&["doctor"], &["physician"], &["medic"]],
    &[&["patient"], &["case"], &["admitted", "person"]],
    &[&["nurse"], &["caregiver"], &["medical", "assistant"]],
    &[&["author"], &["writer"], &["creator"]],
    &[&["artist"], &["performer"], &["musician"]],
    &[&["player"], &["athlete"], &["competitor"]],
    &[&["coach"], &["trainer"], &["team", "manager"]],
    &[&["member"], &["participant"], &["affiliate"]],
    &[&["host"], &["organizer"], &["presenter"]],
    // ----- domain objects -----
    &[&["movie"], &["film"], &["picture"]],
    &[&["cinema"], &["theater"], &["movie", "house"]],
    &[&["song"], &["track"], &["tune"]],
    &[&["album"], &["record"], &["release"]],
    &[&["book"], &["volume"], &["publication"]],
    &[&["course"], &["class", "offering"], &["module"]],
    &[&["exam"], &["test"], &["assessment"]],
    &[&["flight"], &["air", "trip"], &["journey"]],
    &[&["airport"], &["airfield"], &["terminal", "hub"]],
    &[&["aircraft"], &["airplane"], &["plane"]],
    &[&["ship"], &["vessel"], &["boat"]],
    &[&["train"], &["railway", "service"], &["rail", "line"]],
    &[&["station"], &["stop"], &["depot"]],
    &[&["car"], &["automobile"], &["vehicle"]],
    &[&["model"], &["variant"], &["version"]],
    &[&["maker"], &["manufacturer"], &["producer"]],
    &[&["product"], &["item"], &["good"]],
    &[&["order", "record"], &["purchase", "record"], &["sale", "entry"]],
    &[&["invoice"], &["bill"], &["receipt"]],
    &[&["payment"], &["settlement"], &["remittance"]],
    &[&["account"], &["ledger"], &["profile"]],
    &[&["branch"], &["outlet"], &["local", "office"]],
    &[&["store"], &["shop"], &["retail", "outlet"]],
    &[&["warehouse"], &["storehouse"], &["distribution", "center"]],
    &[&["hotel"], &["inn"], &["lodging"]],
    &[&["room"], &["chamber"], &["suite"]],
    &[&["apartment"], &["flat"], &["unit", "dwelling"]],
    &[&["building"], &["structure"], &["premises"]],
    &[&["restaurant"], &["diner"], &["eatery"]],
    &[&["dish"], &["meal"], &["menu", "item"]],
    &[&["hospital"], &["clinic"], &["medical", "center"]],
    &[&["treatment"], &["procedure"], &["therapy"]],
    &[&["medication"], &["drug"], &["prescription"]],
    &[&["team"], &["squad"], &["club"]],
    &[&["match", "game"], &["game"], &["fixture"]],
    &[&["stadium"], &["arena"], &["sports", "ground"]],
    &[&["tournament"], &["competition"], &["championship"]],
    &[&["league"], &["division", "tier"], &["conference"]],
    &[&["exhibition"], &["show"], &["display", "event"]],
    &[&["theme"], &["topic"], &["subject"]],
    &[&["museum"], &["gallery"], &["collection", "hall"]],
    &[&["artwork"], &["piece"], &["work", "of", "art"]],
    &[&["pet"], &["animal", "companion"], &["domestic", "animal"]],
    &[&["breed"], &["pedigree"], &["variety"]],
    &[&["farm"], &["ranch"], &["homestead"]],
    &[&["crop"], &["produce"], &["harvest", "yield"]],
    &[&["machine"], &["equipment"], &["apparatus"]],
    &[&["policy"], &["coverage", "plan"], &["insurance", "contract"]],
    &[&["claim"], &["filed", "case"], &["settlement", "request"]],
    &[&["premium", "amount"], &["policy", "cost"], &["coverage", "fee"]],
    &[&["shipment"], &["delivery"], &["consignment"]],
    &[&["route"], &["path"], &["itinerary"]],
    &[&["document"], &["file", "record"], &["paper"]],
    &[&["project"], &["initiative"], &["undertaking"]],
    &[&["task"], &["assignment"], &["work", "item"]],
    &[&["event"], &["happening"], &["occasion"]],
    &[&["venue"], &["site"], &["place", "held"]],
    &[&["ticket"], &["pass"], &["admission", "slip"]],
    &[&["review"], &["critique"], &["evaluation"]],
    &[&["channel"], &["network", "station"], &["broadcast", "outlet"]],
    &[&["program"], &["show", "series"], &["broadcast"]],
    &[&["device"], &["gadget"], &["appliance"]],
    &[&["browser"], &["web", "client"], &["user", "agent"]],
    &[&["platform"], &["operating", "system"], &["environment"]],
    &[&["commission", "pct"], &["commission", "rate"], &["commission", "percentage"]],
    &[&["manager", "id"], &["supervisor", "id"], &["manager", "identifier"]],
    &[&["happy", "hour"], &["hh"], &["discount", "hour"]],
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_lexicon_is_large_and_unique() {
        let lex = Lexicon::builtin();
        assert!(lex.len() >= 120, "lexicon too small: {}", lex.len());
        let mut ids: Vec<&str> = lex.concepts.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len(), "duplicate concept ids");
    }

    #[test]
    fn every_concept_has_at_least_two_alts() {
        let lex = Lexicon::builtin();
        for c in &lex.concepts {
            assert!(c.alts.len() >= 2, "concept {} has no synonyms", c.id);
        }
    }

    #[test]
    fn phrase_lookup_finds_synonyms() {
        let lex = Lexicon::builtin();
        let salary = lex.index_of("salary").unwrap();
        assert_eq!(lex.concept_of_phrase("wage"), Some(salary));
        assert_eq!(lex.concept_of_phrase("pay"), Some(salary));
        let hire = lex.index_of("hire_date").unwrap();
        assert_eq!(lex.concept_of_phrase("date of hire"), Some(hire));
    }

    #[test]
    fn from_concepts_rebuilds_equivalent_indexes() {
        let lex = Lexicon::builtin();
        let rebuilt = Lexicon::from_concepts(lex.concepts.clone());
        assert_eq!(rebuilt.len(), lex.len());
        for c in &lex.concepts {
            assert_eq!(rebuilt.index_of(&c.id), lex.index_of(&c.id));
        }
        for probe in ["wage", "date of hire", "wages", "zzz"] {
            assert_eq!(
                rebuilt.concept_of_phrase_stemmed(probe),
                lex.concept_of_phrase_stemmed(probe)
            );
        }
    }

    #[test]
    fn primary_form_is_first_alt() {
        let lex = Lexicon::builtin();
        let c = lex.get("hire_date").unwrap();
        assert_eq!(c.primary(), &["hire".to_string(), "date".to_string()][..]);
        assert_eq!(c.phrase(1), "date of hire");
    }
}
