//! Domain blueprints: themed templates from which concrete databases are
//! instantiated.
//!
//! Each domain lists candidate tables; each table lists a pool of candidate
//! columns (concept + type). The generator selects subsets so that corpus
//! totals land exactly on the paper's Figure 2 statistics (104 databases,
//! 552 tables, 3050 columns). Every table automatically receives a primary
//! key column `<table-concept>_id`, and foreign keys add `<target>_id`
//! columns to the referencing table.

use crate::schema::ColType;

/// Candidate column: optional prefix word (a concept id if the lexicon knows
/// it, otherwise a literal), head concept, and type.
#[derive(Debug, Clone, Copy)]
pub struct ColBp {
    pub prefix: &'static str,
    pub concept: &'static str,
    pub ctype: ColType,
}

const fn n(concept: &'static str) -> ColBp {
    ColBp {
        prefix: "",
        concept,
        ctype: ColType::Number,
    }
}

const fn t(concept: &'static str) -> ColBp {
    ColBp {
        prefix: "",
        concept,
        ctype: ColType::Text,
    }
}

const fn d(concept: &'static str) -> ColBp {
    ColBp {
        prefix: "",
        concept,
        ctype: ColType::Date,
    }
}

const fn np(prefix: &'static str, concept: &'static str) -> ColBp {
    ColBp {
        prefix,
        concept,
        ctype: ColType::Number,
    }
}

const fn tp(prefix: &'static str, concept: &'static str) -> ColBp {
    ColBp {
        prefix,
        concept,
        ctype: ColType::Text,
    }
}

/// Candidate table: head concept, optional literal suffix word, column pool.
#[derive(Debug, Clone, Copy)]
pub struct TableBp {
    pub concept: &'static str,
    pub literal: &'static str,
    pub cols: &'static [ColBp],
}

const fn tbl(concept: &'static str, cols: &'static [ColBp]) -> TableBp {
    TableBp {
        concept,
        literal: "",
        cols,
    }
}

const fn tbl_lit(concept: &'static str, literal: &'static str, cols: &'static [ColBp]) -> TableBp {
    TableBp {
        concept,
        literal,
        cols,
    }
}

/// A themed domain: name, candidate tables, candidate foreign keys
/// (from-table index → to-table index within `tables`).
#[derive(Debug, Clone, Copy)]
pub struct DomainBp {
    pub name: &'static str,
    pub tables: &'static [TableBp],
    pub fks: &'static [(usize, usize)],
}

#[rustfmt::skip]
pub const DOMAINS: &[DomainBp] = &[
    DomainBp {
        name: "hr",
        tables: &[
            tbl("employee", &[t("first_name"), t("last_name"), n("salary"), d("hire_date"), n("commission_pct"), n("manager_id"), n("age"), t("email")]),
            tbl("department", &[t("name"), n("budget"), t("city"), n("manager_id"), t("description")]),
            tbl("job", &[tp("job", "name"), np("minimum", "salary"), np("maximum", "salary"), t("category"), t("status")]),
            tbl_lit("job", "history", &[d("start_date"), d("end_date"), t("status"), t("comment"), n("duration")]),
            tbl("branch", &[t("name"), t("city"), n("budget"), d("open_date"), n("rank")]),
            tbl("review", &[d("date"), n("rating"), t("comment"), t("status"), n("votes")]),
        ],
        fks: &[(0, 1), (0, 2), (3, 0), (3, 2), (5, 0)],
    },
    DomainBp {
        name: "filmdom",
        tables: &[
            tbl("cinema", &[t("name"), n("capacity"), n("openning_year"), t("city"), n("rank"), t("status")]),
            tbl("movie", &[t("name"), d("release_date"), n("rating"), n("duration"), t("category"), n("budget")]),
            tbl("event", &[d("date"), n("attendance"), n("price"), t("status"), t("description")]),
            tbl("review", &[d("date"), n("rating"), t("comment"), n("votes")]),
            tbl("ticket", &[n("price"), d("date"), t("status"), t("code"), n("quantity")]),
            tbl("customer", &[t("first_name"), t("last_name"), n("age"), t("city"), t("email")]),
        ],
        fks: &[(2, 0), (2, 1), (3, 1), (4, 2), (3, 5)],
    },
    DomainBp {
        name: "college",
        tables: &[
            tbl("student", &[t("first_name"), t("last_name"), n("age"), t("sex"), t("major"), t("advisor"), tp("city", "code")]),
            tbl("course", &[t("name"), n("duration"), t("category"), n("price"), t("description")]),
            tbl("professor", &[t("first_name"), t("last_name"), n("salary"), n("age"), t("email")]),
            tbl("exam", &[d("date"), n("rating"), n("duration"), t("status")]),
            tbl("department", &[t("name"), n("budget"), t("city"), n("founded_year")]),
            tbl("event", &[d("date"), n("attendance"), t("venue"), t("description")]),
        ],
        fks: &[(0, 4), (1, 4), (2, 4), (3, 1), (5, 4)],
    },
    DomainBp {
        name: "pets",
        tables: &[
            tbl("pet", &[t("name"), t("type"), np("pet", "age"), n("weight"), t("breed"), n("height")]),
            tbl("owner", &[t("first_name"), t("last_name"), n("age"), t("city"), t("phone")]),
            tbl("treatment", &[t("name"), n("price"), d("date"), n("duration"), t("status")]),
            tbl("doctor", &[t("first_name"), t("last_name"), n("salary"), n("age")]),
            tbl("student", &[t("first_name"), t("last_name"), n("age"), t("sex"), t("major"), tp("city", "code")]),
            tbl("review", &[d("date"), n("rating"), t("comment")]),
        ],
        fks: &[(0, 1), (2, 0), (2, 3), (0, 4), (5, 3)],
    },
    DomainBp {
        name: "retail",
        tables: &[
            tbl("store", &[t("name"), t("city"), d("open_date"), n("area_size"), n("rank"), t("status")]),
            tbl("product", &[t("name"), n("price"), n("stock"), t("category"), t("maker"), n("weight")]),
            tbl("order_record", &[d("order_date"), n("quantity"), t("status"), n("price"), t("code")]),
            tbl("customer", &[t("first_name"), t("last_name"), t("email"), t("city"), n("age")]),
            tbl("employee", &[t("first_name"), n("salary"), d("hire_date"), n("age"), n("bonus")]),
            tbl("shipment", &[d("date"), n("weight"), n("distance"), t("status")]),
        ],
        fks: &[(1, 0), (2, 1), (2, 3), (4, 0), (5, 2)],
    },
    DomainBp {
        name: "aviation",
        tables: &[
            tbl("airport", &[t("name"), t("city"), t("country"), n("capacity"), n("rank")]),
            tbl("flight", &[t("code"), n("distance"), n("duration"), n("price"), d("date"), t("status")]),
            tbl("aircraft", &[t("model"), n("capacity"), n("speed"), n("age"), t("maker")]),
            tbl("pilot", &[t("first_name"), t("last_name"), n("age"), n("salary"), n("rank")]),
            tbl("ticket", &[n("price"), d("date"), t("status"), t("code")]),
            tbl("employee", &[t("first_name"), n("salary"), d("hire_date"), n("age")]),
        ],
        fks: &[(1, 0), (1, 2), (1, 3), (4, 1), (5, 0)],
    },
    DomainBp {
        name: "medcare",
        tables: &[
            tbl("hospital", &[t("name"), t("city"), n("capacity"), n("founded_year"), n("rank")]),
            tbl("doctor", &[t("first_name"), t("last_name"), n("salary"), n("age"), t("email")]),
            tbl("patient", &[t("first_name"), t("last_name"), n("age"), t("sex"), d("checkin_date")]),
            tbl("treatment", &[t("name"), n("price"), n("duration"), d("date"), t("status")]),
            tbl("medication", &[t("name"), n("price"), n("stock"), t("category")]),
            tbl("nurse", &[t("first_name"), t("last_name"), n("salary"), n("age")]),
        ],
        fks: &[(1, 0), (2, 0), (3, 2), (3, 1), (5, 0)],
    },
    DomainBp {
        name: "sports",
        tables: &[
            tbl("team", &[t("name"), t("city"), n("founded_year"), n("rank"), n("budget")]),
            tbl("player", &[t("first_name"), t("last_name"), n("age"), n("height"), n("weight"), n("salary")]),
            tbl("match_game", &[d("date"), n("attendance"), n("rating"), t("status"), n("votes")]),
            tbl("stadium", &[t("name"), n("capacity"), t("city"), d("open_date"), n("area_size")]),
            tbl("coach", &[t("first_name"), t("last_name"), n("age"), n("salary")]),
            tbl("tournament", &[t("name"), n("year"), t("country"), n("attendance")]),
        ],
        fks: &[(1, 0), (2, 3), (4, 0), (2, 6 - 1), (0, 3)],
    },
    DomainBp {
        name: "music",
        tables: &[
            tbl("artist", &[t("name"), t("country"), n("age"), t("category"), n("rank")]),
            tbl("album", &[t("name"), d("release_date"), n("sales"), n("rating"), n("price")]),
            tbl("song", &[t("name"), n("duration"), n("rating"), d("release_date"), n("sales")]),
            tbl("event", &[d("date"), n("attendance"), t("venue"), n("price"), t("status")]),
            tbl("member", &[t("first_name"), n("age"), t("email"), t("city")]),
            tbl("review", &[d("date"), n("rating"), t("comment"), n("votes")]),
        ],
        fks: &[(1, 0), (2, 1), (3, 0), (5, 2), (5, 4)],
    },
    DomainBp {
        name: "library",
        tables: &[
            tbl("book", &[t("name"), t("author"), d("release_date"), n("price"), t("category"), n("rating")]),
            tbl("member", &[t("first_name"), t("last_name"), n("age"), t("email"), t("city")]),
            tbl("document", &[d("due_date"), t("status"), d("date"), t("comment")]),
            tbl("branch", &[t("name"), t("city"), n("budget"), n("founded_year")]),
            tbl("employee", &[t("first_name"), n("salary"), d("hire_date"), n("age")]),
            tbl("event", &[d("date"), n("attendance"), t("description"), t("venue")]),
        ],
        fks: &[(2, 0), (2, 1), (0, 3), (4, 3), (5, 3)],
    },
    DomainBp {
        name: "dining",
        tables: &[
            tbl("restaurant", &[t("name"), t("city"), n("rating"), n("capacity"), d("open_date"), t("category")]),
            tbl("dish", &[t("name"), n("price"), t("category"), n("quantity"), t("description")]),
            tbl("review", &[d("date"), n("rating"), t("comment"), n("votes")]),
            tbl("customer", &[t("first_name"), n("age"), t("city"), t("email")]),
            tbl("employee", &[t("first_name"), n("salary"), d("hire_date"), n("bonus")]),
            tbl("happy_hour", &[d("date"), n("price"), n("duration"), t("status"), n("quantity")]),
        ],
        fks: &[(1, 0), (2, 0), (2, 3), (4, 0), (5, 0)],
    },
    DomainBp {
        name: "banking",
        tables: &[
            tbl("account", &[n("balance"), d("open_date"), t("type"), t("status"), n("rating")]),
            tbl("customer", &[t("first_name"), t("last_name"), n("age"), t("city"), t("email"), t("phone")]),
            tbl("branch", &[t("name"), t("city"), n("budget"), n("founded_year"), n("rank")]),
            tbl("payment", &[d("transaction_date"), n("quantity"), n("price"), t("status")]),
            tbl("employee", &[t("first_name"), n("salary"), d("hire_date"), n("bonus"), n("age")]),
            tbl("policy", &[n("premium_amount"), d("start_date"), d("end_date"), t("type"), t("status")]),
        ],
        fks: &[(0, 1), (0, 2), (3, 0), (4, 2), (5, 1)],
    },
    DomainBp {
        name: "housing",
        tables: &[
            tbl("apartment", &[n("area_size"), n("price"), n("quantity"), t("status"), t("type")]),
            tbl("building", &[t("name"), n("height"), t("city"), n("founded_year"), n("capacity")]),
            tbl("owner", &[t("first_name"), t("last_name"), n("age"), t("phone"), t("email")]),
            tbl("event", &[d("date"), n("attendance"), t("description"), t("status")]),
            tbl("payment", &[d("transaction_date"), n("price"), t("status"), t("code")]),
            tbl("review", &[d("date"), n("rating"), t("comment")]),
        ],
        fks: &[(0, 1), (0, 2), (3, 0), (4, 0), (5, 1)],
    },
    DomainBp {
        name: "broadcast",
        tables: &[
            tbl("channel", &[t("name"), t("country"), n("rating"), n("founded_year"), t("owner")]),
            tbl("program", &[t("name"), n("duration"), t("category"), d("release_date"), n("rating")]),
            tbl("event", &[d("date"), n("attendance"), t("description"), t("status")]),
            tbl("host", &[t("first_name"), t("last_name"), n("age"), n("salary")]),
            tbl("review", &[d("date"), n("rating"), t("comment"), n("votes")]),
            tbl("device", &[t("name"), t("maker"), n("price"), n("stock")]),
        ],
        fks: &[(1, 0), (2, 1), (3, 0), (4, 1), (2, 3)],
    },
    DomainBp {
        name: "logistics",
        tables: &[
            tbl("warehouse", &[t("name"), t("city"), n("capacity"), n("area_size"), t("status")]),
            tbl("shipment", &[d("order_date"), n("weight"), n("distance"), t("status"), n("price")]),
            tbl("driver", &[t("first_name"), n("age"), n("salary"), n("mileage"), t("phone")]),
            tbl("route", &[t("name"), n("distance"), n("duration"), t("status")]),
            tbl("customer", &[t("first_name"), t("last_name"), t("city"), t("email")]),
            tbl("machine", &[t("name"), n("price"), n("horsepower"), n("age"), t("maker")]),
        ],
        fks: &[(1, 0), (1, 2), (1, 3), (1, 4), (5, 0)],
    },
    DomainBp {
        name: "coverage",
        tables: &[
            tbl("policy", &[n("premium_amount"), d("start_date"), d("end_date"), t("type"), t("status"), n("acc_percent")]),
            tbl("claim", &[d("date"), n("price"), t("status"), t("description")]),
            tbl("customer", &[t("first_name"), t("last_name"), n("age"), t("city"), t("phone")]),
            tbl("branch", &[t("name"), t("city"), n("budget"), n("rank")]),
            tbl("employee", &[t("first_name"), n("salary"), n("commission_pct"), d("hire_date"), n("age")]),
            tbl("payment", &[d("transaction_date"), n("price"), t("status")]),
        ],
        fks: &[(0, 2), (1, 0), (4, 3), (5, 1), (0, 3)],
    },
    DomainBp {
        name: "agriculture",
        tables: &[
            tbl("farm", &[t("name"), n("area_size"), n("founded_year"), t("city"), t("status")]),
            tbl("crop", &[t("name"), n("quantity"), n("price"), t("category"), n("weight")]),
            tbl("machine", &[t("name"), n("price"), n("horsepower"), n("age"), t("maker")]),
            tbl("employee", &[t("first_name"), n("age"), n("salary"), d("hire_date")]),
            tbl("shipment", &[d("order_date"), n("weight"), n("distance"), t("status")]),
            tbl("event", &[d("date"), n("attendance"), t("description")]),
        ],
        fks: &[(1, 0), (2, 0), (3, 0), (4, 1), (5, 0)],
    },
    DomainBp {
        name: "heritage",
        tables: &[
            tbl("museum", &[t("name"), t("city"), n("founded_year"), n("attendance"), n("rank")]),
            tbl("exhibition", &[t("theme"), n("year"), n("attendance"), n("price"), t("status")]),
            tbl("artist", &[t("name"), t("country"), n("age"), t("category")]),
            tbl("artwork", &[t("name"), n("price"), t("category"), n("year"), n("rating")]),
            tbl("ticket", &[n("price"), d("date"), t("status"), t("code")]),
            tbl("review", &[d("date"), n("rating"), t("comment"), n("votes")]),
        ],
        fks: &[(1, 0), (3, 2), (4, 1), (5, 1), (3, 0)],
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;

    #[test]
    fn all_blueprint_concepts_exist_in_lexicon() {
        let lex = Lexicon::builtin();
        for dom in DOMAINS {
            for tb in dom.tables {
                assert!(
                    lex.index_of(tb.concept).is_some(),
                    "table concept {} of domain {} missing",
                    tb.concept,
                    dom.name
                );
                for cb in tb.cols {
                    assert!(
                        lex.index_of(cb.concept).is_some(),
                        "column concept {} of {}.{} missing",
                        cb.concept,
                        dom.name,
                        tb.concept
                    );
                }
            }
        }
    }

    #[test]
    fn every_domain_has_six_tables_and_valid_fks() {
        for dom in DOMAINS {
            assert!(
                dom.tables.len() >= 6,
                "domain {} has only {} tables",
                dom.name,
                dom.tables.len()
            );
            for (a, b) in dom.fks {
                assert!(*a < dom.tables.len() && *b < dom.tables.len() && a != b);
            }
        }
    }

    #[test]
    fn pools_are_large_enough_and_typed() {
        for dom in DOMAINS {
            for tb in dom.tables {
                assert!(
                    tb.cols.len() >= 3,
                    "{}:{} pool too small",
                    dom.name,
                    tb.concept
                );
                // Column concepts must be unique within a table pool.
                let mut ids: Vec<(&str, &str)> =
                    tb.cols.iter().map(|c| (c.prefix, c.concept)).collect();
                ids.sort_unstable();
                let before = ids.len();
                ids.dedup();
                assert_eq!(
                    before,
                    ids.len(),
                    "{}:{} duplicate concepts",
                    dom.name,
                    tb.concept
                );
            }
        }
    }

    #[test]
    fn domain_count_supports_104_databases() {
        assert!(DOMAINS.len() >= 16);
    }
}
