//! Semantic query specifications.
//!
//! A [`QuerySpec`] is the *meaning* of one benchmark pair, independent of any
//! concrete schema naming: columns are referenced by stable [`ColumnId`]s.
//! From a spec we can
//!
//! * build the target DVQ against the **original** schema (nvBench), and
//! * rebuild it against a **renamed** schema (nvBench-Rob ground truth),
//!
//! which is exactly how the paper derives perturbed targets from the original
//! benchmark.

use crate::schema::{ColumnId, Database};
use t2v_dvq::ast::*;

/// An axis: a plain column or an aggregate over a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisSpec {
    Col(ColumnId),
    Agg {
        func: AggFunc,
        distinct: bool,
        col: ColumnId,
    },
}

impl AxisSpec {
    pub fn column(&self) -> ColumnId {
        match self {
            AxisSpec::Col(c) => *c,
            AxisSpec::Agg { col, .. } => *col,
        }
    }

    pub fn aggregate(&self) -> Option<AggFunc> {
        match self {
            AxisSpec::Col(_) => None,
            AxisSpec::Agg { func, .. } => Some(*func),
        }
    }
}

/// A literal value in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum ValSpec {
    Num(i64),
    Text(String),
}

/// A predicate, schema-independent.
#[derive(Debug, Clone, PartialEq)]
pub enum PredSpec {
    /// `col op value` with semantic operator (spelling decided by style).
    Cmp {
        col: ColumnId,
        op: CmpOp,
        value: ValSpec,
    },
    Between {
        col: ColumnId,
        lo: i64,
        hi: i64,
    },
    Like {
        col: ColumnId,
        pattern: String,
    },
    NotNull {
        col: ColumnId,
    },
    /// `col = (SELECT sel FROM <sub_table> WHERE filter_col = value)`
    EqSubquery {
        col: ColumnId,
        sub_table: usize,
        sub_select: ColumnId,
        filter: Option<(ColumnId, ValSpec)>,
    },
    /// `col IN (SELECT sel FROM <sub_table>)`
    InSubquery {
        col: ColumnId,
        sub_table: usize,
        sub_select: ColumnId,
    },
}

/// Semantic comparison operator (spelling-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl PredSpec {
    pub fn column(&self) -> ColumnId {
        match self {
            PredSpec::Cmp { col, .. }
            | PredSpec::Between { col, .. }
            | PredSpec::Like { col, .. }
            | PredSpec::NotNull { col }
            | PredSpec::EqSubquery { col, .. }
            | PredSpec::InSubquery { col, .. } => *col,
        }
    }
}

/// Which axis an ORDER BY refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderTarget {
    X,
    Y,
}

/// Ordering spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderSpec {
    pub target: OrderTarget,
    pub dir: SortDir,
    /// Whether the direction keyword is written (style).
    pub explicit_dir: bool,
}

/// Join spec: the joined table plus the FK edge, by column ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinSpec {
    pub table: usize,
    pub left: ColumnId,
    pub right: ColumnId,
}

/// Per-example surface style (mirrors the style axes the Retuner handles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StyleSpec {
    pub null_style: NullStyle,
    pub noteq_bang: bool,
    pub use_aliases: bool,
}

impl Default for StyleSpec {
    fn default() -> Self {
        StyleSpec {
            null_style: NullStyle::CompareString,
            noteq_bang: true,
            use_aliases: true,
        }
    }
}

/// The full semantic specification of one benchmark pair.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    pub chart: ChartType,
    /// Base table index within the database.
    pub table: usize,
    pub x: AxisSpec,
    pub y: AxisSpec,
    /// Colour channel for stacked/grouping charts.
    pub color: Option<ColumnId>,
    pub join: Option<JoinSpec>,
    /// Predicates with their connective to the *previous* predicate (the
    /// first connective is ignored).
    pub preds: Vec<(BoolOp, PredSpec)>,
    pub group: Vec<ColumnId>,
    pub order: Option<OrderSpec>,
    pub limit: Option<u64>,
    pub bin: Option<(ColumnId, BinUnit)>,
    pub style: StyleSpec,
}

impl QuerySpec {
    /// Build the concrete DVQ against `db`'s current naming.
    pub fn to_dvq(&self, db: &Database) -> Dvq {
        let multi_table = self.join.is_some();
        let use_aliases = multi_table && self.style.use_aliases;
        let binding = |table: usize| -> Option<String> {
            if !multi_table {
                return None;
            }
            if use_aliases {
                Some(if table == self.table {
                    "T1".to_string()
                } else {
                    "T2".to_string()
                })
            } else {
                Some(db.tables[table].name.clone())
            }
        };
        let col = |id: ColumnId| -> ColumnRef {
            ColumnRef {
                qualifier: binding(id.table),
                column: db.column_name(id).to_string(),
            }
        };
        let axis = |a: &AxisSpec| -> SelectExpr {
            match a {
                AxisSpec::Col(c) => SelectExpr::Column(col(*c)),
                AxisSpec::Agg {
                    func,
                    distinct,
                    col: c,
                } => SelectExpr::Aggregate {
                    func: *func,
                    distinct: *distinct,
                    arg: col(*c),
                },
            }
        };

        let from = TableRef {
            name: db.tables[self.table].name.clone(),
            alias: if use_aliases { Some("T1".into()) } else { None },
        };
        let joins = self
            .join
            .iter()
            .map(|j| Join {
                table: TableRef {
                    name: db.tables[j.table].name.clone(),
                    alias: if use_aliases { Some("T2".into()) } else { None },
                },
                left: col(j.left),
                right: col(j.right),
            })
            .collect();

        let where_clause = if self.preds.is_empty() {
            None
        } else {
            let mut preds = self.preds.iter();
            let (_, first) = preds.next().expect("non-empty");
            Some(Condition {
                first: self.pred_to_ast(first, db, &col),
                rest: preds
                    .map(|(op, p)| (*op, self.pred_to_ast(p, db, &col)))
                    .collect(),
            })
        };

        let order_by = self.order.map(|o| OrderKey {
            expr: match o.target {
                OrderTarget::X => axis(&self.x),
                OrderTarget::Y => axis(&self.y),
            },
            dir: if o.explicit_dir || o.dir == SortDir::Desc {
                Some(o.dir)
            } else {
                None
            },
        });

        Dvq {
            chart: self.chart,
            x: axis(&self.x),
            y: axis(&self.y),
            from,
            joins,
            where_clause,
            group_by: self.group.iter().map(|g| col(*g)).collect(),
            order_by,
            limit: self.limit,
            bin: self.bin.map(|(c, unit)| Binning { col: col(c), unit }),
        }
    }

    fn pred_to_ast(
        &self,
        p: &PredSpec,
        db: &Database,
        col: &impl Fn(ColumnId) -> ColumnRef,
    ) -> Predicate {
        match p {
            PredSpec::Cmp { col: c, op, value } => Predicate::Compare {
                col: col(*c),
                op: match op {
                    CmpOp::Eq => CompareOp::Eq,
                    CmpOp::NotEq => CompareOp::NotEq {
                        bang: self.style.noteq_bang,
                    },
                    CmpOp::Lt => CompareOp::Lt,
                    CmpOp::Le => CompareOp::Le,
                    CmpOp::Gt => CompareOp::Gt,
                    CmpOp::Ge => CompareOp::Ge,
                },
                value: match value {
                    ValSpec::Num(n) => Value::num(n),
                    ValSpec::Text(t) => Value::text(t.clone()),
                },
            },
            PredSpec::Between { col: c, lo, hi } => Predicate::Between {
                col: col(*c),
                lo: Value::num(lo),
                hi: Value::num(hi),
            },
            PredSpec::Like { col: c, pattern } => Predicate::Like {
                col: col(*c),
                negated: false,
                pattern: pattern.clone(),
            },
            PredSpec::NotNull { col: c } => Predicate::NullCheck {
                col: col(*c),
                negated: true,
                style: self.style.null_style,
            },
            PredSpec::EqSubquery {
                col: c,
                sub_table,
                sub_select,
                filter,
            } => Predicate::Compare {
                col: col(*c),
                op: CompareOp::Eq,
                value: Value::Subquery(Box::new(SubQuery {
                    select: ColumnRef::bare(db.column_name(*sub_select)),
                    from: db.tables[*sub_table].name.clone(),
                    where_clause: filter.as_ref().map(|(fc, fv)| {
                        Condition::single(Predicate::Compare {
                            col: ColumnRef::bare(db.column_name(*fc)),
                            op: CompareOp::Eq,
                            value: match fv {
                                ValSpec::Num(n) => Value::num(n),
                                ValSpec::Text(t) => Value::text(t.clone()),
                            },
                        })
                    }),
                })),
            },
            PredSpec::InSubquery {
                col: c,
                sub_table,
                sub_select,
            } => Predicate::In {
                col: col(*c),
                negated: false,
                subquery: Box::new(SubQuery {
                    select: ColumnRef::bare(db.column_name(*sub_select)),
                    from: db.tables[*sub_table].name.clone(),
                    where_clause: None,
                }),
            },
        }
    }

    /// Every column id the spec references (for NLQ rendering / linking).
    pub fn referenced_columns(&self) -> Vec<ColumnId> {
        let mut out = vec![self.x.column(), self.y.column()];
        if let Some(c) = self.color {
            out.push(c);
        }
        for (_, p) in &self.preds {
            out.push(p.column());
        }
        for g in &self.group {
            out.push(*g);
        }
        if let Some((c, _)) = self.bin {
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;
    use crate::schema::*;
    use t2v_dvq::printer::Printer;

    fn toy_db() -> Database {
        let lex = Lexicon::builtin();
        let mk_col = |concept: &str, ctype: ColType, is_key: bool| {
            let parts = vec![NamePart::concept(concept)];
            Column {
                name: render_words(&parts, &lex, 0).join("_"),
                parts,
                ctype,
                is_key,
            }
        };
        Database {
            id: "hr_1".into(),
            tables: vec![
                Table {
                    name: "employees".into(),
                    parts: vec![NamePart::concept("employee")],
                    columns: vec![
                        mk_col("id", ColType::Number, true),
                        mk_col("salary", ColType::Number, false),
                        mk_col("hire_date", ColType::Date, false),
                        mk_col("city", ColType::Text, false),
                    ],
                },
                Table {
                    name: "departments".into(),
                    parts: vec![NamePart::concept("department")],
                    columns: vec![
                        mk_col("id", ColType::Number, true),
                        mk_col("name", ColType::Text, false),
                    ],
                },
            ],
            foreign_keys: vec![],
        }
    }

    fn cid(t: usize, c: usize) -> ColumnId {
        ColumnId {
            table: t,
            column: c,
        }
    }

    #[test]
    fn simple_spec_builds_expected_dvq() {
        let db = toy_db();
        let spec = QuerySpec {
            chart: ChartType::Bar,
            table: 0,
            x: AxisSpec::Col(cid(0, 3)),
            y: AxisSpec::Agg {
                func: AggFunc::Avg,
                distinct: false,
                col: cid(0, 1),
            },
            color: None,
            join: None,
            preds: vec![(
                BoolOp::And,
                PredSpec::Between {
                    col: cid(0, 1),
                    lo: 8000,
                    hi: 12000,
                },
            )],
            group: vec![cid(0, 3)],
            order: Some(OrderSpec {
                target: OrderTarget::X,
                dir: SortDir::Asc,
                explicit_dir: true,
            }),
            limit: None,
            bin: None,
            style: StyleSpec::default(),
        };
        let dvq = spec.to_dvq(&db);
        assert_eq!(
            Printer::default().print(&dvq),
            "Visualize BAR SELECT city , AVG(salary) FROM employees \
             WHERE salary BETWEEN 8000 AND 12000 GROUP BY city ORDER BY city ASC"
        );
    }

    #[test]
    fn rename_changes_dvq_consistently() {
        let mut db = toy_db();
        let spec = QuerySpec {
            chart: ChartType::Line,
            table: 0,
            x: AxisSpec::Col(cid(0, 2)),
            y: AxisSpec::Agg {
                func: AggFunc::Avg,
                distinct: false,
                col: cid(0, 1),
            },
            color: None,
            join: None,
            preds: vec![],
            group: vec![],
            order: None,
            limit: None,
            bin: Some((cid(0, 2), BinUnit::Year)),
            style: StyleSpec::default(),
        };
        let before = Printer::default().print(&spec.to_dvq(&db));
        assert!(before.contains("AVG(salary)"));
        db.tables[0].columns[1].name = "wage".into();
        let after = Printer::default().print(&spec.to_dvq(&db));
        assert!(after.contains("AVG(wage)"));
        assert!(after.contains("BIN hire_date BY YEAR"));
    }

    #[test]
    fn join_with_aliases_renders_t1_t2() {
        let db = toy_db();
        let spec = QuerySpec {
            chart: ChartType::Bar,
            table: 0,
            x: AxisSpec::Col(cid(0, 3)),
            y: AxisSpec::Agg {
                func: AggFunc::Count,
                distinct: false,
                col: cid(0, 3),
            },
            color: None,
            join: Some(JoinSpec {
                table: 1,
                left: cid(0, 0),
                right: cid(1, 0),
            }),
            preds: vec![(
                BoolOp::And,
                PredSpec::Cmp {
                    col: cid(1, 1),
                    op: CmpOp::Eq,
                    value: ValSpec::Text("Finance".into()),
                },
            )],
            group: vec![cid(0, 3)],
            order: None,
            limit: None,
            bin: None,
            style: StyleSpec::default(),
        };
        let s = Printer::default().print(&spec.to_dvq(&db));
        assert!(s.contains("FROM employees AS T1 JOIN departments AS T2 ON T1.id = T2.id"));
        assert!(s.contains("WHERE T2.name = 'Finance'"));

        let mut no_alias = spec.clone();
        no_alias.style.use_aliases = false;
        let s2 = Printer::default().print(&no_alias.to_dvq(&db));
        assert!(s2.contains("FROM employees JOIN departments ON employees.id = departments.id"));
    }

    #[test]
    fn style_spec_controls_null_and_noteq() {
        let db = toy_db();
        let mut spec = QuerySpec {
            chart: ChartType::Bar,
            table: 0,
            x: AxisSpec::Col(cid(0, 3)),
            y: AxisSpec::Col(cid(0, 1)),
            color: None,
            join: None,
            preds: vec![
                (BoolOp::And, PredSpec::NotNull { col: cid(0, 1) }),
                (
                    BoolOp::Or,
                    PredSpec::Cmp {
                        col: cid(0, 0),
                        op: CmpOp::NotEq,
                        value: ValSpec::Num(40),
                    },
                ),
            ],
            group: vec![],
            order: None,
            limit: None,
            bin: None,
            style: StyleSpec::default(),
        };
        let s = Printer::default().print(&spec.to_dvq(&db));
        assert!(s.contains("salary != \"null\""));
        assert!(s.contains("id != 40"));
        spec.style.null_style = NullStyle::IsNull;
        spec.style.noteq_bang = false;
        let s2 = Printer::default().print(&spec.to_dvq(&db));
        assert!(s2.contains("salary IS NOT NULL"));
        assert!(s2.contains("id <> 40"));
    }

    #[test]
    fn implicit_asc_suppresses_keyword() {
        let db = toy_db();
        let spec = QuerySpec {
            chart: ChartType::Scatter,
            table: 0,
            x: AxisSpec::Col(cid(0, 1)),
            y: AxisSpec::Col(cid(0, 0)),
            color: None,
            join: None,
            preds: vec![],
            group: vec![],
            order: Some(OrderSpec {
                target: OrderTarget::X,
                dir: SortDir::Asc,
                explicit_dir: false,
            }),
            limit: None,
            bin: None,
            style: StyleSpec::default(),
        };
        let s = Printer::default().print(&spec.to_dvq(&db));
        assert!(s.ends_with("ORDER BY salary"));
    }

    #[test]
    fn referenced_columns_cover_all_slots() {
        let db = toy_db();
        let spec = QuerySpec {
            chart: ChartType::StackedBar,
            table: 0,
            x: AxisSpec::Col(cid(0, 3)),
            y: AxisSpec::Agg {
                func: AggFunc::Count,
                distinct: false,
                col: cid(0, 3),
            },
            color: Some(cid(0, 1)),
            join: None,
            preds: vec![(BoolOp::And, PredSpec::NotNull { col: cid(0, 2) })],
            group: vec![cid(0, 1)],
            order: None,
            limit: None,
            bin: None,
            style: StyleSpec::default(),
        };
        let cols = spec.referenced_columns();
        assert!(cols.contains(&cid(0, 3)));
        assert!(cols.contains(&cid(0, 1)));
        assert!(cols.contains(&cid(0, 2)));
        let _ = db;
    }
}
