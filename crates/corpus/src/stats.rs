//! Corpus statistics — regenerates the paper's Figure 2 tables.

use crate::generator::Corpus;
use t2v_dvq::ast::ChartType;
use t2v_dvq::hardness::Hardness;

/// Aggregate statistics of a corpus dev split + databases (Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    pub pairs_per_chart: Vec<(ChartType, usize)>,
    pub pairs_per_hardness: Vec<(Hardness, usize)>,
    pub total_pairs: usize,
    pub databases: usize,
    pub tables: usize,
    pub columns: usize,
    pub avg_tables_per_db: f64,
    pub avg_columns_per_table: f64,
}

impl CorpusStats {
    /// Compute statistics over the dev split of `corpus`.
    pub fn of(corpus: &Corpus) -> Self {
        let mut per_chart = Vec::new();
        for ct in ChartType::ALL {
            let n = corpus.dev.iter().filter(|e| e.spec.chart == ct).count();
            per_chart.push((ct, n));
        }
        let mut per_hardness = Vec::new();
        for h in Hardness::ALL {
            let n = corpus.dev.iter().filter(|e| e.hardness == h).count();
            per_hardness.push((h, n));
        }
        let databases = corpus.databases.len();
        let tables: usize = corpus.databases.iter().map(|d| d.tables.len()).sum();
        let columns: usize = corpus.databases.iter().map(|d| d.column_count()).sum();
        CorpusStats {
            total_pairs: corpus.dev.len(),
            pairs_per_chart: per_chart,
            pairs_per_hardness: per_hardness,
            databases,
            tables,
            columns,
            avg_tables_per_db: tables as f64 / databases as f64,
            avg_columns_per_table: columns as f64 / tables as f64,
        }
    }

    /// Render the Figure 2 tables as text.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("VIS Types           No. of (NL, Vis)\n");
        for (ct, n) in &self.pairs_per_chart {
            s.push_str(&format!("{:<20}{}\n", ct.display_name(), n));
        }
        s.push_str(&format!("{:<20}{}\n\n", "All Types", self.total_pairs));
        s.push_str("Hardness            No. of (NL, Vis)\n");
        for (h, n) in &self.pairs_per_hardness {
            s.push_str(&format!("{:<20}{}\n", h.display_name(), n));
        }
        s.push_str(&format!("{:<20}{}\n\n", "Total", self.total_pairs));
        s.push_str(&format!(
            "Database {}  Table {}  Avg. {:.2}\n",
            self.databases, self.tables, self.avg_tables_per_db
        ));
        s.push_str(&format!(
            "Table {}  Column {}  Avg. {:.2}\n",
            self.tables, self.columns, self.avg_columns_per_table
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, CorpusConfig};

    #[test]
    fn stats_sum_to_totals() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let st = CorpusStats::of(&corpus);
        let chart_sum: usize = st.pairs_per_chart.iter().map(|(_, n)| n).sum();
        let hard_sum: usize = st.pairs_per_hardness.iter().map(|(_, n)| n).sum();
        assert_eq!(chart_sum, st.total_pairs);
        assert_eq!(hard_sum, st.total_pairs);
        assert!(st.avg_tables_per_db > 1.0);
        assert!(st.avg_columns_per_table > 2.0);
    }

    #[test]
    fn render_contains_figure2_rows() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let text = CorpusStats::of(&corpus).render();
        assert!(text.contains("Bar Chart"));
        assert!(text.contains("Extra Hard"));
        assert!(text.contains("Database"));
    }
}
