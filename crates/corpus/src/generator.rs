//! Corpus generation: databases + (NLQ, DVQ) pairs.
//!
//! The generator instantiates concrete databases from the domain blueprints
//! so that corpus-wide totals land **exactly** on the paper's Figure 2
//! statistics (104 databases / 552 tables / 3050 columns by default), then
//! produces train / valid / dev pair splits. The dev split fills the
//! published chart-type histogram exactly and targets the hardness histogram
//! by rejection sampling.

use crate::domains::{ColBp, DomainBp, DOMAINS};
use crate::lexicon::Lexicon;
use crate::nlq::{render_nlq, NlMode};
use crate::schema::*;
use crate::spec::*;
use crate::values;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use t2v_dvq::ast::*;
use t2v_dvq::hardness::{classify, Hardness};
use t2v_dvq::printer::Printer;

/// Corpus sizing parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    pub seed: u64,
    pub num_dbs: usize,
    pub total_tables: usize,
    pub total_columns: usize,
    /// Dev-set quota per chart type, in [`ChartType::ALL`] order.
    pub dev_chart_quota: [usize; 7],
    /// Dev-set hardness targets (Easy, Medium, Hard, Extra Hard).
    pub dev_hardness_quota: [usize; 4],
    pub train_pairs: usize,
    pub valid_pairs: usize,
}

impl CorpusConfig {
    /// The paper-scale configuration (Figure 2 statistics).
    pub fn paper(seed: u64) -> Self {
        CorpusConfig {
            seed,
            num_dbs: 104,
            total_tables: 552,
            total_columns: 3050,
            dev_chart_quota: [891, 88, 51, 48, 60, 11, 33],
            dev_hardness_quota: [286, 475, 282, 139],
            train_pairs: 6100,
            valid_pairs: 344,
        }
    }

    /// A small configuration for integration tests and examples.
    pub fn small(seed: u64) -> Self {
        CorpusConfig {
            seed,
            num_dbs: 24,
            total_tables: 128,
            total_columns: 700,
            dev_chart_quota: [180, 18, 11, 10, 12, 3, 6],
            dev_hardness_quota: [58, 96, 57, 29],
            train_pairs: 1300,
            valid_pairs: 70,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        CorpusConfig {
            seed,
            num_dbs: 8,
            total_tables: 44,
            total_columns: 240,
            dev_chart_quota: [60, 6, 4, 4, 4, 2, 2],
            dev_hardness_quota: [20, 33, 19, 10],
            train_pairs: 240,
            valid_pairs: 24,
        }
    }

    pub fn dev_total(&self) -> usize {
        self.dev_chart_quota.iter().sum()
    }
}

/// One benchmark pair.
#[derive(Debug, Clone)]
pub struct Example {
    pub id: usize,
    /// Index into [`Corpus::databases`].
    pub db: usize,
    pub spec: QuerySpec,
    /// Seed for deterministic NLQ frame choices.
    pub frame_seed: u64,
    /// NLQ rendered in the original (explicit) style.
    pub nlq: String,
    /// Target DVQ against the original schema.
    pub dvq: Dvq,
    pub dvq_text: String,
    pub hardness: Hardness,
}

/// The generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    pub config: CorpusConfig,
    pub lexicon: Lexicon,
    pub databases: Vec<Database>,
    pub train: Vec<Example>,
    pub valid: Vec<Example>,
    pub dev: Vec<Example>,
}

/// Generate the full corpus for `config`.
pub fn generate(config: &CorpusConfig) -> Corpus {
    let lexicon = Lexicon::builtin();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let databases = build_databases(config, &lexicon, &mut rng);

    let mut next_id = 0usize;
    let dev = generate_dev(config, &databases, &lexicon, &mut rng, &mut next_id);
    let train = generate_pool(
        config.train_pairs,
        config,
        &databases,
        &lexicon,
        &mut rng,
        &mut next_id,
    );
    let valid = generate_pool(
        config.valid_pairs,
        config,
        &databases,
        &lexicon,
        &mut rng,
        &mut next_id,
    );

    Corpus {
        config: config.clone(),
        lexicon,
        databases,
        train,
        valid,
        dev,
    }
}

// ---------------------------------------------------------------------------
// Database instantiation
// ---------------------------------------------------------------------------

fn build_databases(config: &CorpusConfig, lex: &Lexicon, rng: &mut StdRng) -> Vec<Database> {
    assert!(config.num_dbs > 0);
    // Bresenham-split the table budget across databases.
    let table_counts: Vec<usize> = bresenham(config.total_tables, config.num_dbs);
    let mut dbs = Vec::with_capacity(config.num_dbs);
    let mut domain_uses = vec![0usize; DOMAINS.len()];
    let mut col_budget = BudgetSplitter::new(config.total_columns, config.total_tables);

    for (i, &ntables) in table_counts.iter().enumerate() {
        let dom = &DOMAINS[i % DOMAINS.len()];
        domain_uses[i % DOMAINS.len()] += 1;
        let db_id = format!("{}_{}", dom.name, domain_uses[i % DOMAINS.len()]);
        let db = instantiate_db(db_id, dom, ntables, lex, rng, &mut col_budget);
        db.validate().unwrap_or_else(|e| panic!("invalid db: {e}"));
        dbs.push(db);
    }

    // Second pass: reconcile the exact column total by adding/removing pool
    // columns where possible.
    let mut total: isize = dbs.iter().map(|d| d.column_count() as isize).sum();
    let target = config.total_columns as isize;
    let mut guard = 0;
    while total != target && guard < 10_000 {
        guard += 1;
        let di = rng.gen_range(0..dbs.len());
        let db = &mut dbs[di];
        let ti = rng.gen_range(0..db.tables.len());
        if total < target {
            // add a spare pool column if any remains unused
            let dom = &DOMAINS[di % DOMAINS.len()];
            if add_spare_column(db, ti, dom, lex).is_some() {
                total += 1;
            }
        } else {
            // remove a trailing non-key, non-fk column if the table is large
            let t = &mut db.tables[ti];
            if t.columns.len() > 4 {
                let fk_cols: Vec<usize> = db
                    .foreign_keys
                    .iter()
                    .filter(|fk| fk.from_table == ti)
                    .map(|fk| fk.from_column)
                    .chain(
                        db.foreign_keys
                            .iter()
                            .filter(|fk| fk.to_table == ti)
                            .map(|fk| fk.to_column),
                    )
                    .collect();
                let t = &mut db.tables[ti];
                let last = t.columns.len() - 1;
                if !t.columns[last].is_key && !fk_cols.contains(&last) {
                    t.columns.pop();
                    total -= 1;
                }
            }
        }
    }
    assert_eq!(
        total, target,
        "could not reconcile column total (got {total}, want {target})"
    );
    dbs
}

/// Split `total` into `parts` near-equal integer chunks.
fn bresenham(total: usize, parts: usize) -> Vec<usize> {
    (0..parts)
        .map(|i| total * (i + 1) / parts - total * i / parts)
        .collect()
}

/// Incremental near-equal splitter for the column budget.
struct BudgetSplitter {
    remaining: usize,
    parts_left: usize,
}

impl BudgetSplitter {
    fn new(total: usize, parts: usize) -> Self {
        BudgetSplitter {
            remaining: total,
            parts_left: parts,
        }
    }

    fn next(&mut self, min: usize, max: usize) -> usize {
        let ideal = self.remaining.checked_div(self.parts_left).unwrap_or(min);
        let take = ideal.clamp(min, max);
        self.remaining = self.remaining.saturating_sub(take);
        self.parts_left = self.parts_left.saturating_sub(1);
        take
    }
}

fn make_column(bp: &ColBp, lex: &Lexicon, style: NamingStyle) -> Column {
    let mut parts = Vec::new();
    if !bp.prefix.is_empty() {
        if lex.index_of(bp.prefix).is_some() {
            parts.push(NamePart::concept(bp.prefix));
        } else {
            parts.push(NamePart::literal(bp.prefix));
        }
    }
    parts.push(NamePart::concept(bp.concept));
    let name = style.render(&render_words(&parts, lex, 0));
    Column {
        name,
        parts,
        ctype: bp.ctype,
        is_key: false,
    }
}

fn key_column(table_parts: &[NamePart], lex: &Lexicon, style: NamingStyle) -> Column {
    let mut parts = table_parts.to_vec();
    parts.push(NamePart::concept("id"));
    Column {
        name: style.render(&render_words(&parts, lex, 0)),
        parts,
        ctype: ColType::Number,
        is_key: true,
    }
}

fn pick_style(rng: &mut StdRng) -> NamingStyle {
    let r: f64 = rng.gen();
    if r < 0.6 {
        NamingStyle::LowerSnake
    } else if r < 0.85 {
        NamingStyle::UpperSnake
    } else {
        NamingStyle::CapSnake
    }
}

fn instantiate_db(
    id: String,
    dom: &DomainBp,
    ntables: usize,
    lex: &Lexicon,
    rng: &mut StdRng,
    col_budget: &mut BudgetSplitter,
) -> Database {
    let ntables = ntables.min(dom.tables.len()).max(2);
    // Select table subset; force the first FK pair in so joins are possible.
    let mut idxs: Vec<usize> = (0..dom.tables.len()).collect();
    idxs.shuffle(rng);
    idxs.truncate(ntables);
    if let Some((a, b)) = dom.fks.first() {
        if !idxs.contains(a) {
            idxs[0] = *a;
        }
        if !idxs.contains(b) {
            let pos = if idxs[0] == *a { 1 } else { 0 };
            let pos = pos.min(idxs.len() - 1);
            idxs[pos] = *b;
        }
    }
    idxs.sort_unstable();
    idxs.dedup();
    let remap = |orig: usize| idxs.iter().position(|&i| i == orig);

    // Decide FK edges among selected tables (dedup by from-table/target).
    let mut fk_edges: Vec<(usize, usize)> = Vec::new();
    for (a, b) in dom.fks {
        if let (Some(na), Some(nb)) = (remap(*a), remap(*b)) {
            if !fk_edges.iter().any(|&(x, y)| x == na && y == nb) {
                fk_edges.push((na, nb));
            }
        }
    }

    let mut tables = Vec::with_capacity(idxs.len());
    for (new_i, &orig_i) in idxs.iter().enumerate() {
        let tb = &dom.tables[orig_i];
        let style = pick_style(rng);
        let n_fk_cols = fk_edges.iter().filter(|&&(f, _)| f == new_i).count();
        let max_cols = 1 + n_fk_cols + tb.cols.len();
        let min_cols = 1 + n_fk_cols + 2.min(tb.cols.len());
        let target = col_budget.next(min_cols, max_cols);

        let mut table_parts = vec![NamePart::concept(tb.concept)];
        if !tb.literal.is_empty() {
            table_parts.push(NamePart::literal(tb.literal));
        }
        let mut columns = vec![key_column(&table_parts, lex, style)];
        for &(f, to) in &fk_edges {
            if f == new_i {
                let target_concept = dom.tables[idxs[to]].concept;
                let parts = vec![NamePart::concept(target_concept), NamePart::concept("id")];
                let col = Column {
                    name: style.render(&render_words(&parts, lex, 0)),
                    parts,
                    ctype: ColType::Number,
                    is_key: false,
                };
                if !columns
                    .iter()
                    .any(|c| c.name.eq_ignore_ascii_case(&col.name))
                {
                    columns.push(col);
                }
            }
        }
        // Fill from pool in shuffled order.
        let mut pool: Vec<&ColBp> = tb.cols.iter().collect();
        pool.shuffle(rng);
        for bp in pool {
            if columns.len() >= target {
                break;
            }
            let col = make_column(bp, lex, style);
            if columns
                .iter()
                .any(|c| c.name.eq_ignore_ascii_case(&col.name))
            {
                continue;
            }
            columns.push(col);
        }

        let name = NamingStyle::LowerSnake.render(&render_words(&table_parts, lex, 0));
        tables.push(Table {
            name,
            parts: std::mem::take(&mut table_parts),
            columns,
        });
    }

    // Materialise FK records (from the `<target>_id` column to the target key).
    let mut foreign_keys = Vec::new();
    for &(f, to) in &fk_edges {
        let target_concept = dom.tables[idxs[to]].concept;
        let expect_head: Vec<NamePart> =
            vec![NamePart::concept(target_concept), NamePart::concept("id")];
        if let Some(ci) = tables[f]
            .columns
            .iter()
            .position(|c| c.parts == expect_head)
        {
            foreign_keys.push(ForeignKey {
                from_table: f,
                from_column: ci,
                to_table: to,
                to_column: 0,
            });
        }
    }

    Database {
        id,
        tables,
        foreign_keys,
    }
}

fn add_spare_column(db: &mut Database, ti: usize, dom: &DomainBp, lex: &Lexicon) -> Option<()> {
    // Find the blueprint for this table by matching the head concept.
    let head = db.tables[ti].parts.iter().find_map(|p| match p {
        NamePart::Concept(c) => Some(c.clone()),
        _ => None,
    })?;
    let tb = dom.tables.iter().find(|t| t.concept == head)?;
    // Infer the table's naming style from its key column.
    let style = infer_style(&db.tables[ti].columns[0].name);
    for bp in tb.cols {
        let col = make_column(bp, lex, style);
        if !db.tables[ti]
            .columns
            .iter()
            .any(|c| c.name.eq_ignore_ascii_case(&col.name))
        {
            db.tables[ti].columns.push(col);
            return Some(());
        }
    }
    None
}

fn infer_style(name: &str) -> NamingStyle {
    if name.chars().all(|c| !c.is_ascii_lowercase()) {
        NamingStyle::UpperSnake
    } else if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
        NamingStyle::CapSnake
    } else {
        NamingStyle::LowerSnake
    }
}

// ---------------------------------------------------------------------------
// Pair generation
// ---------------------------------------------------------------------------

struct TableView {
    cats: Vec<usize>,
    nums: Vec<usize>,
    dates: Vec<usize>,
}

fn view(table: &Table) -> TableView {
    let mut v = TableView {
        cats: vec![],
        nums: vec![],
        dates: vec![],
    };
    for (i, c) in table.columns.iter().enumerate() {
        if c.is_key {
            continue;
        }
        match c.ctype {
            ColType::Text => v.cats.push(i),
            ColType::Number => v.nums.push(i),
            ColType::Date => v.dates.push(i),
        }
    }
    v
}

fn pick_from(rng: &mut StdRng, v: &[usize]) -> Option<usize> {
    if v.is_empty() {
        None
    } else {
        Some(v[rng.gen_range(0..v.len())])
    }
}

/// Per-database surface-style habits. Real nvBench inherits SQL habits from
/// each Spider source database, so style correlates with the schema; GRED's
/// Retuner exploits exactly that correlation (similar retrieved DVQs come
/// from the same database and demonstrate its house style).
#[derive(Debug, Clone, Copy)]
pub struct StylePrior {
    pub null_compare_string: bool,
    pub noteq_bang: bool,
    pub use_aliases: bool,
    pub explicit_dir: bool,
}

impl StylePrior {
    /// Deterministic prior for a database id, marginally matching the
    /// corpus-wide style frequencies.
    pub fn for_db(db_id: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in db_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = StdRng::seed_from_u64(h);
        StylePrior {
            null_compare_string: rng.gen_bool(0.85),
            noteq_bang: rng.gen_bool(0.85),
            use_aliases: rng.gen_bool(0.7),
            explicit_dir: rng.gen_bool(0.75),
        }
    }
}

/// Try to build a spec for `chart` on `db` with the given complexity budget
/// (0 = bare, 3 = joins/subqueries/multi-predicate).
pub fn gen_spec(
    rng: &mut StdRng,
    db: &Database,
    chart: ChartType,
    budget: u32,
) -> Option<QuerySpec> {
    let nt = db.tables.len();
    let table = rng.gen_range(0..nt);
    let tv = view(&db.tables[table]);
    let cid = |t: usize, c: usize| ColumnId {
        table: t,
        column: c,
    };

    // Follow the database's style habits with a 10% per-example deviation.
    let prior = StylePrior::for_db(&db.id);
    let follow = |rng: &mut StdRng, habit: bool| {
        if rng.gen_bool(0.9) {
            habit
        } else {
            !habit
        }
    };
    let null_cs = follow(rng, prior.null_compare_string);
    let style = StyleSpec {
        null_style: if null_cs {
            NullStyle::CompareString
        } else {
            NullStyle::IsNull
        },
        noteq_bang: follow(rng, prior.noteq_bang),
        use_aliases: follow(rng, prior.use_aliases),
    };
    let explicit_dir_habit = follow(rng, prior.explicit_dir);

    let mut spec = QuerySpec {
        chart,
        table,
        x: AxisSpec::Col(cid(table, 0)),
        y: AxisSpec::Col(cid(table, 0)),
        color: None,
        join: None,
        preds: vec![],
        group: vec![],
        order: None,
        limit: None,
        bin: None,
        style,
    };

    // ----- axes per chart family -----
    match chart {
        ChartType::Bar | ChartType::Pie | ChartType::StackedBar => {
            let x = pick_from(rng, &tv.cats)?;
            spec.x = AxisSpec::Col(cid(table, x));
            let roll: f64 = rng.gen();
            if roll < 0.5 || tv.nums.is_empty() {
                spec.y = AxisSpec::Agg {
                    func: AggFunc::Count,
                    distinct: false,
                    col: cid(table, x),
                };
                spec.group = vec![cid(table, x)];
            } else if roll < 0.85 {
                let y = pick_from(rng, &tv.nums)?;
                let func = [AggFunc::Avg, AggFunc::Sum, AggFunc::Min, AggFunc::Max]
                    [rng.gen_range(0..4usize)];
                spec.y = AxisSpec::Agg {
                    func,
                    distinct: false,
                    col: cid(table, y),
                };
                spec.group = vec![cid(table, x)];
            } else if chart == ChartType::Bar {
                // Plain bar without grouping (the Table 5 case-study shape).
                let y = pick_from(rng, &tv.nums)?;
                spec.y = AxisSpec::Col(cid(table, y));
            } else {
                let y = pick_from(rng, &tv.nums)?;
                spec.y = AxisSpec::Agg {
                    func: AggFunc::Avg,
                    distinct: false,
                    col: cid(table, y),
                };
                spec.group = vec![cid(table, x)];
            }
            if chart == ChartType::StackedBar {
                let color = tv
                    .cats
                    .iter()
                    .copied()
                    .find(|&c| c != spec.x.column().column)?;
                spec.color = Some(cid(table, color));
                spec.group = vec![cid(table, color)];
            }
        }
        ChartType::Line | ChartType::GroupingLine => {
            if let Some(d) = pick_from(rng, &tv.dates) {
                spec.x = AxisSpec::Col(cid(table, d));
                spec.bin = Some((
                    cid(table, d),
                    [BinUnit::Year, BinUnit::Month, BinUnit::Weekday][rng.gen_range(0..3usize)],
                ));
            } else {
                // year-like numeric fallback
                let y = tv.nums.iter().copied().find(|&c| {
                    db.tables[table].columns[c]
                        .head_concept()
                        .is_some_and(|h| h.contains("year"))
                })?;
                spec.x = AxisSpec::Col(cid(table, y));
            }
            if rng.gen_bool(0.5) || tv.nums.is_empty() {
                spec.y = AxisSpec::Agg {
                    func: AggFunc::Count,
                    distinct: false,
                    col: spec.x.column(),
                };
            } else {
                let y = pick_from(rng, &tv.nums)?;
                spec.y = AxisSpec::Agg {
                    func: [AggFunc::Avg, AggFunc::Sum][rng.gen_range(0..2usize)],
                    distinct: false,
                    col: cid(table, y),
                };
            }
            if chart == ChartType::GroupingLine {
                let color = pick_from(rng, &tv.cats)?;
                spec.color = Some(cid(table, color));
                spec.group = vec![cid(table, color)];
            }
        }
        ChartType::Scatter | ChartType::GroupingScatter => {
            if tv.nums.len() < 2 {
                return None;
            }
            let xi = rng.gen_range(0..tv.nums.len());
            let mut yi = rng.gen_range(0..tv.nums.len());
            if yi == xi {
                yi = (yi + 1) % tv.nums.len();
            }
            spec.x = AxisSpec::Col(cid(table, tv.nums[xi]));
            spec.y = AxisSpec::Col(cid(table, tv.nums[yi]));
            if chart == ChartType::GroupingScatter {
                let color = pick_from(rng, &tv.cats)?;
                spec.color = Some(cid(table, color));
                spec.group = vec![cid(table, color)];
            }
        }
    }

    // ----- join (budget >= 2) -----
    if budget >= 2 && rng.gen_bool(0.45) {
        if let Some(fk) = db.foreign_keys.iter().find(|fk| fk.from_table == table) {
            let to = fk.to_table;
            let to_view = view(&db.tables[to]);
            if let Some(filter_col) = pick_from(rng, &to_view.cats) {
                spec.join = Some(JoinSpec {
                    table: to,
                    left: cid(table, fk.from_column),
                    right: cid(to, fk.to_column),
                });
                let concept = db.tables[to].columns[filter_col]
                    .head_concept()
                    .unwrap_or("name")
                    .to_string();
                let pool = values::text_pool(&concept);
                spec.preds.push((
                    BoolOp::And,
                    PredSpec::Cmp {
                        col: cid(to, filter_col),
                        op: CmpOp::Eq,
                        value: ValSpec::Text(pool[rng.gen_range(0..pool.len())].to_string()),
                    },
                ));
            }
        }
    }

    // ----- extra predicates -----
    let extra_preds = match budget {
        0 => 0,
        1 => usize::from(rng.gen_bool(0.6)),
        2 => rng.gen_range(1..=2),
        _ => rng.gen_range(2..=3),
    };
    for _ in 0..extra_preds {
        let conn = if rng.gen_bool(0.75) {
            BoolOp::And
        } else {
            BoolOp::Or
        };
        let p = gen_pred(rng, db, table, &tv, budget)?;
        spec.preds.push((conn, p));
    }

    // ----- ordering / limit -----
    let orderable = !matches!(chart, ChartType::Pie);
    if orderable && rng.gen_bool(if budget == 0 { 0.3 } else { 0.55 }) {
        let target = if spec.y.aggregate().is_some() && rng.gen_bool(0.5) {
            OrderTarget::Y
        } else {
            OrderTarget::X
        };
        let dir = if rng.gen_bool(0.5) {
            SortDir::Asc
        } else {
            SortDir::Desc
        };
        spec.order = Some(OrderSpec {
            target,
            dir,
            explicit_dir: explicit_dir_habit,
        });
        if budget >= 2 && dir == SortDir::Desc && rng.gen_bool(0.3) {
            spec.limit = Some(rng.gen_range(3..=10));
        }
    }

    Some(spec)
}

fn gen_pred(
    rng: &mut StdRng,
    db: &Database,
    table: usize,
    tv: &TableView,
    budget: u32,
) -> Option<PredSpec> {
    let cid = |c: usize| ColumnId { table, column: c };
    let concept_of = |c: usize| {
        db.tables[table].columns[c]
            .head_concept()
            .unwrap_or("value")
            .to_string()
    };
    for _ in 0..8 {
        let roll: f64 = rng.gen();
        if roll < 0.30 {
            let c = pick_from(rng, &tv.nums)?;
            let (lo, hi) = values::num_range(&concept_of(c));
            let v = rng.gen_range(lo..=hi);
            let op = [CmpOp::Gt, CmpOp::Lt, CmpOp::Ge, CmpOp::Le, CmpOp::NotEq]
                [rng.gen_range(0..5usize)];
            return Some(PredSpec::Cmp {
                col: cid(c),
                op,
                value: ValSpec::Num(v),
            });
        } else if roll < 0.48 {
            let c = pick_from(rng, &tv.nums)?;
            let (lo, hi) = values::num_range(&concept_of(c));
            let a = rng.gen_range(lo..hi);
            let b = rng.gen_range(a + 1..=hi);
            return Some(PredSpec::Between {
                col: cid(c),
                lo: a,
                hi: b,
            });
        } else if roll < 0.64 {
            let c = pick_from(rng, &tv.cats)?;
            let pool = values::text_pool(&concept_of(c));
            return Some(PredSpec::Cmp {
                col: cid(c),
                op: if rng.gen_bool(0.8) {
                    CmpOp::Eq
                } else {
                    CmpOp::NotEq
                },
                value: ValSpec::Text(pool[rng.gen_range(0..pool.len())].to_string()),
            });
        } else if roll < 0.76 {
            let c = pick_from(rng, &tv.cats)?;
            let letter = (b'A' + rng.gen_range(0..26u8)) as char;
            return Some(PredSpec::Like {
                col: cid(c),
                pattern: format!("%{letter}%"),
            });
        } else if roll < 0.9 {
            let all: Vec<usize> = tv.nums.iter().chain(tv.cats.iter()).copied().collect();
            let c = pick_from(rng, &all)?;
            return Some(PredSpec::NotNull { col: cid(c) });
        } else if budget >= 3 {
            // Subquery through a foreign key.
            let fk = db.foreign_keys.iter().find(|fk| fk.from_table == table)?;
            let to = fk.to_table;
            let to_view = view(&db.tables[to]);
            let filter_col = pick_from(rng, &to_view.cats)?;
            let concept = db.tables[to].columns[filter_col]
                .head_concept()
                .unwrap_or("name")
                .to_string();
            let pool = values::text_pool(&concept);
            let sub = PredSpec::EqSubquery {
                col: cid(fk.from_column),
                sub_table: to,
                sub_select: ColumnId {
                    table: to,
                    column: fk.to_column,
                },
                filter: Some((
                    ColumnId {
                        table: to,
                        column: filter_col,
                    },
                    ValSpec::Text(pool[rng.gen_range(0..pool.len())].to_string()),
                )),
            };
            return Some(sub);
        }
    }
    None
}

fn budget_roll(rng: &mut StdRng) -> u32 {
    let r: f64 = rng.gen();
    if r < 0.28 {
        0
    } else if r < 0.65 {
        1
    } else if r < 0.89 {
        2
    } else {
        3
    }
}

fn make_example(
    id: usize,
    db_idx: usize,
    spec: QuerySpec,
    databases: &[Database],
    lex: &Lexicon,
    rng: &mut StdRng,
) -> Example {
    let frame_seed: u64 = rng.gen();
    let db = &databases[db_idx];
    let dvq = spec.to_dvq(db);
    let dvq_text = Printer::default().print(&dvq);
    let nlq = render_nlq(&spec, db, lex, NlMode::Explicit, frame_seed);
    let hardness = classify(&dvq);
    Example {
        id,
        db: db_idx,
        spec,
        frame_seed,
        nlq,
        dvq,
        dvq_text,
        hardness,
    }
}

fn generate_dev(
    config: &CorpusConfig,
    databases: &[Database],
    lex: &Lexicon,
    rng: &mut StdRng,
    next_id: &mut usize,
) -> Vec<Example> {
    let mut hardness_left = config.dev_hardness_quota;
    let mut out = Vec::with_capacity(config.dev_total());
    for (ci, &quota) in config.dev_chart_quota.iter().enumerate() {
        let chart = ChartType::ALL[ci];
        for _ in 0..quota {
            let mut accepted: Option<(usize, QuerySpec, Hardness)> = None;
            for attempt in 0..60 {
                let db_idx = rng.gen_range(0..databases.len());
                let budget = budget_roll(rng);
                let Some(spec) = gen_spec(rng, &databases[db_idx], chart, budget) else {
                    continue;
                };
                let h = classify(&spec.to_dvq(&databases[db_idx]));
                let hi = h as usize;
                if hardness_left[hi] > 0 || attempt >= 40 {
                    hardness_left[hi] = hardness_left[hi].saturating_sub(1);
                    accepted = Some((db_idx, spec, h));
                    break;
                }
            }
            let (db_idx, spec, _) = accepted.expect("generation never converged");
            let ex = make_example(*next_id, db_idx, spec, databases, lex, rng);
            *next_id += 1;
            out.push(ex);
        }
    }
    out
}

fn generate_pool(
    count: usize,
    config: &CorpusConfig,
    databases: &[Database],
    lex: &Lexicon,
    rng: &mut StdRng,
    next_id: &mut usize,
) -> Vec<Example> {
    let weights = config.dev_chart_quota;
    let total_w: usize = weights.iter().sum();
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        // Sample a chart type proportionally to the dev distribution.
        let mut roll = rng.gen_range(0..total_w);
        let mut chart = ChartType::Bar;
        for (ci, &w) in weights.iter().enumerate() {
            if roll < w {
                chart = ChartType::ALL[ci];
                break;
            }
            roll -= w;
        }
        let db_idx = rng.gen_range(0..databases.len());
        let budget = budget_roll(rng);
        if let Some(spec) = gen_spec(rng, &databases[db_idx], chart, budget) {
            let ex = make_example(*next_id, db_idx, spec, databases, lex, rng);
            *next_id += 1;
            out.push(ex);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_corpus_hits_exact_structural_totals() {
        let cfg = CorpusConfig::tiny(7);
        let corpus = generate(&cfg);
        assert_eq!(corpus.databases.len(), cfg.num_dbs);
        let tables: usize = corpus.databases.iter().map(|d| d.tables.len()).sum();
        let cols: usize = corpus.databases.iter().map(|d| d.column_count()).sum();
        assert_eq!(tables, cfg.total_tables);
        assert_eq!(cols, cfg.total_columns);
    }

    #[test]
    fn dev_chart_histogram_is_exact() {
        let cfg = CorpusConfig::tiny(13);
        let corpus = generate(&cfg);
        for (ci, &want) in cfg.dev_chart_quota.iter().enumerate() {
            let got = corpus
                .dev
                .iter()
                .filter(|e| e.spec.chart == ChartType::ALL[ci])
                .count();
            assert_eq!(got, want, "chart {:?}", ChartType::ALL[ci]);
        }
    }

    #[test]
    fn all_dvqs_parse_and_roundtrip() {
        let corpus = generate(&CorpusConfig::tiny(21));
        for ex in corpus.dev.iter().chain(corpus.train.iter()) {
            let reparsed = t2v_dvq::parse(&ex.dvq_text)
                .unwrap_or_else(|e| panic!("bad dvq {}: {e}", ex.dvq_text));
            assert_eq!(reparsed, ex.dvq);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&CorpusConfig::tiny(5));
        let b = generate(&CorpusConfig::tiny(5));
        assert_eq!(a.dev.len(), b.dev.len());
        for (x, y) in a.dev.iter().zip(b.dev.iter()) {
            assert_eq!(x.nlq, y.nlq);
            assert_eq!(x.dvq_text, y.dvq_text);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&CorpusConfig::tiny(5));
        let b = generate(&CorpusConfig::tiny(6));
        let same = a
            .dev
            .iter()
            .zip(b.dev.iter())
            .filter(|(x, y)| x.dvq_text == y.dvq_text)
            .count();
        assert!(same < a.dev.len() / 2);
    }

    #[test]
    fn train_split_has_requested_size() {
        let cfg = CorpusConfig::tiny(3);
        let corpus = generate(&cfg);
        assert_eq!(corpus.train.len(), cfg.train_pairs);
        assert_eq!(corpus.valid.len(), cfg.valid_pairs);
        assert_eq!(corpus.dev.len(), cfg.dev_total());
    }

    #[test]
    fn hardness_targets_are_respected_approximately() {
        let cfg = CorpusConfig::tiny(17);
        let corpus = generate(&cfg);
        let mut got = [0usize; 4];
        for e in &corpus.dev {
            got[e.hardness as usize] += 1;
        }
        // Rejection targeting should land within a tolerance of the quota.
        for (g, want) in got.iter().zip(cfg.dev_hardness_quota.iter()) {
            let diff = g.abs_diff(*want);
            assert!(
                diff <= cfg.dev_total() / 4,
                "hardness histogram too far off: got {got:?}, want {:?}",
                cfg.dev_hardness_quota
            );
        }
    }

    #[test]
    fn databases_validate_and_have_foreign_keys() {
        let corpus = generate(&CorpusConfig::tiny(2));
        let mut with_fk = 0;
        for db in &corpus.databases {
            db.validate().unwrap();
            if !db.foreign_keys.is_empty() {
                with_fk += 1;
            }
        }
        assert!(with_fk >= corpus.databases.len() / 2);
    }
}
