//! Natural-language question rendering.
//!
//! Every benchmark pair's NLQ is rendered from its [`QuerySpec`] in one of
//! two modes:
//!
//! * [`NlMode::Explicit`] — the original nvBench style: literal column names
//!   and DVQ keywords appear in the sentence ("group by attribute JOB_ID",
//!   "bin hire_date by year"). This is the *lexical-matching trap* the paper
//!   diagnoses.
//! * [`NlMode::Paraphrased`] — the nvBench-Rob style: concept synonyms
//!   replace column mentions, sentence frames are rewritten, and DVQ keywords
//!   are avoided ("on a yearly basis" instead of "bin by year").
//!
//! Rendering is deterministic in `(spec, seed, mode)`.

use crate::lexicon::Lexicon;
use crate::schema::{render_words, ColumnId, Database};
use crate::spec::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use t2v_dvq::ast::{AggFunc, BinUnit, BoolOp, ChartType, SortDir};

/// NLQ surface mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NlMode {
    Explicit,
    Paraphrased,
}

fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

/// Mention a column: its literal name (explicit) or a synonym phrase that
/// avoids the column's current name (paraphrased).
pub fn column_mention(
    db: &Database,
    lex: &Lexicon,
    id: ColumnId,
    mode: NlMode,
    rng: &mut StdRng,
) -> String {
    let col = db.column(id);
    match mode {
        NlMode::Explicit => col.name.clone(),
        NlMode::Paraphrased => {
            let name_words: Vec<String> = col
                .name
                .split('_')
                .map(|w| w.to_ascii_lowercase())
                .collect();
            // Try a few alternative lexicalisations; take the first whose
            // words differ from the current column name.
            let start = rng.gen_range(0..4usize);
            for off in 0..6 {
                let words = render_words(&col.parts, lex, start + off);
                if words != name_words {
                    return words.join(" ");
                }
            }
            // All alternatives collide (single-lexicalisation literals):
            // fall back to a descriptive wrapper so the literal name never
            // appears verbatim on its own.
            format!("{} value", name_words.join(" "))
        }
    }
}

fn table_mention(
    db: &Database,
    lex: &Lexicon,
    table: usize,
    mode: NlMode,
    rng: &mut StdRng,
) -> String {
    let t = &db.tables[table];
    match mode {
        NlMode::Explicit => t.name.clone(),
        NlMode::Paraphrased => {
            let name_words: Vec<String> =
                t.name.split('_').map(|w| w.to_ascii_lowercase()).collect();
            let start = rng.gen_range(0..4usize);
            for off in 0..6 {
                let words = render_words(&t.parts, lex, start + off);
                if words != name_words {
                    return words.join(" ");
                }
            }
            format!("{} records", name_words.join(" "))
        }
    }
}

fn chart_phrase(chart: ChartType, mode: NlMode, rng: &mut StdRng) -> &'static str {
    match (chart, mode) {
        (ChartType::Bar, NlMode::Explicit) => pick(rng, &["a bar chart", "bar chart"]),
        (ChartType::Bar, NlMode::Paraphrased) => {
            pick(rng, &["a histogram", "a bar graph", "a column chart"])
        }
        (ChartType::Pie, NlMode::Explicit) => pick(rng, &["a pie chart", "pie chart"]),
        (ChartType::Pie, NlMode::Paraphrased) => pick(
            rng,
            &["a pie graph", "a circular chart", "a proportional wheel"],
        ),
        (ChartType::Line, NlMode::Explicit) => pick(rng, &["a line chart", "line chart"]),
        (ChartType::Line, NlMode::Paraphrased) => pick(
            rng,
            &["a line graph", "a trend curve", "a time-series curve"],
        ),
        (ChartType::Scatter, NlMode::Explicit) => pick(rng, &["a scatter chart", "scatter chart"]),
        (ChartType::Scatter, NlMode::Paraphrased) => {
            pick(rng, &["a scatter plot", "a point cloud", "an x-y plot"])
        }
        (ChartType::StackedBar, NlMode::Explicit) => pick(rng, &["a stacked bar chart"]),
        (ChartType::StackedBar, NlMode::Paraphrased) => {
            pick(rng, &["a stacked histogram", "a layered bar graph"])
        }
        (ChartType::GroupingLine, NlMode::Explicit) => pick(rng, &["a grouping line chart"]),
        (ChartType::GroupingLine, NlMode::Paraphrased) => {
            pick(rng, &["a multi-series line graph", "a grouped trend chart"])
        }
        (ChartType::GroupingScatter, NlMode::Explicit) => pick(rng, &["a grouping scatter chart"]),
        (ChartType::GroupingScatter, NlMode::Paraphrased) => {
            pick(rng, &["a grouped scatter plot", "a categorized point plot"])
        }
    }
}

fn agg_phrase(func: AggFunc, mode: NlMode, rng: &mut StdRng) -> &'static str {
    match (func, mode) {
        (AggFunc::Avg, NlMode::Explicit) => "the average of",
        (AggFunc::Avg, NlMode::Paraphrased) => {
            pick(rng, &["the mean", "the typical", "the average"])
        }
        (AggFunc::Sum, NlMode::Explicit) => "the sum of",
        (AggFunc::Sum, NlMode::Paraphrased) => pick(rng, &["the combined", "the overall total of"]),
        (AggFunc::Min, NlMode::Explicit) => "the minimum of",
        (AggFunc::Min, NlMode::Paraphrased) => pick(rng, &["the smallest", "the lowest"]),
        (AggFunc::Max, NlMode::Explicit) => "the maximum of",
        (AggFunc::Max, NlMode::Paraphrased) => pick(rng, &["the largest", "the highest"]),
        (AggFunc::Count, NlMode::Explicit) => "the number of",
        (AggFunc::Count, NlMode::Paraphrased) => pick(rng, &["how many", "the count of"]),
    }
}

fn unit_phrase(unit: BinUnit, mode: NlMode, rng: &mut StdRng) -> &'static str {
    match (unit, mode) {
        (BinUnit::Year, NlMode::Explicit) => "year",
        (BinUnit::Month, NlMode::Explicit) => "month",
        (BinUnit::Day, NlMode::Explicit) => "day",
        (BinUnit::Weekday, NlMode::Explicit) => "weekday",
        (BinUnit::Year, NlMode::Paraphrased) => pick(rng, &["yearly", "annual"]),
        (BinUnit::Month, NlMode::Paraphrased) => pick(rng, &["monthly", "per-month"]),
        (BinUnit::Day, NlMode::Paraphrased) => pick(rng, &["daily", "per-day"]),
        (BinUnit::Weekday, NlMode::Paraphrased) => {
            pick(rng, &["weekday-by-weekday", "per-weekday"])
        }
    }
}

/// Render the NLQ for `spec` against `db` in the requested mode.
pub fn render_nlq(
    spec: &QuerySpec,
    db: &Database,
    lex: &Lexicon,
    mode: NlMode,
    seed: u64,
) -> String {
    let mode_salt = match mode {
        NlMode::Explicit => 0x45u64,
        NlMode::Paraphrased => 0x52u64,
    };
    let mut rng = StdRng::seed_from_u64(seed ^ (mode_salt << 56));
    let chart = chart_phrase(spec.chart, mode, &mut rng);
    let xm = column_mention(db, lex, spec.x.column(), mode, &mut rng);

    // ----- main clause: chart + axes -----
    // Like real nvBench questions, the source table is usually named.
    let tm = table_mention(db, lex, spec.table, mode, &mut rng);
    let mut s = match (&spec.y, mode) {
        (AxisSpec::Agg { func: AggFunc::Count, .. }, NlMode::Explicit) => pick(
            &mut rng,
            &[
                "Draw {chart} about the distribution of {x} and the number of {x} from {t}",
                "Show the number of {x} from {t} in {chart}",
                "Return {chart} showing {x} and the number of {x} from {t}",
            ],
        )
        .replace("{chart}", chart)
        .replace("{x}", &xm)
        .replace("{t}", &tm),
        (AxisSpec::Agg { func: AggFunc::Count, .. }, NlMode::Paraphrased) => pick(
            &mut rng,
            &[
                "Could you display how many {x} entries there are for each {x} among the {t}, using {chart}?",
                "Please give me {chart} counting the occurrences of every {x} from the {t}",
                "I would like to see the frequency of each {x} among the {t} presented as {chart}",
            ],
        )
        .replace("{chart}", chart)
        .replace("{x}", &xm)
        .replace("{t}", &tm),
        (AxisSpec::Agg { func, .. }, NlMode::Explicit) => {
            let ym = column_mention(db, lex, spec.y.column(), mode, &mut rng);
            let agg = agg_phrase(*func, mode, &mut rng);
            pick(
                &mut rng,
                &[
                    "Draw {chart} about the change of {agg} {y} over {x} from {t}",
                    "Return {chart} about the distribution of {x} and {agg} {y} from {t}",
                    "Show {x} and {agg} {y} from {t} in {chart}",
                ],
            )
            .replace("{chart}", chart)
            .replace("{agg}", agg)
            .replace("{x}", &xm)
            .replace("{y}", &ym)
            .replace("{t}", &tm)
        }
        (AxisSpec::Agg { func, .. }, NlMode::Paraphrased) => {
            let ym = column_mention(db, lex, spec.y.column(), mode, &mut rng);
            let agg = agg_phrase(*func, mode, &mut rng);
            pick(
                &mut rng,
                &[
                    "Please give me {chart} showing {agg} {y} across the {x} among the {t}",
                    "Generate {chart} illustrating {agg} {y} for every {x} from the {t}",
                    "I need {chart} that depicts {agg} {y} against the {x} among the {t}",
                ],
            )
            .replace("{chart}", chart)
            .replace("{agg}", agg)
            .replace("{x}", &xm)
            .replace("{y}", &ym)
            .replace("{t}", &tm)
        }
        (AxisSpec::Col(_), NlMode::Explicit) => {
            let ym = column_mention(db, lex, spec.y.column(), mode, &mut rng);
            pick(
                &mut rng,
                &[
                    "Find the {x} and {y} of all {t} and visualize them by {chart}",
                    "Show the {y} by {x} from {t} in {chart}",
                    "Draw {chart} about {x} and {y} from {t}",
                ],
            )
            .replace("{chart}", chart)
            .replace("{x}", &xm)
            .replace("{y}", &ym)
            .replace("{t}", &tm)
        }
        (AxisSpec::Col(_), NlMode::Paraphrased) => {
            let ym = column_mention(db, lex, spec.y.column(), mode, &mut rng);
            pick(
                &mut rng,
                &[
                    "Present the {y} by {x} from the {t} in {chart}, please",
                    "For all {t}, plot their {x} against the {y} using {chart}",
                    "Please chart the {y} for every {x} among the {t}",
                ],
            )
            .replace("{chart}", chart)
            .replace("{x}", &xm)
            .replace("{y}", &ym)
            .replace("{t}", &tm)
        }
    };

    // ----- colour channel for stacked/grouping charts -----
    if let Some(color) = spec.color {
        let cm = column_mention(db, lex, color, mode, &mut rng);
        let frag = match mode {
            NlMode::Explicit => pick(&mut rng, &[" colored by {c}", " grouped by {c}"]),
            NlMode::Paraphrased => pick(
                &mut rng,
                &[
                    " broken down by {c}",
                    " separated by {c}",
                    " with one series per {c}",
                ],
            ),
        };
        s.push_str(&frag.replace("{c}", &cm));
    }

    // ----- filters -----
    for (i, (conn, p)) in spec.preds.iter().enumerate() {
        let lead = if i == 0 {
            match mode {
                NlMode::Explicit => pick(&mut rng, &[", for those records whose ", ", where "]),
                NlMode::Paraphrased => pick(
                    &mut rng,
                    &[
                        ", considering only entries whose ",
                        ", restricted to cases where ",
                    ],
                ),
            }
            .to_string()
        } else {
            match conn {
                BoolOp::And => " and ".to_string(),
                BoolOp::Or => " or ".to_string(),
            }
        };
        s.push_str(&lead);
        s.push_str(&pred_phrase(p, db, lex, mode, &mut rng));
    }

    // ----- grouping mention (explicit mode names the clause) -----
    if mode == NlMode::Explicit && spec.color.is_none() {
        if let Some(g) = spec.group.first() {
            let gm = column_mention(db, lex, *g, mode, &mut rng);
            s.push_str(
                &pick(
                    &mut rng,
                    &[", and group by attribute {g}", ", group by {g}"],
                )
                .replace("{g}", &gm),
            );
        }
    }

    // ----- binning -----
    if let Some((c, unit)) = spec.bin {
        let cm = column_mention(db, lex, c, mode, &mut rng);
        let frag = match mode {
            NlMode::Explicit => pick(
                &mut rng,
                &[", and bin {c} by {u}", ", bin {c} by {u} interval"],
            )
            .replace("{u}", unit_phrase(unit, mode, &mut rng)),
            NlMode::Paraphrased => pick(
                &mut rng,
                &[" on a {u} basis", ", aggregated at a {u} granularity"],
            )
            .replace("{u}", unit_phrase(unit, mode, &mut rng)),
        };
        s.push_str(&frag.replace("{c}", &cm));
    }

    // ----- ordering -----
    if let Some(o) = spec.order {
        let axis_word = match o.target {
            OrderTarget::X => "X",
            OrderTarget::Y => "Y",
        };
        let frag = match (o.dir, mode) {
            (SortDir::Asc, NlMode::Explicit) => pick(
                &mut rng,
                &[
                    ", and list in asc by the {a}",
                    ", sort {a} axis in asc order",
                    ", in ascending order of the {a}-axis",
                ],
            ),
            (SortDir::Desc, NlMode::Explicit) => pick(
                &mut rng,
                &[
                    ", and list in desc by the {a}",
                    ", sort {a} axis in desc order",
                    ", in descending order of the {a}-axis",
                ],
            ),
            (SortDir::Asc, NlMode::Paraphrased) => pick(
                &mut rng,
                &[
                    ", with the {a}-axis organized from low to high",
                    ", arranged upward along the {a}-axis",
                    ", in ascending manner on the {a}-axis",
                ],
            ),
            (SortDir::Desc, NlMode::Paraphrased) => pick(
                &mut rng,
                &[
                    ", with the {a}-axis organized in descending order",
                    ", arranged downward along the {a}-axis",
                    ", from the highest to the lowest on the {a}-axis",
                ],
            ),
        };
        s.push_str(&frag.replace("{a}", axis_word));
    }

    // ----- limit -----
    if let Some(n) = spec.limit {
        let frag = match mode {
            NlMode::Explicit => format!(", and show only the top {n}"),
            NlMode::Paraphrased => format!(", keeping just the first {n} entries"),
        };
        s.push_str(&frag);
    }

    let closer = match mode {
        NlMode::Explicit => ".",
        NlMode::Paraphrased => pick(&mut rng, &[".", ", please."]),
    };
    if s.ends_with('?') {
        // Question frames already closed.
    } else {
        s.push_str(closer);
    }
    s
}

fn pred_phrase(
    p: &PredSpec,
    db: &Database,
    lex: &Lexicon,
    mode: NlMode,
    rng: &mut StdRng,
) -> String {
    let cm = column_mention(db, lex, p.column(), mode, rng);
    match p {
        PredSpec::Cmp { op, value, .. } => {
            let v = match value {
                ValSpec::Num(n) => n.to_string(),
                ValSpec::Text(t) => format!("'{t}'"),
            };
            let rel = match (op, mode) {
                (CmpOp::Eq, NlMode::Explicit) => "equals to",
                (CmpOp::Eq, NlMode::Paraphrased) => pick(rng, &["is exactly", "corresponds to"]),
                (CmpOp::NotEq, NlMode::Explicit) => "does not equal to",
                (CmpOp::NotEq, NlMode::Paraphrased) => {
                    pick(rng, &["differs from", "is anything but"])
                }
                (CmpOp::Lt, NlMode::Explicit) => "is less than",
                (CmpOp::Lt, NlMode::Paraphrased) => pick(rng, &["stays below", "is under"]),
                (CmpOp::Le, NlMode::Explicit) => "is at most",
                (CmpOp::Le, NlMode::Paraphrased) => "does not exceed",
                (CmpOp::Gt, NlMode::Explicit) => "is greater than",
                (CmpOp::Gt, NlMode::Paraphrased) => pick(rng, &["exceeds", "is above"]),
                (CmpOp::Ge, NlMode::Explicit) => "is at least",
                (CmpOp::Ge, NlMode::Paraphrased) => "reaches at least",
            };
            format!("{cm} {rel} {v}")
        }
        PredSpec::Between { lo, hi, .. } => match mode {
            NlMode::Explicit => format!("{cm} is in the range of {lo} and {hi}"),
            NlMode::Paraphrased => {
                let f = pick(
                    rng,
                    &[
                        "{c} falls between {lo} and {hi}",
                        "{c} lies within {lo} to {hi}",
                    ],
                );
                f.replace("{c}", &cm)
                    .replace("{lo}", &lo.to_string())
                    .replace("{hi}", &hi.to_string())
            }
        },
        PredSpec::Like { pattern, .. } => {
            let core = pattern.trim_matches('%');
            match mode {
                NlMode::Explicit => format!("{cm} is like '{pattern}'"),
                NlMode::Paraphrased => format!("{cm} contains the text '{core}'"),
            }
        }
        PredSpec::NotNull { .. } => match mode {
            NlMode::Explicit => format!("{cm} is not null"),
            NlMode::Paraphrased => {
                pick(rng, &["{c} has a non-empty value", "{c} is recorded"]).replace("{c}", &cm)
            }
        },
        PredSpec::EqSubquery {
            sub_table,
            sub_select,
            filter,
            ..
        } => {
            let tm = table_mention(db, lex, *sub_table, mode, rng);
            let sm = column_mention(db, lex, *sub_select, mode, rng);
            let mut out = match mode {
                NlMode::Explicit => format!("{cm} equals to the {sm} of {tm}"),
                NlMode::Paraphrased => format!("{cm} matches the {sm} found in the {tm}"),
            };
            if let Some((fc, fv)) = filter {
                let fcm = column_mention(db, lex, *fc, mode, rng);
                let v = match fv {
                    ValSpec::Num(n) => n.to_string(),
                    ValSpec::Text(t) => format!("'{t}'"),
                };
                out.push_str(&match mode {
                    NlMode::Explicit => format!(" where {fcm} equals to {v}"),
                    NlMode::Paraphrased => format!(" whose {fcm} is {v}"),
                });
            }
            out
        }
        PredSpec::InSubquery {
            sub_table,
            sub_select,
            ..
        } => {
            let tm = table_mention(db, lex, *sub_table, mode, rng);
            let sm = column_mention(db, lex, *sub_select, mode, rng);
            match mode {
                NlMode::Explicit => format!("{cm} is in the {sm} of {tm}"),
                NlMode::Paraphrased => format!("{cm} appears among the {sm} listed in the {tm}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, CorpusConfig};

    #[test]
    fn explicit_mode_mentions_literal_column_names() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let mut checked = 0;
        for ex in corpus.dev.iter().take(50) {
            let db = &corpus.databases[ex.db];
            let nlq = render_nlq(
                &ex.spec,
                db,
                &corpus.lexicon,
                NlMode::Explicit,
                ex.frame_seed,
            );
            let xname = db.column_name(ex.spec.x.column());
            assert!(
                nlq.contains(xname),
                "explicit NLQ {nlq:?} should mention {xname}"
            );
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn paraphrased_mode_avoids_exact_x_column_name() {
        let corpus = generate(&CorpusConfig::tiny(7));
        for ex in corpus.dev.iter().take(50) {
            let db = &corpus.databases[ex.db];
            let nlq = render_nlq(
                &ex.spec,
                db,
                &corpus.lexicon,
                NlMode::Paraphrased,
                ex.frame_seed,
            );
            let xname = db.column_name(ex.spec.x.column()).to_ascii_lowercase();
            // Multi-word column names must not appear verbatim with
            // underscores in a paraphrased question.
            if xname.contains('_') {
                assert!(
                    !nlq.to_ascii_lowercase().contains(&xname),
                    "paraphrased NLQ {nlq:?} leaks {xname}"
                );
            }
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let corpus = generate(&CorpusConfig::tiny(9));
        let ex = &corpus.dev[0];
        let db = &corpus.databases[ex.db];
        let a = render_nlq(
            &ex.spec,
            db,
            &corpus.lexicon,
            NlMode::Paraphrased,
            ex.frame_seed,
        );
        let b = render_nlq(
            &ex.spec,
            db,
            &corpus.lexicon,
            NlMode::Paraphrased,
            ex.frame_seed,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn modes_produce_different_surfaces() {
        let corpus = generate(&CorpusConfig::tiny(11));
        let mut differs = 0;
        for ex in corpus.dev.iter().take(30) {
            let db = &corpus.databases[ex.db];
            let e = render_nlq(
                &ex.spec,
                db,
                &corpus.lexicon,
                NlMode::Explicit,
                ex.frame_seed,
            );
            let p = render_nlq(
                &ex.spec,
                db,
                &corpus.lexicon,
                NlMode::Paraphrased,
                ex.frame_seed,
            );
            if e != p {
                differs += 1;
            }
        }
        assert!(differs >= 25, "only {differs}/30 pairs differ across modes");
    }
}
