//! Plausible value pools per concept, shared by the pair generator (filter
//! literals) and the execution engine (row synthesis).

/// Text value pool for a column concept. Falls back to a generic pool.
pub fn text_pool(concept: &str) -> &'static [&'static str] {
    match concept {
        "city" => &[
            "Shenzhen", "Paris", "London", "Austin", "Toronto", "Madrid", "Oslo", "Kyoto",
        ],
        "country" => &[
            "China", "France", "Canada", "Spain", "Norway", "Japan", "Brazil", "Kenya",
        ],
        // Pools stay ≤ 10 entries so a 10-row synthesized store can cover a
        // whole pool (Store::synthesize cycles the prefix), keeping generated
        // equality filters satisfiable.
        "first_name" => &[
            "Shelley",
            "Nancy",
            "Steven",
            "John",
            "Hermann",
            "Alexander",
            "Adam",
            "Susan",
            "Den",
            "Michael",
        ],
        "last_name" => &[
            "Smith", "Chen", "Garcia", "Mueller", "Tanaka", "Okafor", "Rossi", "Novak",
        ],
        "name" => &[
            "Aurora", "Beacon", "Cascade", "Drift", "Ember", "Fable", "Garnet", "Harbor",
        ],
        "sex" => &["F", "M"],
        "status" => &["active", "closed", "pending", "archived"],
        "type" => &["standard", "premium", "basic", "trial"],
        "category" => &["Comedy", "Drama", "Action", "Documentary", "Family"],
        "major" => &["Biology", "Physics", "History", "Economics", "Design"],
        "advisor" => &["Ward", "Patel", "Kim", "Lopez"],
        "breed" => &["Beagle", "Husky", "Persian", "Siamese", "Terrier"],
        "maker" => &["Acme", "Globex", "Initech", "Umbra", "Vertex"],
        "theme" => &["Nature", "Modern", "Ancient", "Ocean", "Space"],
        "code" => &["AA1", "BB2", "CC3", "DD4", "EE5"],
        "email" => &["a@ex.com", "b@ex.com", "c@ex.com", "d@ex.com"],
        "phone" => &["555-0100", "555-0101", "555-0102"],
        "model" => &["X100", "Z220", "Q35", "R9"],
        "author" => &["Austen", "Baldwin", "Calvino", "Dumas"],
        "venue" => &["Main Hall", "West Wing", "Arena A", "Dome"],
        "owner" => &["Harper", "Quinn", "Reyes", "Sato"],
        "description" | "comment" | "details" | "summary_text" => {
            &["fine", "good", "notable", "flagged"]
        }
        _ => &["alpha", "beta", "gamma", "delta", "epsilon"],
    }
}

/// Inclusive numeric range for a column concept (used both for generated
/// filter thresholds and for synthesised rows, so filters are satisfiable).
pub fn num_range(concept: &str) -> (i64, i64) {
    match concept {
        "salary" => (2000, 20000),
        "bonus" => (100, 5000),
        "price" => (5, 500),
        "budget" => (10_000, 900_000),
        "revenue" | "profit" => (1000, 90_000),
        "balance" => (0, 50_000),
        "quantity" | "stock" | "sales" => (1, 400),
        "capacity" => (50, 2000),
        "population" => (10_000, 5_000_000),
        "weight" => (1, 200),
        "height" => (50, 220),
        "length" | "distance" | "mileage" => (10, 9000),
        "speed" => (20, 900),
        "duration" => (5, 240),
        "area_size" => (30, 9000),
        "temperature" => (-20, 45),
        "attendance" => (100, 80_000),
        "votes" => (10, 9000),
        "percentage" | "acc_percent" | "commission_pct" => (1, 99),
        "horsepower" => (60, 900),
        "age" | "pet_age" => (1, 80),
        "rating" | "score" => (1, 10),
        "rank" => (1, 50),
        "year" | "openning_year" | "founded_year" => (1950, 2020),
        "manager_id" | "id" => (1, 200),
        "premium_amount" => (200, 5000),
        _ => (1, 1000),
    }
}

/// Year span used when synthesising date values for a concept.
pub fn date_year_range(_concept: &str) -> (i32, i32) {
    (1995, 2022)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_everywhere() {
        for c in ["city", "nonexistent_concept", "sex", "theme"] {
            assert!(!text_pool(c).is_empty());
        }
    }

    #[test]
    fn ranges_are_well_formed() {
        for c in ["salary", "age", "unknown", "temperature", "year"] {
            let (lo, hi) = num_range(c);
            assert!(lo < hi, "bad range for {c}");
        }
    }

    #[test]
    fn salary_range_supports_paper_example() {
        let (lo, hi) = num_range("salary");
        assert!(lo <= 8000 && hi >= 12000);
    }
}
