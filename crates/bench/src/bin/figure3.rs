//! Figure 3 — the accuracy collapse of prior text-to-vis models from
//! nvBench to nvBench-Rob(nlq,schema).

use t2v_bench::{Ctx, ModelKind};
use t2v_eval::render_overall_table;
use t2v_perturb::RobVariant;

fn main() {
    let mut ctx = Ctx::from_args();
    let models = [
        ModelKind::RgVisNet,
        ModelKind::Transformer,
        ModelKind::Seq2Vis,
    ];
    let paper: &[(&str, [f64; 2])] = &[
        ("RGVisNet", [85.17, 24.81]),
        ("Transformer", [68.69, 12.77]),
        ("Seq2Vis", [79.73, 5.50]),
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for kind in models {
        let orig = ctx.evaluate(kind, RobVariant::Original);
        let both = ctx.evaluate(kind, RobVariant::Both);
        csv.push(t2v_eval::csv_row(&orig));
        csv.push(t2v_eval::csv_row(&both));
        let reference = paper
            .iter()
            .find(|(m, _)| *m == kind.label())
            .map(|(_, v)| v.to_vec());
        rows.push((
            kind.label(),
            vec![orig.accuracies, both.accuracies],
            reference,
        ));
    }
    let table = render_overall_table(
        "Figure 3: accuracy collapse nvBench → nvBench-Rob(nlq,schema)",
        &["nvBench", "nvBench-Rob(nlq,schema)"],
        &rows,
    );
    println!("{table}");
    t2v_eval::write_csv(
        &ctx.results_dir.join("figure3.csv"),
        "model,set,n,vis,data,axis,overall",
        &csv,
    )
    .expect("write results");
    println!("wrote results/figure3.csv");
}
