//! Figure 2 — nvBench-Rob dataset statistics: chart-type histogram,
//! hardness histogram, database/table/column counts.

use t2v_bench::Ctx;
use t2v_corpus::CorpusStats;

fn main() {
    let ctx = Ctx::from_args();
    let stats = CorpusStats::of(&ctx.corpus);
    println!(
        "== Figure 2: nvBench-Rob statistics (profile={}, seed={}) ==\n",
        ctx.profile, ctx.seed
    );
    println!("{}", stats.render());
    println!("paper reference: Bar 891, Pie 88, Line 51, Scatter 48, Stacked 60,");
    println!("  GroupLine 11, GroupScatter 33; hardness 286/475/282/139;");
    println!("  104 databases / 552 tables (avg 5.31) / 3050 columns (avg 5.53)");
    let rows: Vec<String> = stats
        .pairs_per_chart
        .iter()
        .map(|(ct, n)| format!("chart,{},{}", ct.display_name(), n))
        .chain(
            stats
                .pairs_per_hardness
                .iter()
                .map(|(h, n)| format!("hardness,{},{}", h.display_name(), n)),
        )
        .chain([
            format!("structure,databases,{}", stats.databases),
            format!("structure,tables,{}", stats.tables),
            format!("structure,columns,{}", stats.columns),
        ])
        .collect();
    t2v_eval::write_csv(
        &ctx.results_dir.join("figure2.csv"),
        "kind,name,count",
        &rows,
    )
    .expect("write results");
    println!("\nwrote results/figure2.csv");
}
