//! Table 4 — ablation study: GRED vs w/o RTN&DBG, w/o RTN, w/o DBG on the
//! three robustness sets (overall accuracy).

use t2v_bench::{Ctx, ModelKind};
use t2v_eval::render_overall_table;
use t2v_perturb::RobVariant;

fn main() {
    let mut ctx = Ctx::from_args();
    let rows_spec: &[(ModelKind, Option<[f64; 3]>)] = &[
        (ModelKind::RgVisNet, Some([45.87, 44.91, 24.81])),
        (ModelKind::Gred, Some([59.98, 61.93, 54.85])),
        (ModelKind::GredGeneratorOnly, Some([62.77, 42.13, 36.46])),
        (ModelKind::GredNoRtn, Some([61.08, 62.10, 51.90])),
        (ModelKind::GredNoDbg, Some([61.68, 42.47, 38.57])),
    ];
    let variants = [RobVariant::Nlq, RobVariant::Schema, RobVariant::Both];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (kind, paper) in rows_spec {
        let mut accs = Vec::new();
        for v in variants {
            let run = ctx.evaluate(*kind, v);
            csv.push(t2v_eval::csv_row(&run));
            accs.push(run.accuracies);
        }
        rows.push((kind.label(), accs, paper.map(|p| p.to_vec())));
    }
    let table = render_overall_table(
        "Table 4: ablation study on nvBench-Rob (overall accuracy)",
        &["nlq", "schema", "(nlq,schema)"],
        &rows,
    );
    println!("{table}");
    t2v_eval::write_csv(
        &ctx.results_dir.join("table4.csv"),
        "model,set,n,vis,data,axis,overall",
        &csv,
    )
    .expect("write results");
    println!("wrote results/table4.csv");
}
