//! Design-choice ablations called out in DESIGN.md §5:
//!
//! * retrieval depth K ∈ {1, 5, 10, 20} vs GRED overall accuracy;
//! * ascending vs descending example order in the generation prompt (§4.2);
//! * embedder lexicon coverage sweep vs dual-variant accuracy.

use t2v_bench::Ctx;
use t2v_corpus::Lexicon;
use t2v_embed::{EmbedConfig, TextEmbedder};
use t2v_eval::evaluate_set;
use t2v_gred::{Gred, GredConfig};
use t2v_llm::{LlmConfig, SimulatedChatModel};
use t2v_perturb::RobVariant;

fn main() {
    let ctx = Ctx::from_args();
    let limit = Some(ctx.limit.unwrap_or(250));
    let mut csv = Vec::new();

    println!("== Ablation: retrieval depth K (nvBench-Rob(nlq,schema)) ==");
    for k in [1usize, 5, 10, 20] {
        let gred = t2v_gred::default_gred(
            &ctx.corpus,
            GredConfig {
                k,
                ..GredConfig::default()
            },
        );
        let run = evaluate_set(&gred, &ctx.corpus, &ctx.rob, RobVariant::Both, limit);
        println!(
            "  K = {k:>2}: overall {:.2}%",
            run.accuracies.overall * 100.0
        );
        csv.push(format!("k_sweep,{k},{:.4}", run.accuracies.overall));
    }

    println!("\n== Ablation: example order in the generation prompt ==");
    for (label, ascending) in [("ascending (paper)", true), ("descending", false)] {
        let gred = t2v_gred::default_gred(
            &ctx.corpus,
            GredConfig {
                ascending_order: ascending,
                ..GredConfig::default()
            },
        );
        let run = evaluate_set(&gred, &ctx.corpus, &ctx.rob, RobVariant::Both, limit);
        println!(
            "  {label:<20}: overall {:.2}%",
            run.accuracies.overall * 100.0
        );
        csv.push(format!(
            "prompt_order,{ascending},{:.4}",
            run.accuracies.overall
        ));
    }

    println!("\n== Ablation: LLM semantic (synonym) coverage ==");
    for coverage in [0.5f64, 0.7, 0.88, 1.0] {
        let embedder = TextEmbedder::new(Lexicon::builtin(), EmbedConfig::default());
        let mut llm_cfg = LlmConfig::default();
        llm_cfg.embed.lexicon_coverage = coverage;
        let model = SimulatedChatModel::new(llm_cfg);
        let gred = Gred::prepare(&ctx.corpus, embedder, model, GredConfig::default());
        let run = evaluate_set(&gred, &ctx.corpus, &ctx.rob, RobVariant::Both, limit);
        println!(
            "  coverage {coverage:.2}: overall {:.2}%",
            run.accuracies.overall * 100.0
        );
        csv.push(format!(
            "llm_coverage,{coverage},{:.4}",
            run.accuracies.overall
        ));
    }

    println!("\n== Ablation: retrieval-embedder lexicon coverage ==");
    for coverage in [0.0f64, 0.9] {
        let embedder = TextEmbedder::new(
            Lexicon::builtin(),
            EmbedConfig {
                lexicon_coverage: coverage,
                ..EmbedConfig::default()
            },
        );
        let model = SimulatedChatModel::new(LlmConfig::default());
        let gred = Gred::prepare(&ctx.corpus, embedder, model, GredConfig::default());
        let run = evaluate_set(&gred, &ctx.corpus, &ctx.rob, RobVariant::Both, limit);
        println!(
            "  coverage {coverage:.1}: overall {:.2}%",
            run.accuracies.overall * 100.0
        );
        csv.push(format!(
            "embed_coverage,{coverage},{:.4}",
            run.accuracies.overall
        ));
    }

    t2v_eval::write_csv(
        &ctx.results_dir.join("ablations.csv"),
        "ablation,setting,overall",
        &csv,
    )
    .expect("write results");
    println!("\nwrote results/ablations.csv");
}
