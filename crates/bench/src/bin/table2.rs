//! Table 2 — Vis/Data/Axis/Overall accuracy on nvBench-Rob(schema).

use t2v_bench::tables::run_table;
use t2v_perturb::RobVariant;

fn main() {
    run_table(
        RobVariant::Schema,
        "Table 2: nvBench-Rob(schema)",
        "table2.csv",
        &[
            ("Seq2Vis", 14.55),
            ("Transformer", 29.61),
            ("RGVisNet", 44.91),
            ("GRED", 61.93),
        ],
    );
}
