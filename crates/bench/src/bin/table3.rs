//! Table 3 — Vis/Data/Axis/Overall accuracy on nvBench-Rob(nlq,schema).

use t2v_bench::tables::run_table;
use t2v_perturb::RobVariant;

fn main() {
    run_table(
        RobVariant::Both,
        "Table 3: nvBench-Rob(nlq,schema)",
        "table3.csv",
        &[
            ("Seq2Vis", 5.50),
            ("Transformer", 12.77),
            ("RGVisNet", 24.81),
            ("GRED", 54.85),
        ],
    );
}
