//! `servebench` — closed-loop load generator for `t2v-serve`.
//!
//! Spawns the service on a loopback port, then drives `POST /v1/translate`
//! with N concurrent keep-alive clients for a fixed duration, across two
//! scenario axes:
//!
//! * **backend** (`--backends gred,rgvisnet,...`) — which registered
//!   translator serves the traffic (backend selection on every request);
//! * **cache mode** — *hot* (default config; clients cycle a working set of
//!   distinct queries, so steady state is mostly cache hits — the "millions
//!   of users asking popular questions" shape) vs *cold* (cache disabled;
//!   every request runs the full model — the worst-case all-unique-traffic
//!   shape);
//! * **tenants** (`--tenants N`) — one server carrying the default tenant
//!   plus N extras (corpora `tiny:101..`), every client pinned to its
//!   tenant's `/v1/t/{id}/translate` route: the cost of tenancy itself
//!   (table resolution, per-epoch cache namespacing) under both cache
//!   modes, reported per tenant under `serving.tenants`.
//!
//! * **trace** (`--trace`) — the observability tax (DESIGN.md §12): the
//!   same hot/cold load twice, once with the flight recorder fully off
//!   (`trace_sample=0 trace_force_slow_ms=0 trace_buffer=0` — the id
//!   header still rides every response) and once fully on
//!   (`trace_sample=1` — every request records its span tree and lands in
//!   the recorder), reporting the throughput/latency overhead under
//!   `serving.trace_overhead`; `--trace` runs *only* this axis.
//!
//! * **obs** (`--obs`) — the ops-plane tax (DESIGN.md §15): the same
//!   hot/cold load with the whole ops plane off (`obs_sample_ms=0
//!   obs_profile_hz=0`) vs fully on (sampler at 250 ms, profiler at 97 Hz,
//!   three SLOs burning, full tracing so the profiler has stacks to walk),
//!   reported under `serving.obs_overhead`; the acceptance budget is ≤3%.
//!   `--obs` runs *only* this axis.
//!
//! * **open-loop concurrency** (`--open-loop [--connections N]`) — the
//!   C10k axis (DESIGN.md §14): N keep-alive connections held open against
//!   one server while a small bounded set of in-flight requests sweeps
//!   round-robin across *all* of them, so every socket carries traffic but
//!   almost all are idle at any instant — the fleet-of-dashboards shape the
//!   event driver exists for. Runs a connection-count grid (100 / 1 000 /
//!   N) against both `net=event` and `net=threaded`, reporting per-cell
//!   p50/p95/p99 under `serving.concurrency`; `--open-loop` runs *only*
//!   this axis (the others' rows are preserved).
//!
//! * **chaos** (`--chaos`) — a deterministic fault storm (DESIGN.md §11):
//!   baseline traffic, then `t2v-fault` arms `backend.error` against the
//!   live server so every worker job fails and the circuit breaker opens
//!   (fast 503s), then the plan disarms and a probe loop measures how long
//!   the breaker takes to serve the first clean 200 again. Reports storm
//!   error rate, storm p99, and recovery time under `serving.chaos`;
//!   `--chaos` runs *only* this axis (the others' rows are preserved).
//!
//! Reports throughput and a client-side latency distribution (p50/p95/p99),
//! and merges a `serving` section into `BENCH_perf.json` — top-level
//! `hot`/`cold` rows for the first backend (GRED, the reference numbers)
//! plus per-backend rows under `serving.backends`, per-tenant rows under
//! `serving.tenants`, and fault-storm rows under `serving.chaos` — without
//! disturbing the sections `perfsnap` owns.
//!
//! Every merge stamps `serving.build` with the crate version and `git
//! describe` output, so a BENCH_perf.json row is traceable to the exact
//! tree that produced it.
//!
//! Usage: `cargo run --release -p t2v-bench --bin servebench
//!         [--quick] [--clients N] [--secs S] [--backends a,b]
//!         [--tenants N] [--chaos] [--trace] [--obs]
//!         [--open-loop] [--connections N] [--out PATH]`

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use t2v_corpus::{generate, CorpusConfig};
use t2v_engine::Json;
use t2v_serve::{ServeConfig, Server, ServerState};

struct ClientStats {
    latencies_ns: Vec<u64>,
    ok: u64,
    cache_hits: u64,
    rejected: u64,
    other: u64,
}

struct Scenario {
    backend: String,
    mode: &'static str,
    /// Which retrieval index served the scenario (`flat` or an `ivf(...)`
    /// label) — cold rows are meaningless without knowing what scanned.
    index: String,
    requests: u64,
    rps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_us: f64,
    cache_hit_rate: f64,
    rejected: u64,
    other_errors: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let chaos = args.iter().any(|a| a == "--chaos");
    let trace_axis = args.iter().any(|a| a == "--trace");
    let obs_axis = args.iter().any(|a| a == "--obs");
    let open_loop = args.iter().any(|a| a == "--open-loop");
    let connections: usize = flag(&args, "--connections").unwrap_or(10_000);
    let clients: usize = flag(&args, "--clients").unwrap_or(8);
    let secs: u64 = flag(&args, "--secs").unwrap_or(if quick { 1 } else { 4 });
    let tenant_count: usize = flag(&args, "--tenants").unwrap_or(0);
    let backends_arg = args
        .iter()
        .position(|a| a == "--backends")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "gred,rgvisnet".to_string());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    let backend_ids: Vec<String> = {
        // Borrow the config parser for validation + ordering.
        let mut probe = ServeConfig::default();
        if let Err(e) = probe.set("backends", &backends_arg) {
            eprintln!("servebench: --backends: {}", e.message);
            std::process::exit(2);
        }
        probe.backend_ids().iter().map(|s| s.to_string()).collect()
    };

    println!(
        "servebench: {clients} closed-loop clients × {secs}s per scenario, backends [{}] ({} threads)",
        backend_ids.join(", "),
        t2v_parallel::thread_count()
    );
    let corpus = generate(&CorpusConfig::tiny(7));

    if open_loop {
        let report = run_concurrency(&corpus, clients, Duration::from_secs(secs), connections);
        for (net, rows) in &report.nets {
            for row in rows {
                println!(
                    "  {net:<8} c={:<6} {:>8.0} req/s  p50 {:>8.1} µs  p95 {:>8.1} µs  p99 {:>8.1} µs  503s {}  errors {}  conn failures {}",
                    row.connections, row.rps, row.p50_us, row.p95_us, row.p99_us,
                    row.rejected, row.other_errors, row.conn_failures
                );
            }
        }
        merge_report(
            &out_path,
            clients,
            secs,
            MergeSections {
                concurrency: Some(&report),
                ..Default::default()
            },
        );
        println!("merged serving.concurrency section into {out_path}");
        return;
    }

    if chaos {
        let report = run_chaos(&corpus, clients, Duration::from_secs(secs));
        println!(
            "  chaos/baseline {:>8.0} req/s  p99 {:>8.1} µs  errors {:.1}%",
            report.baseline.rps,
            report.baseline.p99_us,
            error_rate(&report.baseline) * 100.0
        );
        println!(
            "  chaos/storm    {:>8.0} req/s  p99 {:>8.1} µs  errors {:.1}%  (500s+503s: {})",
            report.storm.rps,
            report.storm.p99_us,
            error_rate(&report.storm) * 100.0,
            report.storm.rejected + report.storm.other_errors
        );
        println!(
            "  chaos/recovery {:>8.1} ms to first clean 200",
            report.recovery_ms
        );
        println!(
            "  chaos/post     {:>8.0} req/s  p99 {:>8.1} µs  errors {:.1}%",
            report.post.rps,
            report.post.p99_us,
            error_rate(&report.post) * 100.0
        );
        merge_report(
            &out_path,
            clients,
            secs,
            MergeSections {
                chaos: Some(&report),
                ..Default::default()
            },
        );
        println!("merged serving.chaos section into {out_path}");
        return;
    }

    if trace_axis {
        let rounds = if quick { 2 } else { 3 };
        let report = run_trace_overhead(&corpus, clients, Duration::from_secs(secs), rounds);
        for row in &report.rows {
            println!(
                "  trace/{:<4} off {:>8.0} req/s (mean {:>7.1} µs)  on {:>8.0} req/s (mean {:>7.1} µs)  overhead {:>+5.1}%",
                row.mode, row.off.rps, row.off.mean_us, row.on.rps, row.on.mean_us, row.overhead_pct
            );
        }
        merge_report(
            &out_path,
            clients,
            secs,
            MergeSections {
                trace: Some(&report),
                ..Default::default()
            },
        );
        println!("merged serving.trace_overhead section into {out_path}");
        return;
    }

    if obs_axis {
        // The cold arm runs at ~1.5k req/s where run-to-run variance can
        // exceed the ≤3% budget being measured; extra rounds let the
        // best-of protocol converge on the true floor of each arm.
        let rounds = if quick { 2 } else { 5 };
        // Few closed-loop clients: with N clients queued on one core every
        // scheduler hiccup is amplified N× into mean latency, and the ±3%
        // question disappears under ±8% queueing noise. Two clients keep
        // the server busy while measuring service time, not queue time.
        let obs_clients = clients.min(2);
        let report = run_obs_overhead(&corpus, obs_clients, Duration::from_secs(secs), rounds);
        for row in &report.rows {
            println!(
                "  obs/{:<4}   off {:>8.0} req/s (mean {:>7.1} µs)  on {:>8.0} req/s (mean {:>7.1} µs)  overhead {:>+5.1}%",
                row.mode, row.off.rps, row.off.mean_us, row.on.rps, row.on.mean_us, row.overhead_pct
            );
        }
        merge_report(
            &out_path,
            clients,
            secs,
            MergeSections {
                obs: Some(&report),
                ..Default::default()
            },
        );
        println!("merged serving.obs_overhead section into {out_path}");
        return;
    }

    let mut scenarios: Vec<Scenario> = Vec::new();
    for id in &backend_ids {
        for (mode, cache) in [("hot", true), ("cold", false)] {
            let mut config = ServeConfig::default();
            config.set("addr", "127.0.0.1:0").unwrap();
            config.set("backends", id).unwrap();
            if !cache {
                config.set("cache_capacity", "0").unwrap();
            }
            let state = Arc::new(
                ServerState::from_corpus(&corpus, config).expect("servebench state builds"),
            );
            let server = Server::spawn(Arc::clone(&state)).expect("bind loopback");
            scenarios.push(run_scenario(
                id,
                mode,
                "/v1/translate",
                &corpus,
                &server,
                clients,
                Duration::from_secs(secs),
            ));
            server.shutdown();
        }
    }

    // Tenant axis: one server, default + N tenants, every scenario pinned
    // to one tenant's route so the rows separate tenancy cost per tenant.
    let mut tenant_scenarios: Vec<(String, Scenario)> = Vec::new();
    if tenant_count > 0 {
        let specs: Vec<t2v_tenant::TenantSpec> = (0..tenant_count)
            .map(|i| t2v_tenant::TenantSpec {
                id: format!("t{}", i + 1),
                corpus: t2v_tenant::parse_corpus_spec(&format!("tiny:{}", 101 + i)).unwrap(),
            })
            .collect();
        let tenants_knob = specs
            .iter()
            .map(t2v_tenant::TenantSpec::entry)
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "servebench: tenants axis — default + [{}], per-tenant routes",
            tenants_knob
        );
        for (mode, cache) in [("hot", true), ("cold", false)] {
            let mut config = ServeConfig::default();
            config.set("addr", "127.0.0.1:0").unwrap();
            config.set("backends", "gred").unwrap();
            config.set("tenants", &tenants_knob).unwrap();
            if !cache {
                config.set("cache_capacity", "0").unwrap();
            }
            let state =
                Arc::new(ServerState::build(config).expect("servebench tenant state builds"));
            let server = Server::spawn(Arc::clone(&state)).expect("bind loopback");
            // Default tenant first (the unprefixed route), then each extra
            // on its scoped route, each driven with its *own* corpus's
            // queries.
            tenant_scenarios.push((
                "default".to_string(),
                run_scenario(
                    "gred",
                    mode,
                    "/v1/translate",
                    &corpus,
                    &server,
                    clients,
                    Duration::from_secs(secs),
                ),
            ));
            for spec in &specs {
                let tenant_corpus = generate(&spec.corpus.corpus_config());
                tenant_scenarios.push((
                    spec.id.clone(),
                    run_scenario(
                        "gred",
                        mode,
                        &format!("/v1/t/{}/translate", spec.id),
                        &tenant_corpus,
                        &server,
                        clients,
                        Duration::from_secs(secs),
                    ),
                ));
            }
            server.shutdown();
        }
    }

    for (tenant, s) in &tenant_scenarios {
        println!(
            "  tenant {:<8}/{:<4} {:>8.0} req/s  p50 {:>8.1} µs  p95 {:>8.1} µs  p99 {:>8.1} µs  hits {:>5.1}%  503s {}  errors {}",
            tenant, s.mode, s.rps, s.p50_us, s.p95_us, s.p99_us, s.cache_hit_rate * 100.0, s.rejected, s.other_errors
        );
    }
    for s in &scenarios {
        println!(
            "  {:<12}/{:<4} {:>8.0} req/s  p50 {:>8.1} µs  p95 {:>8.1} µs  p99 {:>8.1} µs  mean {:>8.1} µs  hits {:>5.1}%  503s {}  errors {}",
            s.backend, s.mode, s.rps, s.p50_us, s.p95_us, s.p99_us, s.mean_us, s.cache_hit_rate * 100.0, s.rejected, s.other_errors
        );
    }

    merge_report(
        &out_path,
        clients,
        secs,
        MergeSections {
            scenarios: &scenarios,
            tenant_scenarios: &tenant_scenarios,
            ..Default::default()
        },
    );
    println!("merged serving section into {out_path}");
}

struct TraceOverheadRow {
    mode: &'static str,
    off: Scenario,
    on: Scenario,
    /// Relative mean-latency cost of full tracing, in percent (negative =
    /// measured faster with tracing on, i.e. inside run-to-run noise).
    overhead_pct: f64,
}

struct TraceReport {
    rows: Vec<TraceOverheadRow>,
}

/// The trace axis: the same closed-loop load with the recorder fully off
/// (sampling, slow-trigger, and buffer all zeroed — requests still get an
/// id header) and fully on (`trace_sample=1`: every request records its
/// span tree and is stored in the flight recorder). The per-mode overhead
/// is the relative mean-latency increase; the acceptance budget is ≤3%.
///
/// The signal is small (single-digit microseconds per request), so one
/// off/on pair is dominated by scheduler noise on small machines. The axis
/// interleaves `rounds` off/on pairs and compares the *best* mean of each
/// arm: transient slowdowns (a GC-less runtime still shares the core with
/// the kernel) inflate some rounds, but the minimum mean is the run where
/// the arm got the machine to itself, which is the honest cost comparison.
fn run_trace_overhead(
    corpus: &t2v_corpus::Corpus,
    clients: usize,
    secs: Duration,
    rounds: usize,
) -> TraceReport {
    println!(
        "servebench: trace axis — recorder off vs on, hot and cold ({rounds} interleaved rounds)"
    );
    let run = |mode: &'static str, cache: bool, on: bool| -> Scenario {
        let mut config = ServeConfig::default();
        config.set("addr", "127.0.0.1:0").unwrap();
        config.set("backends", "gred").unwrap();
        if !cache {
            config.set("cache_capacity", "0").unwrap();
        }
        if on {
            config.set("trace_sample", "1").unwrap();
        } else {
            config.set("trace_sample", "0").unwrap();
            config.set("trace_force_slow_ms", "0").unwrap();
            config.set("trace_buffer", "0").unwrap();
        }
        let state =
            Arc::new(ServerState::from_corpus(corpus, config).expect("trace axis state builds"));
        let server = Server::spawn(Arc::clone(&state)).expect("bind loopback");
        let s = run_scenario(
            "gred",
            mode,
            "/v1/translate",
            corpus,
            &server,
            clients,
            secs,
        );
        server.shutdown();
        s
    };
    let best = |mut runs: Vec<Scenario>| -> Scenario {
        let mut best = runs.pop().expect("at least one round");
        for s in runs {
            if s.mean_us > 0.0 && (best.mean_us == 0.0 || s.mean_us < best.mean_us) {
                best = s;
            }
        }
        best
    };
    let rows = [("hot", true), ("cold", false)]
        .into_iter()
        .map(|(mode, cache)| {
            let mut offs = Vec::with_capacity(rounds);
            let mut ons = Vec::with_capacity(rounds);
            for _ in 0..rounds.max(1) {
                offs.push(run(mode, cache, false));
                ons.push(run(mode, cache, true));
            }
            let off = best(offs);
            let on = best(ons);
            let overhead_pct = if off.mean_us > 0.0 {
                (on.mean_us / off.mean_us - 1.0) * 100.0
            } else {
                0.0
            };
            TraceOverheadRow {
                mode,
                off,
                on,
                overhead_pct,
            }
        })
        .collect();
    TraceReport { rows }
}

/// The obs axis: the same interleaved best-of-rounds protocol as the trace
/// axis, but toggling the entire ops plane. Both arms run full tracing
/// (`trace_sample=1`) — the tracing tax is the `--trace` axis's business,
/// and the profiler needs real span stacks to walk — so the delta here
/// isolates the ops plane itself. *Off* is a traced server with no
/// sampler, no profiler, and no SLO engine; *on* adds the sampler at a
/// 250 ms cadence, the stage profiler at 97 Hz, and three evaluated SLOs —
/// the most expensive observability posture an operator can configure.
/// The acceptance budget for the mean-latency overhead is ≤3%.
fn run_obs_overhead(
    corpus: &t2v_corpus::Corpus,
    clients: usize,
    secs: Duration,
    rounds: usize,
) -> TraceReport {
    println!(
        "servebench: obs axis — ops plane off vs on, hot and cold ({rounds} interleaved rounds)"
    );
    let run = |mode: &'static str, cache: bool, on: bool| -> Scenario {
        let mut config = ServeConfig::default();
        config.set("addr", "127.0.0.1:0").unwrap();
        config.set("backends", "gred").unwrap();
        if !cache {
            config.set("cache_capacity", "0").unwrap();
        }
        config.set("trace_sample", "1").unwrap();
        if on {
            config.set("obs_sample_ms", "250").unwrap();
            config.set("obs_profile_hz", "97").unwrap();
            config
                .set("slo", "availability:0.999;latency:p99<5ms;cache_hit:0.7")
                .unwrap();
        } else {
            config.set("obs_sample_ms", "0").unwrap();
            config.set("obs_profile_hz", "0").unwrap();
        }
        let state =
            Arc::new(ServerState::from_corpus(corpus, config).expect("obs axis state builds"));
        let server = Server::spawn(Arc::clone(&state)).expect("bind loopback");
        let s = run_scenario(
            "gred",
            mode,
            "/v1/translate",
            corpus,
            &server,
            clients,
            secs,
        );
        server.shutdown();
        s
    };
    let best = |mut runs: Vec<Scenario>| -> Scenario {
        let mut best = runs.pop().expect("at least one round");
        for s in runs {
            if s.mean_us > 0.0 && (best.mean_us == 0.0 || s.mean_us < best.mean_us) {
                best = s;
            }
        }
        best
    };
    let rows = [("hot", true), ("cold", false)]
        .into_iter()
        .map(|(mode, cache)| {
            let mut offs = Vec::with_capacity(rounds);
            let mut ons = Vec::with_capacity(rounds);
            for _ in 0..rounds.max(1) {
                offs.push(run(mode, cache, false));
                ons.push(run(mode, cache, true));
            }
            let off = best(offs);
            let on = best(ons);
            let overhead_pct = if off.mean_us > 0.0 {
                (on.mean_us / off.mean_us - 1.0) * 100.0
            } else {
                0.0
            };
            TraceOverheadRow {
                mode,
                off,
                on,
                overhead_pct,
            }
        })
        .collect();
    TraceReport { rows }
}

/// `git describe` of the tree that produced the numbers (falls back to the
/// bare commit hash, then to "unknown" outside a work tree), so every
/// report row is attributable to an exact build.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

struct ChaosReport {
    baseline: Scenario,
    storm: Scenario,
    recovery_ms: f64,
    post: Scenario,
}

fn error_rate(s: &Scenario) -> f64 {
    if s.requests == 0 {
        0.0
    } else {
        (s.rejected + s.other_errors) as f64 / s.requests as f64
    }
}

/// The chaos axis: measure the failure domain end to end. Cache off so every
/// request exercises the worker path; fast breaker knobs so open/half-open
/// transitions happen inside a bench-sized run. Phases: clean baseline →
/// armed `backend.error` storm (500s until the breaker opens, then fast
/// 503s) → disarm and probe until the first clean 200 (recovery time) →
/// clean post-storm traffic proving full service is restored.
fn run_chaos(corpus: &t2v_corpus::Corpus, clients: usize, secs: Duration) -> ChaosReport {
    let mut config = ServeConfig::default();
    config.set("addr", "127.0.0.1:0").unwrap();
    config.set("backends", "gred").unwrap();
    config.set("cache_capacity", "0").unwrap();
    config.set("breaker_window", "8").unwrap();
    config.set("breaker_min_samples", "4").unwrap();
    config.set("breaker_threshold_pct", "50").unwrap();
    config.set("breaker_open_ms", "250").unwrap();
    config.set("degrade_stale", "false").unwrap();
    let state = Arc::new(ServerState::from_corpus(corpus, config).expect("chaos state builds"));
    let server = Server::spawn(Arc::clone(&state)).expect("bind loopback");

    println!("servebench: chaos axis — baseline, storm, recovery, post");
    let baseline = run_scenario(
        "gred",
        "baseline",
        "/v1/translate",
        corpus,
        &server,
        clients,
        secs,
    );

    let plan = t2v_fault::FaultPlan::parse("seed=7;backend.error:backend=gred")
        .expect("chaos fault plan parses");
    t2v_fault::arm(&plan);
    let storm = run_scenario(
        "gred",
        "storm",
        "/v1/translate",
        corpus,
        &server,
        clients,
        secs,
    );

    // Recovery: the instant the storm lifts, how long until the first clean
    // 200? Bounded by the breaker cool-down (250 ms) plus one probe.
    t2v_fault::disarm();
    let disarmed = Instant::now();
    let recovery_ms = {
        let ex = &corpus.dev[0];
        let body = Json::obj([
            ("nlq", Json::str(ex.nlq.as_str())),
            ("db", Json::str(corpus.databases[ex.db].id.as_str())),
            ("backend", Json::str("gred")),
        ])
        .compact();
        let req = format!(
            "POST /v1/translate HTTP/1.1\r\nHost: servebench\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .into_bytes();
        let stream = TcpStream::connect(server.addr()).expect("connect for recovery probe");
        stream
            .set_read_timeout(Some(Duration::from_secs(70)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut writer = stream;
        let deadline = disarmed + Duration::from_secs(30);
        loop {
            writer.write_all(&req).expect("write recovery probe");
            match read_response(&mut reader) {
                Some((200, _)) => break disarmed.elapsed().as_secs_f64() * 1e3,
                Some(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                _ => break f64::NAN, // wedged — the report will show it
            }
        }
    };

    let post = run_scenario(
        "gred",
        "post",
        "/v1/translate",
        corpus,
        &server,
        clients,
        secs,
    );
    server.shutdown();
    ChaosReport {
        baseline,
        storm,
        recovery_ms,
        post,
    }
}

fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn run_scenario(
    backend: &str,
    mode: &'static str,
    path: &str,
    corpus: &t2v_corpus::Corpus,
    server: &Server,
    clients: usize,
    duration: Duration,
) -> Scenario {
    let addr = server.addr();
    // Attribute the rows to the index that actually served them: the
    // pinned tenant's for `/v1/t/{id}/...` routes, the default tenant's
    // otherwise.
    let index = {
        let state = server.state();
        let table = state.tenants();
        let runtime = path
            .strip_prefix("/v1/t/")
            .and_then(|rest| rest.split('/').next())
            .and_then(|id| table.get(id))
            .unwrap_or(&state.default_tenant);
        runtime.index_kind().label()
    };
    // Working set: enough distinct queries that the prompt cache key space
    // is realistic, few enough that the hot scenario actually re-hits them.
    // Every request names its backend explicitly, exercising the /v1
    // selection path (tenant scenarios additionally pin the tenant route).
    let requests: Vec<Vec<u8>> = corpus
        .dev
        .iter()
        .take(64)
        .map(|ex| {
            let body = Json::obj([
                ("nlq", Json::str(ex.nlq.as_str())),
                ("db", Json::str(corpus.databases[ex.db].id.as_str())),
                ("backend", Json::str(backend)),
            ])
            .compact();
            format!(
                "POST {path} HTTP/1.1\r\nHost: servebench\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            )
            .into_bytes()
        })
        .collect();

    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let all: Vec<ClientStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let requests = &requests;
                let stop = &stop;
                let total = &total;
                s.spawn(move || client_loop(addr, requests, c, stop, total))
            })
            .collect();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Release);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut latencies: Vec<u64> = Vec::new();
    let (mut ok, mut hits, mut rejected, mut other) = (0u64, 0u64, 0u64, 0u64);
    for c in all {
        latencies.extend(c.latencies_ns);
        ok += c.ok;
        hits += c.cache_hits;
        rejected += c.rejected;
        other += c.other;
    }
    latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[idx] as f64 / 1e3
    };
    let mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1e3
    };
    let n = total.load(Ordering::Relaxed);
    Scenario {
        backend: backend.to_string(),
        mode,
        index,
        requests: n,
        rps: n as f64 / duration.as_secs_f64(),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        mean_us,
        cache_hit_rate: if ok == 0 {
            0.0
        } else {
            hits as f64 / ok as f64
        },
        rejected,
        other_errors: other,
    }
}

fn client_loop(
    addr: std::net::SocketAddr,
    requests: &[Vec<u8>],
    client_id: usize,
    stop: &AtomicBool,
    total: &AtomicU64,
) -> ClientStats {
    let mut stats = ClientStats {
        latencies_ns: Vec::with_capacity(16 * 1024),
        ok: 0,
        cache_hits: 0,
        rejected: 0,
        other: 0,
    };
    let stream = TcpStream::connect(addr).expect("connect to server");
    stream
        .set_read_timeout(Some(Duration::from_secs(70)))
        .unwrap();
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    // Offset each client so they don't march through the working set in
    // lockstep (which would serialise on identical cache keys).
    let mut i = client_id * 7;
    while !stop.load(Ordering::Acquire) {
        let req = &requests[i % requests.len()];
        i += 1;
        let t0 = Instant::now();
        if writer.write_all(req).is_err() {
            break;
        }
        let Some((status, cache_hit)) = read_response(&mut reader) else {
            break;
        };
        stats.latencies_ns.push(t0.elapsed().as_nanos() as u64);
        total.fetch_add(1, Ordering::Relaxed);
        match status {
            200 => {
                stats.ok += 1;
                if cache_hit {
                    stats.cache_hits += 1;
                }
            }
            503 => stats.rejected += 1,
            _ => stats.other += 1,
        }
    }
    stats
}

/// Read one HTTP/1.1 response; returns (status, x-t2v-cache==hit).
fn read_response<R: BufRead>(reader: &mut R) -> Option<(u16, bool)> {
    let mut line = String::new();
    if reader.read_line(&mut line).ok()? == 0 {
        return None;
    }
    let status: u16 = line.split(' ').nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    let mut cache_hit = false;
    loop {
        line.clear();
        reader.read_line(&mut line).ok()?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed.split_once(':')?;
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().ok()?;
        } else if name.eq_ignore_ascii_case("x-t2v-cache") {
            cache_hit = value.trim() == "hit";
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some((status, cache_hit))
}

fn scenario_json(s: &Scenario) -> Json {
    let round1 = |x: f64| (x * 10.0).round() / 10.0;
    let round3 = |x: f64| (x * 1000.0).round() / 1000.0;
    Json::obj([
        ("index", Json::str(s.index.as_str())),
        ("requests", Json::Num(s.requests as f64)),
        ("rps", Json::Num(round1(s.rps))),
        ("p50_us", Json::Num(round1(s.p50_us))),
        ("p95_us", Json::Num(round1(s.p95_us))),
        ("p99_us", Json::Num(round1(s.p99_us))),
        ("mean_us", Json::Num(round1(s.mean_us))),
        ("cache_hit_rate", Json::Num(round3(s.cache_hit_rate))),
        ("rejected_503", Json::Num(s.rejected as f64)),
        ("other_errors", Json::Num(s.other_errors as f64)),
    ])
}

struct ConcRow {
    connections: usize,
    requests: u64,
    rps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_us: f64,
    rejected: u64,
    other_errors: u64,
    /// Sockets that failed to connect or died mid-run (client-side view of
    /// sheds, reaps, and resets — zero on a healthy run).
    conn_failures: u64,
}

struct ConcReport {
    /// Rows per driver (`"event"`, `"threaded"`), ascending connection count.
    nets: Vec<(String, Vec<ConcRow>)>,
}

/// The open-loop concurrency axis: hold `connections` keep-alive sockets
/// open and sweep a small bounded in-flight set (`clients` driver threads,
/// one blocking request each) round-robin across all of them. Most sockets
/// are idle at any instant — exactly the many-dashboards shape — so the
/// measured quantity is how request latency degrades as the *open socket
/// count* grows, for each connection driver.
fn run_concurrency(
    corpus: &t2v_corpus::Corpus,
    clients: usize,
    secs: Duration,
    connections: usize,
) -> ConcReport {
    // Client and server share one process, so every benched connection costs
    // two fds. Clamp to the soft RLIMIT_NOFILE — loudly, never silently —
    // when the requested count cannot fit.
    let connections = match nofile_soft_limit() {
        Some(limit) if connections > limit.saturating_sub(128) / 2 => {
            let usable = limit.saturating_sub(128) / 2;
            println!(
                "servebench: RLIMIT_NOFILE is {limit}; clamping --connections {connections} -> {usable} \
                 (2 fds per benched socket + headroom)"
            );
            usable.max(1)
        }
        _ => connections,
    };
    let grid: Vec<usize> = {
        let mut g: Vec<usize> = [100, 1000, connections]
            .into_iter()
            .filter(|&c| c > 0 && c <= connections)
            .collect();
        g.sort_unstable();
        g.dedup();
        g
    };
    println!(
        "servebench: open-loop concurrency axis — {} sockets grid {:?}, {clients} in flight",
        connections, grid
    );
    let mut nets = Vec::new();
    for net in ["event", "threaded"] {
        let mut config = ServeConfig::default();
        config.set("addr", "127.0.0.1:0").unwrap();
        config.set("backends", "gred").unwrap();
        config.set("net", net).unwrap();
        config
            .set("max_connections", &(connections + 128).to_string())
            .unwrap();
        let state = Arc::new(
            ServerState::from_corpus(corpus, config).expect("concurrency axis state builds"),
        );
        let mut rows = Vec::with_capacity(grid.len());
        for &count in &grid {
            // Fresh server per cell: connection gauges start from zero and
            // a straggler socket from the previous cell can't leak in.
            let server = Server::spawn(Arc::clone(&state)).expect("bind loopback");
            rows.push(run_concurrency_cell(
                net, corpus, &server, clients, secs, count,
            ));
            server.shutdown();
        }
        nets.push((net.to_string(), rows));
    }
    ConcReport { nets }
}

fn run_concurrency_cell(
    net: &str,
    corpus: &t2v_corpus::Corpus,
    server: &Server,
    clients: usize,
    secs: Duration,
    connections: usize,
) -> ConcRow {
    let addr = server.addr();
    let requests: Vec<Vec<u8>> = corpus
        .dev
        .iter()
        .take(64)
        .map(|ex| {
            let body = Json::obj([
                ("nlq", Json::str(ex.nlq.as_str())),
                ("db", Json::str(corpus.databases[ex.db].id.as_str())),
                ("backend", Json::str("gred")),
            ])
            .compact();
            format!(
                "POST /v1/translate HTTP/1.1\r\nHost: servebench\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            )
            .into_bytes()
        })
        .collect();

    let drivers = clients.clamp(1, connections);
    let stop = AtomicBool::new(false);
    // The timed window opens only after *every* socket is established —
    // connect cost varies wildly between drivers (the threaded acceptor
    // spawns a thread per socket) and must not eat into the measurement.
    let ready = std::sync::Barrier::new(drivers + 1);
    let all: Vec<(ClientStats, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..drivers)
            .map(|d| {
                let requests = &requests;
                let stop = &stop;
                let ready = &ready;
                // Driver d owns sockets d, d+drivers, d+2*drivers, ...
                let share = connections / drivers + usize::from(d < connections % drivers);
                s.spawn(move || open_loop_driver(addr, requests, d, share, stop, ready))
            })
            .collect();
        ready.wait();
        std::thread::sleep(secs);
        stop.store(true, Ordering::Release);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut latencies: Vec<u64> = Vec::new();
    let (mut ok, mut rejected, mut other, mut conn_failures) = (0u64, 0u64, 0u64, 0u64);
    for (c, failures) in all {
        latencies.extend(c.latencies_ns);
        ok += c.ok;
        rejected += c.rejected;
        other += c.other;
        conn_failures += failures;
    }
    latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[idx] as f64 / 1e3
    };
    let n = ok + rejected + other;
    let row = ConcRow {
        connections,
        requests: n,
        rps: n as f64 / secs.as_secs_f64(),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        mean_us: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1e3
        },
        rejected,
        other_errors: other,
        conn_failures,
    };
    println!(
        "  {net}/c{connections}: {:.0} req/s over {} sockets (p99 {:.1} µs, {} failures)",
        row.rps, connections, row.p99_us, conn_failures
    );
    row
}

/// The process's soft open-file limit, from `/proc/self/limits` (the axis
/// is Linux-only already — the event driver is epoll). `None` when the file
/// is unreadable or unparseable.
fn nofile_soft_limit() -> Option<usize> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// One open-loop driver thread: establish `share` keep-alive sockets, then
/// cycle through them forever, one blocking request at a time, so every
/// socket sees traffic while the rest stay parked on the server.
fn open_loop_driver(
    addr: std::net::SocketAddr,
    requests: &[Vec<u8>],
    driver_id: usize,
    share: usize,
    stop: &AtomicBool,
    ready: &std::sync::Barrier,
) -> (ClientStats, u64) {
    let mut stats = ClientStats {
        latencies_ns: Vec::with_capacity(4096),
        ok: 0,
        cache_hits: 0,
        rejected: 0,
        other: 0,
    };
    let mut failures = 0u64;
    let mut socks: Vec<Option<TcpStream>> = Vec::with_capacity(share);
    for _ in 0..share {
        match TcpStream::connect(addr) {
            Ok(s) => {
                let _ = s.set_read_timeout(Some(Duration::from_secs(70)));
                let _ = s.set_nodelay(true);
                socks.push(Some(s));
            }
            Err(_) => {
                failures += 1;
                socks.push(None);
            }
        }
    }
    ready.wait();
    let mut i = driver_id * 13;
    let mut slot = 0usize;
    while !stop.load(Ordering::Acquire) && !socks.is_empty() {
        let idx = slot % socks.len();
        slot += 1;
        let Some(stream) = socks[idx].as_mut() else {
            // A dead slot: reconnect so the target socket count recovers.
            match TcpStream::connect(addr) {
                Ok(s) => {
                    let _ = s.set_read_timeout(Some(Duration::from_secs(70)));
                    let _ = s.set_nodelay(true);
                    socks[idx] = Some(s);
                }
                Err(_) => failures += 1,
            }
            continue;
        };
        let req = &requests[i % requests.len()];
        i += 1;
        let t0 = Instant::now();
        if stream.write_all(req).is_err() {
            failures += 1;
            socks[idx] = None;
            continue;
        }
        // One response is outstanding on this socket and nothing else, so a
        // throwaway buffered reader never strands bytes between requests.
        let mut reader = BufReader::with_capacity(4096, &*stream);
        let Some((status, cache_hit)) = read_response(&mut reader) else {
            failures += 1;
            socks[idx] = None;
            continue;
        };
        stats.latencies_ns.push(t0.elapsed().as_nanos() as u64);
        match status {
            200 => {
                stats.ok += 1;
                if cache_hit {
                    stats.cache_hits += 1;
                }
            }
            503 => stats.rejected += 1,
            _ => stats.other += 1,
        }
    }
    (stats, failures)
}

/// Merge the `serving` section into the perf report, leaving everything else
/// (perfsnap's sections) untouched. The first benched backend's hot/cold
/// rows keep the original top-level layout (the ROADMAP reference numbers);
/// every backend additionally gets a row under `serving.backends.<id>`, the
/// `--tenants` axis writes per-tenant rows under `serving.tenants.<id>`, and
/// `--chaos` writes fault-storm rows under `serving.chaos`. Axes that did
/// not run this invocation keep their rows from the previous report.
/// The axes a servebench invocation actually measured; everything left at
/// `Default` is preserved from the prior report rather than overwritten.
#[derive(Default)]
struct MergeSections<'a> {
    scenarios: &'a [Scenario],
    tenant_scenarios: &'a [(String, Scenario)],
    chaos: Option<&'a ChaosReport>,
    trace: Option<&'a TraceReport>,
    /// The `--obs` axis reuses the trace-report shape (off/on/overhead).
    obs: Option<&'a TraceReport>,
    concurrency: Option<&'a ConcReport>,
}

fn merge_report(out_path: &str, clients: usize, secs: u64, sections: MergeSections<'_>) {
    let MergeSections {
        scenarios,
        tenant_scenarios,
        chaos,
        trace,
        obs,
        concurrency,
    } = sections;
    let mut doc = std::fs::read_to_string(out_path)
        .ok()
        .and_then(|t| Json::parse(&t).ok())
        .unwrap_or_else(|| Json::Obj(Default::default()));
    let mut serving = Json::obj([
        ("clients", Json::Num(clients as f64)),
        ("secs_per_scenario", Json::Num(secs as f64)),
        ("threads", Json::Num(t2v_parallel::thread_count() as f64)),
        (
            "build",
            Json::obj([
                ("version", Json::str(env!("CARGO_PKG_VERSION"))),
                ("git", Json::str(git_describe())),
            ]),
        ),
    ]);
    if let Some(first) = scenarios.first() {
        for s in scenarios.iter().filter(|s| s.backend == first.backend) {
            serving.set(s.mode, scenario_json(s));
        }
        let mut backends = Json::Obj(Default::default());
        for s in scenarios {
            let mut row = match backends.get(&s.backend) {
                Some(existing) => existing.clone(),
                None => Json::Obj(Default::default()),
            };
            row.set(s.mode, scenario_json(s));
            backends.set(&s.backend, row);
        }
        serving.set("backends", backends);
    } else if let Some(prior) = doc.get("serving") {
        // A --chaos-only run: keep the load axes from the previous report.
        for key in ["hot", "cold", "backends"] {
            if let Some(v) = prior.get(key) {
                serving.set(key, v.clone());
            }
        }
    }
    if tenant_scenarios.is_empty() {
        // Keep the previous run's tenant rows — reruns without --tenants
        // must not erase the axis.
        if let Some(prior) = doc.get("serving").and_then(|s| s.get("tenants")) {
            serving.set("tenants", prior.clone());
        }
    } else {
        let mut tenants = Json::Obj(Default::default());
        for (tenant, s) in tenant_scenarios {
            let mut row = match tenants.get(tenant) {
                Some(existing) => existing.clone(),
                None => Json::Obj(Default::default()),
            };
            row.set(s.mode, scenario_json(s));
            tenants.set(tenant, row);
        }
        serving.set("tenants", tenants);
    }
    match chaos {
        Some(report) => {
            let round1 = |x: f64| (x * 10.0).round() / 10.0;
            let phase = |s: &Scenario| {
                let mut row = scenario_json(s);
                row.set(
                    "error_rate",
                    Json::Num((error_rate(s) * 1000.0).round() / 1000.0),
                );
                row
            };
            serving.set(
                "chaos",
                Json::obj([
                    ("baseline", phase(&report.baseline)),
                    ("storm", phase(&report.storm)),
                    ("recovery_ms", Json::Num(round1(report.recovery_ms))),
                    ("post", phase(&report.post)),
                ]),
            );
        }
        None => {
            if let Some(prior) = doc.get("serving").and_then(|s| s.get("chaos")) {
                serving.set("chaos", prior.clone());
            }
        }
    }
    match trace {
        Some(report) => {
            let round1 = |x: f64| (x * 10.0).round() / 10.0;
            let mut rows = Json::Obj(Default::default());
            for row in &report.rows {
                rows.set(
                    row.mode,
                    Json::obj([
                        ("recorder_off", scenario_json(&row.off)),
                        ("recorder_on", scenario_json(&row.on)),
                        ("overhead_pct", Json::Num(round1(row.overhead_pct))),
                    ]),
                );
            }
            serving.set("trace_overhead", rows);
        }
        None => {
            if let Some(prior) = doc.get("serving").and_then(|s| s.get("trace_overhead")) {
                serving.set("trace_overhead", prior.clone());
            }
        }
    }
    match obs {
        Some(report) => {
            let round1 = |x: f64| (x * 10.0).round() / 10.0;
            let mut rows = Json::Obj(Default::default());
            for row in &report.rows {
                rows.set(
                    row.mode,
                    Json::obj([
                        ("obs_off", scenario_json(&row.off)),
                        ("obs_on", scenario_json(&row.on)),
                        ("overhead_pct", Json::Num(round1(row.overhead_pct))),
                    ]),
                );
            }
            serving.set("obs_overhead", rows);
        }
        None => {
            if let Some(prior) = doc.get("serving").and_then(|s| s.get("obs_overhead")) {
                serving.set("obs_overhead", prior.clone());
            }
        }
    }
    match concurrency {
        Some(report) => {
            let round1 = |x: f64| (x * 10.0).round() / 10.0;
            let mut nets = Json::Obj(Default::default());
            for (net, rows) in &report.nets {
                let mut cells = Json::Obj(Default::default());
                for row in rows {
                    cells.set(
                        &format!("c{}", row.connections),
                        Json::obj([
                            ("connections", Json::Num(row.connections as f64)),
                            ("requests", Json::Num(row.requests as f64)),
                            ("rps", Json::Num(round1(row.rps))),
                            ("p50_us", Json::Num(round1(row.p50_us))),
                            ("p95_us", Json::Num(round1(row.p95_us))),
                            ("p99_us", Json::Num(round1(row.p99_us))),
                            ("mean_us", Json::Num(round1(row.mean_us))),
                            ("rejected_503", Json::Num(row.rejected as f64)),
                            ("other_errors", Json::Num(row.other_errors as f64)),
                            ("conn_failures", Json::Num(row.conn_failures as f64)),
                        ]),
                    );
                }
                nets.set(net, cells);
            }
            serving.set("concurrency", nets);
        }
        None => {
            if let Some(prior) = doc.get("serving").and_then(|s| s.get("concurrency")) {
                serving.set("concurrency", prior.clone());
            }
        }
    }
    doc.set("serving", serving);
    let mut text = doc.pretty();
    text.push('\n');
    std::fs::write(out_path, text).expect("write perf report");
}
