//! `perfsnap` — the repository's machine-readable perf trajectory.
//!
//! Times the hot paths called out in DESIGN.md §5 and writes the results as
//! JSON to `BENCH_perf.json` (override with `--out PATH`), so every PR can
//! prove the retrieval/embedding substrate stayed fast:
//!
//! * `embed/sentence` and the scratch-buffer `embed_into` variant
//! * `retrieval/top10` over 1k / 6k / 50k vectors — both the flat
//!   pre-normalised index and a `Vec<Vec<f32>>` + per-pair-norm `cosine`
//!   baseline (the seed implementation), with the speedup recorded
//! * `retrieval/top10_batch64` at 6k vectors
//! * the `ann` section: IVF-indexed retrieval (`t2v-ann`) vs the flat scan
//!   over 200k / 1M synthetic clustered vectors, with recall@10 against
//!   the exact scan and one-time training cost recorded alongside
//! * `library/build` over the tiny corpus profile
//! * `gred/translate` end to end
//! * the `startup` section: cold library build (embedder + embeddings)
//!   vs `t2v-store` snapshot load, plus the snapshot size on disk
//!
//! Usage: `cargo run --release -p t2v-bench --bin perfsnap [--quick] [--out PATH]`

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt::Write as _;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use t2v_corpus::{generate, CorpusConfig};
use t2v_embed::{Hit, TextEmbedder, VectorIndex};
use t2v_gred::{default_gred, EmbeddingLibrary, GredConfig};

/// Best-of-N ns/iteration of `f`, with automatic iteration batching.
///
/// The minimum across samples is the standard noise-robust estimator on
/// shared machines: scheduler preemption only ever *adds* time, so the
/// fastest observed sample is the closest to the true cost.
fn time_ns<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    // Warm-up + batch sizing: target ~5 ms per sample.
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < Duration::from_millis(30) {
        std::hint::black_box(f());
        iters += 1;
    }
    let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    let batch = ((5e6 / per_iter.max(1.0)) as u64).clamp(1, 2_000_000);

    let mut best = f64::MAX;
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        best = best.min(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    best
}

/// The seed's retrieval path, kept verbatim as the perf baseline: nested
/// `Vec<Vec<f32>>` rows scored with a `cosine` that re-derives both norms on
/// every comparison. The cosine is the seed's original (three strict-order
/// iterator reductions), frozen here so later optimisations to the live
/// `t2v_embed::cosine` don't quietly move the baseline.
fn seed_cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na * nb)).clamp(-1.0, 1.0)
    }
}

struct NaiveIndex {
    vectors: Vec<Vec<f32>>,
}

impl NaiveIndex {
    fn top_k(&self, query: &[f32], k: usize) -> Vec<Hit> {
        struct Item(Hit);
        impl PartialEq for Item {
            fn eq(&self, other: &Self) -> bool {
                self.0 == other.0
            }
        }
        impl Eq for Item {}
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .0
                    .score
                    .partial_cmp(&self.0.score)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| self.0.id.cmp(&other.0.id))
            }
        }
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut heap: BinaryHeap<Item> = BinaryHeap::with_capacity(k + 1);
        for (id, v) in self.vectors.iter().enumerate() {
            let score = seed_cosine(query, v);
            heap.push(Item(Hit { id, score }));
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut hits: Vec<Hit> = heap.into_iter().map(|h| h.0).collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        hits
    }
}

/// Splitmix-style generator for the synthetic ANN corpora: deterministic,
/// seedable, and independent of the embedder (1M embeddings would dominate
/// the whole snapshot's runtime for no methodological gain — IVF's regime
/// is the *shape* of the data, clustered rows, not the text behind it).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Uniform in [-1, 1).
fn unit(state: &mut u64) -> f32 {
    ((xorshift(state) >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
}

fn l2_normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

struct Report {
    results: Vec<(String, f64)>,
    comparisons: Vec<(String, f64, f64)>,
}

impl Report {
    fn record(&mut self, name: &str, ns: f64) {
        println!("  {name:<34} {:>12}", fmt_ns(ns));
        self.results.push((name.to_string(), ns));
    }

    fn compare(&mut self, name: &str, baseline_ns: f64, flat_ns: f64) {
        println!(
            "  {name:<34} {:>12} vs naive {:>12}  ({:.1}x)",
            fmt_ns(flat_ns),
            fmt_ns(baseline_ns),
            baseline_ns / flat_ns
        );
        self.results.push((name.to_string(), flat_ns));
        self.comparisons
            .push((name.to_string(), baseline_ns, flat_ns));
    }

    fn to_json(&self) -> String {
        let unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"schema_version\": 1,");
        let _ = writeln!(s, "  \"generated_unix\": {unix},");
        let _ = writeln!(s, "  \"threads\": {},", t2v_parallel::thread_count());
        s.push_str("  \"results\": {\n");
        for (i, (name, ns)) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            let _ = writeln!(s, "    \"{name}\": {{ \"ns_per_iter\": {ns:.1} }}{comma}");
        }
        s.push_str("  },\n  \"baseline_comparisons\": {\n");
        for (i, (name, base, flat)) in self.comparisons.iter().enumerate() {
            let comma = if i + 1 < self.comparisons.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "    \"{name}\": {{ \"naive_ns\": {base:.1}, \"flat_ns\": {flat:.1}, \"speedup\": {:.2} }}{comma}",
                base / flat
            );
        }
        s.push_str("  }\n}\n");
        s
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    let samples = if quick { 5 } else { 15 };

    let mut report = Report {
        results: Vec::new(),
        comparisons: Vec::new(),
    };

    println!("perfsnap ({} threads)", t2v_parallel::thread_count());

    // ---- embedding ----
    let model = TextEmbedder::default_model();
    let sentence = "Please give me a histogram showing the change in wage over \
                    the date of hire in ascending manner.";
    report.record("embed/sentence", time_ns(samples, || model.embed(sentence)));
    let mut buf = vec![0f32; model.dims()];
    report.record(
        "embed/sentence_into",
        time_ns(samples, || model.embed_into(sentence, &mut buf)),
    );

    // ---- retrieval: flat store vs the seed's naive scan ----
    let sizes: &[usize] = if quick {
        &[1_000, 6_000]
    } else {
        &[1_000, 6_000, 50_000]
    };
    let largest = *sizes.last().unwrap();
    println!("  embedding {largest} corpus vectors...");
    let vectors: Vec<Vec<f32>> = {
        let texts: Vec<String> = (0..largest)
            .map(|i| format!("training question number {i} about salaries and cities"))
            .collect();
        t2v_parallel::par_map(&texts, |t| model.embed(t))
    };
    let q = model.embed("question about wages in each town");
    for &n in sizes {
        let mut flat = VectorIndex::with_capacity(n);
        for v in &vectors[..n] {
            flat.add_slice(v);
        }
        let naive = NaiveIndex {
            vectors: vectors[..n].to_vec(),
        };
        // Sanity before timing: rank-by-rank scores must agree to float
        // noise. (Ids can permute among near-ties: the naive scan divides by
        // freshly computed norms, the flat scan multiplies pre-normalised
        // rows, so scores differ in the last ulps.)
        let a = flat.top_k(&q, 10);
        let b = naive.top_k(&q, 10);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (x.score - y.score).abs() < 1e-4,
                "flat and naive retrieval disagree at n={n}: {x:?} vs {y:?}"
            );
        }
        // Extra samples on the fast side: best-of-N converges to the true
        // cost, and the flat scan's samples are cheap.
        let flat_ns = time_ns(samples * 2, || flat.top_k(&q, 10));
        let naive_ns = time_ns(samples.min(7), || naive.top_k(&q, 10));
        report.compare(&format!("retrieval/top10/{n}"), naive_ns, flat_ns);
    }

    // ---- batch retrieval ----
    let mut flat6k = VectorIndex::with_capacity(6_000);
    for v in &vectors[..6_000] {
        flat6k.add_slice(v);
    }
    let queries: Vec<Vec<f32>> = (0..64)
        .map(|i| model.embed(&format!("question {i} about wages in each town")))
        .collect();
    report.record(
        "retrieval/top10_batch64/6000",
        time_ns(samples.min(7), || flat6k.top_k_batch(&queries, 10)),
    );

    // ---- ANN: IVF-indexed retrieval vs the flat scan at library scale ----
    // Million-entry libraries are where the flat scan stops being cheap;
    // the corpus generator cannot produce one, so the rows are synthetic
    // *clustered* vectors — the regime IVF is designed for, and the shape
    // real embedding libraries take (entries cluster by NLQ template).
    // Queries are perturbed cluster members, recall@10 is measured against
    // the exact flat scan before anything is timed.
    let ann_sizes: &[usize] = if quick {
        &[20_000]
    } else {
        &[200_000, 1_000_000]
    };
    let dims = model.dims();
    let mut ann_section = t2v_engine::Json::obj([]);
    for &n in ann_sizes {
        println!("  generating {n} clustered vectors...");
        let clusters = (n / 256).clamp(64, 4096);
        let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ (n as u64);
        let mut centers = vec![0f32; clusters * dims];
        for x in centers.iter_mut() {
            *x = unit(&mut rng);
        }
        let mut flat = VectorIndex::with_capacity_dims(n, dims);
        let mut row = vec![0f32; dims];
        for _ in 0..n {
            let c = (xorshift(&mut rng) as usize) % clusters;
            let center = &centers[c * dims..(c + 1) * dims];
            for (x, &m) in row.iter_mut().zip(center) {
                *x = m + 0.3 * unit(&mut rng);
            }
            flat.add_slice(&row);
        }
        let queries: Vec<Vec<f32>> = (0..32)
            .map(|_| {
                let c = (xorshift(&mut rng) as usize) % clusters;
                let center = &centers[c * dims..(c + 1) * dims];
                let mut q: Vec<f32> = center.iter().map(|&m| m + 0.3 * unit(&mut rng)).collect();
                l2_normalize(&mut q);
                q
            })
            .collect();
        let t_train = Instant::now();
        let ivf = t2v_ann::IvfIndex::train(&flat, &t2v_ann::IvfConfig::default())
            .expect("corpus is above the training threshold");
        let train_ms = t_train.elapsed().as_secs_f64() * 1e3;
        println!(
            "  trained ivf({} cells, nprobe {}) in {:.0} ms",
            ivf.cells(),
            ivf.default_nprobe(),
            train_ms
        );
        // Recall before speed: the speedup only counts if the index still
        // finds what the exact scan finds.
        let mut overlap = 0usize;
        let mut total = 0usize;
        for q in &queries {
            let exact = flat.top_k_prenormalized(q, 10);
            let approx = ivf.search(&flat, q, 10, 0);
            overlap += approx
                .iter()
                .filter(|h| exact.iter().any(|e| e.id == h.id))
                .count();
            total += exact.len();
        }
        let recall = overlap as f64 / total.max(1) as f64;
        // Rotate queries while timing so neither side replays one
        // cache-warm probe path.
        let mut qi = 0usize;
        let flat_ns = time_ns(samples.min(5), || {
            qi += 1;
            flat.top_k_prenormalized(&queries[qi % queries.len()], 10)
        });
        let ivf_ns = time_ns(samples.min(7), || {
            qi += 1;
            ivf.search(&flat, &queries[qi % queries.len()], 10, 0)
        });
        println!(
            "  {:<34} {:>12} vs flat  {:>12}  ({:.1}x, recall@10 {recall:.3})",
            format!("retrieval/top10_ivf/{n}"),
            fmt_ns(ivf_ns),
            fmt_ns(flat_ns),
            flat_ns / ivf_ns
        );
        report
            .results
            .push((format!("retrieval/top10/{n}"), flat_ns));
        report
            .results
            .push((format!("retrieval/top10_ivf/{n}"), ivf_ns));
        ann_section.set(
            &format!("retrieval/top10/{n}"),
            t2v_engine::Json::obj([
                ("rows", t2v_engine::Json::Num(n as f64)),
                (
                    "flat_ns",
                    t2v_engine::Json::Num((flat_ns * 10.0).round() / 10.0),
                ),
                (
                    "ivf_ns",
                    t2v_engine::Json::Num((ivf_ns * 10.0).round() / 10.0),
                ),
                (
                    "speedup",
                    t2v_engine::Json::Num(((flat_ns / ivf_ns) * 100.0).round() / 100.0),
                ),
                (
                    "recall_at_10",
                    t2v_engine::Json::Num((recall * 1000.0).round() / 1000.0),
                ),
                ("cells", t2v_engine::Json::Num(ivf.cells() as f64)),
                ("nprobe", t2v_engine::Json::Num(ivf.default_nprobe() as f64)),
                ("quantized", t2v_engine::Json::Bool(ivf.quantized())),
                (
                    "train_ms",
                    t2v_engine::Json::Num((train_ms * 10.0).round() / 10.0),
                ),
                (
                    "index_bytes",
                    t2v_engine::Json::Num(ivf.memory_bytes() as f64),
                ),
            ]),
        );
    }

    // ---- library build + end-to-end translate ----
    let corpus = generate(&CorpusConfig::tiny(7));
    report.record(
        "library/build_tiny",
        time_ns(samples.min(7), || EmbeddingLibrary::build(&corpus, &model)),
    );
    let gred = default_gred(&corpus, GredConfig::default());
    let ex = &corpus.dev[0];
    let db = &corpus.databases[ex.db];
    report.record(
        "gred/translate",
        time_ns(samples.min(7), || gred.translate(&ex.nlq, db)),
    );

    // ---- startup: cold build vs snapshot load ----
    // Both rows time the `LibrarySource::resolve` seam — exactly what
    // `t2v-serve` runs at startup — so verification overhead (corpus
    // fingerprinting, embedder checks) is charged to both sides and the
    // speedup reflects the real warm path, not a bare decode. Cold builds
    // the embedder + embeds the whole training split; warm decodes the
    // t2v-store snapshot without re-embedding anything.
    let snap_path = std::env::temp_dir().join(format!("perfsnap-{}.t2vsnap", std::process::id()));
    let library = EmbeddingLibrary::build(&corpus, &model);
    let manifest = t2v_store::save(&snap_path, &library, &model).expect("write perfsnap snapshot");
    let embed_cfg = t2v_embed::EmbedConfig::default();
    let cold_ns = time_ns(samples.min(7), || {
        t2v_store::LibrarySource::Build
            .resolve(&corpus, &embed_cfg)
            .expect("cold build resolves")
    });
    report.record("startup/cold_build", cold_ns);
    let load_ns = time_ns(samples.min(7), || {
        t2v_store::LibrarySource::Snapshot {
            path: snap_path.clone(),
        }
        .resolve(&corpus, &embed_cfg)
        .expect("perfsnap snapshot loads")
    });
    report.record("startup/snapshot_load", load_ns);
    println!(
        "  startup: snapshot load is {:.1}x faster than cold build ({} bytes on disk)",
        cold_ns / load_ns,
        manifest.file_len
    );
    std::fs::remove_file(&snap_path).ok();

    let mut json = report.to_json();
    // The structured `startup` section (corpus size, bytes, speedup) rides
    // next to the flat results so the cold-start trajectory is one lookup.
    {
        let mut doc = t2v_engine::Json::parse(&json).expect("perfsnap emits valid JSON");
        doc.set(
            "startup",
            t2v_engine::Json::obj([
                ("corpus", t2v_engine::Json::str("tiny:7")),
                ("entries", t2v_engine::Json::Num(manifest.entries as f64)),
                (
                    "cold_build_ns",
                    t2v_engine::Json::Num((cold_ns * 10.0).round() / 10.0),
                ),
                (
                    "snapshot_load_ns",
                    t2v_engine::Json::Num((load_ns * 10.0).round() / 10.0),
                ),
                (
                    "speedup",
                    t2v_engine::Json::Num(((cold_ns / load_ns) * 100.0).round() / 100.0),
                ),
                (
                    "snapshot_bytes",
                    t2v_engine::Json::Num(manifest.file_len as f64),
                ),
            ]),
        );
        // The ANN axes live in their own section: flat vs IVF with recall,
        // training cost, and index footprint per corpus size.
        doc.set("ann", ann_section);
        json = doc.pretty();
        json.push('\n');
    }
    // `servebench` owns the report's `serving` section; carry it over so
    // re-running perfsnap never erases serving numbers (and vice versa).
    if let Some(serving) = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|t| t2v_engine::Json::parse(&t).ok())
        .and_then(|doc| doc.get("serving").cloned())
    {
        let mut doc = t2v_engine::Json::parse(&json).expect("perfsnap emits valid JSON");
        doc.set("serving", serving);
        json = doc.pretty();
        json.push('\n');
    }
    std::fs::write(&out_path, &json).expect("write BENCH_perf.json");
    println!("wrote {out_path}");
}
