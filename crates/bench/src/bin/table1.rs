//! Table 1 — Vis/Data/Axis/Overall accuracy on nvBench-Rob(nlq).

use t2v_bench::tables::run_table;
use t2v_perturb::RobVariant;

fn main() {
    run_table(
        RobVariant::Nlq,
        "Table 1: nvBench-Rob(nlq)",
        "table1.csv",
        &[
            ("Seq2Vis", 34.52),
            ("Transformer", 36.04),
            ("RGVisNet", 45.87),
            ("GRED", 59.98),
        ],
    );
}
