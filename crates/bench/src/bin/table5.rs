//! Table 5 / Figure 5 — case study: the DVQ each model produces for one
//! schema-renamed question, with chart execution (or "no chart" on failure).

use t2v_bench::{Ctx, ModelKind};
use t2v_engine::{chart, execute, to_vegalite, Store};
use t2v_perturb::RobVariant;

fn main() {
    let mut ctx = Ctx::from_args();
    // Pick a dual-variant case whose target executes and whose schema was
    // renamed under the referenced columns (mirrors the paper's
    // "department_id by first name" histogram case).
    let pick = {
        let set = ctx.rob.set(RobVariant::Both);
        let limit = ctx.limit.unwrap_or(set.len()).min(set.len());
        (0..limit)
            .find(|&i| {
                let ex = &set[i];
                let orig = &ctx.rob.original[ex.base];
                ex.target_text != orig.target_text && ex.target.where_clause.is_none()
            })
            .unwrap_or(0)
    };
    let (nlq, target_text, db_idx, base) = {
        let ex = &ctx.rob.set(RobVariant::Both)[pick];
        (ex.nlq.clone(), ex.target_text.clone(), ex.db, ex.base)
    };
    let db = ctx.rob.renamed[db_idx].clone();
    let store = Store::synthesize(&db, ctx.seed, 24);

    println!("== Table 5: case study (dual-variant example #{base}) ==\n");
    println!("NLQ        : {nlq}");
    println!("Target DVQ : {target_text}\n");
    let target = t2v_dvq::parse(&target_text).expect("target parses");
    match execute(&target, &store) {
        Ok(rs) => {
            println!("Target chart:\n{}", chart::render(target.chart, &rs, 40));
            println!(
                "Vega-Lite spec (target):\n{}\n",
                to_vegalite(&target, &rs).pretty()
            );
        }
        Err(e) => println!("Target failed to execute: {e}\n"),
    }

    for kind in [
        ModelKind::Seq2Vis,
        ModelKind::Transformer,
        ModelKind::RgVisNet,
        ModelKind::Gred,
    ] {
        let preds = ctx.predictions(kind, RobVariant::Both);
        let predicted = preds.get(pick).cloned().flatten();
        println!("--- {} ---", kind.label());
        match predicted {
            None => println!("(no output) → ✘ no chart\n"),
            Some(text) => {
                println!("DVQ: {text}");
                match t2v_dvq::parse(&text) {
                    Err(e) => println!("unparseable ({e}) → ✘ no chart\n"),
                    Ok(q) => match execute(&q, &store) {
                        Err(e) => println!("execution failed ({e}) → ✘ no chart\n"),
                        Ok(rs) => {
                            let m = t2v_dvq::components::ComponentMatch::grade(&q, &target);
                            let verdict = if m.overall {
                                "✔"
                            } else {
                                "✘ (chart differs)"
                            };
                            println!("{}{verdict}\n", chart::render(q.chart, &rs, 40));
                        }
                    },
                }
            }
        }
    }
}
