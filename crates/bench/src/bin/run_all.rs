//! Convenience driver: regenerates every table and figure in sequence by
//! invoking the sibling binaries' logic through the shared context. Models
//! are trained once; predictions are cached under results/cache/.

use t2v_bench::{Ctx, ModelKind};
use t2v_eval::{csv_row, render_overall_table, render_table};
use t2v_perturb::RobVariant;

fn main() {
    let mut ctx = Ctx::from_args();

    println!("{}", t2v_corpus::CorpusStats::of(&ctx.corpus).render());

    let models = [
        ModelKind::Seq2Vis,
        ModelKind::Transformer,
        ModelKind::RgVisNet,
        ModelKind::Gred,
    ];
    for (variant, title, csv_name, paper) in [
        (
            RobVariant::Nlq,
            "Table 1: nvBench-Rob(nlq)",
            "table1.csv",
            vec![
                ("Seq2Vis", 34.52),
                ("Transformer", 36.04),
                ("RGVisNet", 45.87),
                ("GRED", 59.98),
            ],
        ),
        (
            RobVariant::Schema,
            "Table 2: nvBench-Rob(schema)",
            "table2.csv",
            vec![
                ("Seq2Vis", 14.55),
                ("Transformer", 29.61),
                ("RGVisNet", 44.91),
                ("GRED", 61.93),
            ],
        ),
        (
            RobVariant::Both,
            "Table 3: nvBench-Rob(nlq,schema)",
            "table3.csv",
            vec![
                ("Seq2Vis", 5.50),
                ("Transformer", 12.77),
                ("RGVisNet", 24.81),
                ("GRED", 54.85),
            ],
        ),
    ] {
        let runs: Vec<t2v_eval::EvalRun> = models
            .iter()
            .map(|&kind| ctx.evaluate(kind, variant))
            .collect();
        let refs: Vec<&t2v_eval::EvalRun> = runs.iter().collect();
        println!("{}", render_table(title, &refs, &paper));
        let rows: Vec<String> = runs.iter().map(csv_row).collect();
        t2v_eval::write_csv(
            &ctx.results_dir.join(csv_name),
            "model,set,n,vis,data,axis,overall",
            &rows,
        )
        .expect("write results");
    }

    // Figure 3 (reuses the cached predictions).
    let mut rows = Vec::new();
    for (kind, paper) in [
        (ModelKind::RgVisNet, [85.17, 24.81]),
        (ModelKind::Transformer, [68.69, 12.77]),
        (ModelKind::Seq2Vis, [79.73, 5.50]),
    ] {
        let orig = ctx.evaluate(kind, RobVariant::Original);
        let both = ctx.evaluate(kind, RobVariant::Both);
        rows.push((
            kind.label(),
            vec![orig.accuracies, both.accuracies],
            Some(paper.to_vec()),
        ));
    }
    println!(
        "{}",
        render_overall_table(
            "Figure 3: accuracy collapse nvBench → nvBench-Rob(nlq,schema)",
            &["nvBench", "nvBench-Rob(nlq,schema)"],
            &rows,
        )
    );

    // Table 4 ablations.
    let mut rows = Vec::new();
    for (kind, paper) in [
        (ModelKind::Gred, [59.98, 61.93, 54.85]),
        (ModelKind::GredGeneratorOnly, [62.77, 42.13, 36.46]),
        (ModelKind::GredNoRtn, [61.08, 62.10, 51.90]),
        (ModelKind::GredNoDbg, [61.68, 42.47, 38.57]),
    ] {
        let mut accs = Vec::new();
        for v in [RobVariant::Nlq, RobVariant::Schema, RobVariant::Both] {
            accs.push(ctx.evaluate(kind, v).accuracies);
        }
        rows.push((kind.label(), accs, Some(paper.to_vec())));
    }
    println!(
        "{}",
        render_overall_table(
            "Table 4: ablation study (overall accuracy)",
            &["nlq", "schema", "(nlq,schema)"],
            &rows,
        )
    );
}
