//! Shared driver for Tables 1-3 (per-variant four-metric comparisons).

use crate::{Ctx, ModelKind};
use t2v_eval::{csv_row, render_table, write_csv};
use t2v_perturb::RobVariant;

/// Evaluate the four systems on one variant and print the paper-style table.
pub fn run_table(variant: RobVariant, title: &str, csv_name: &str, paper_overall: &[(&str, f64)]) {
    let mut ctx = Ctx::from_args();
    let models = [
        ModelKind::Seq2Vis,
        ModelKind::Transformer,
        ModelKind::RgVisNet,
        ModelKind::Gred,
    ];
    let runs: Vec<t2v_eval::EvalRun> = models
        .iter()
        .map(|&kind| ctx.evaluate(kind, variant))
        .collect();
    let refs: Vec<&t2v_eval::EvalRun> = runs.iter().collect();
    println!("{}", render_table(title, &refs, paper_overall));
    let rows: Vec<String> = runs.iter().map(csv_row).collect();
    write_csv(
        &ctx.results_dir.join(csv_name),
        "model,set,n,vis,data,axis,overall",
        &rows,
    )
    .expect("write results");
    println!("wrote results/{csv_name}");
}
