//! # t2v-bench — experiment harness
//!
//! Binaries regenerating every table and figure of the paper's evaluation
//! (see DESIGN.md's experiment index) plus criterion micro-benchmarks for
//! the substrate. All binaries accept `--seed`, `--profile paper|small`,
//! `--fresh` and `--limit`; results append to `results/`.

pub mod context;
pub mod tables;

pub use context::{Ctx, ModelKind};
