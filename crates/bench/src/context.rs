//! Shared experiment context: corpus + nvBench-Rob construction, model
//! training with on-disk prediction caching, and CLI argument handling.
//!
//! Every experiment binary accepts:
//!
//! * `--seed N` — experiment seed (default 7; all randomness derives from it)
//! * `--profile paper|small` — corpus scale (default `paper`: the full
//!   Figure 2 statistics; `small` for quick runs)
//! * `--fresh` — ignore cached predictions
//! * `--limit N` — evaluate only the first N examples per set

use std::path::PathBuf;
use t2v_baselines::{BaselineTrainConfig, RgVisNet, Seq2Vis, TransformerBaseline};
use t2v_core::Translator;
use t2v_corpus::{generate, Corpus, CorpusConfig};
use t2v_gred::{default_gred, Gred, GredConfig};
use t2v_perturb::{build_rob, NvBenchRob, RobVariant};

/// Which system to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    Seq2Vis,
    Transformer,
    RgVisNet,
    Gred,
    GredNoRtn,
    GredNoDbg,
    GredGeneratorOnly,
}

impl ModelKind {
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Seq2Vis => "Seq2Vis",
            ModelKind::Transformer => "Transformer",
            ModelKind::RgVisNet => "RGVisNet",
            ModelKind::Gred => "GRED",
            ModelKind::GredNoRtn => "GRED w/o RTN",
            ModelKind::GredNoDbg => "GRED w/o DBG",
            ModelKind::GredGeneratorOnly => "GRED w/o RTN&DBG",
        }
    }

    fn cache_tag(&self) -> &'static str {
        match self {
            ModelKind::Seq2Vis => "seq2vis",
            ModelKind::Transformer => "transformer",
            ModelKind::RgVisNet => "rgvisnet",
            ModelKind::Gred => "gred",
            ModelKind::GredNoRtn => "gred_nortn",
            ModelKind::GredNoDbg => "gred_nodbg",
            ModelKind::GredGeneratorOnly => "gred_genonly",
        }
    }
}

fn variant_tag(v: RobVariant) -> &'static str {
    match v {
        RobVariant::Original => "orig",
        RobVariant::Nlq => "nlq",
        RobVariant::Schema => "schema",
        RobVariant::Both => "both",
    }
}

/// The experiment context.
pub struct Ctx {
    pub corpus: Corpus,
    pub rob: NvBenchRob,
    pub seed: u64,
    pub profile: String,
    pub fresh: bool,
    pub limit: Option<usize>,
    pub results_dir: PathBuf,
    seq2vis: Option<Seq2Vis>,
    transformer: Option<TransformerBaseline>,
    rgvisnet: Option<RgVisNet>,
    gred: Vec<(ModelKind, Gred<t2v_llm::SimulatedChatModel>)>,
}

impl Ctx {
    /// Parse CLI arguments and build the corpus + robustness sets.
    pub fn from_args() -> Ctx {
        let args: Vec<String> = std::env::args().collect();
        let get = |flag: &str| -> Option<String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1).cloned())
        };
        let seed: u64 = get("--seed").and_then(|s| s.parse().ok()).unwrap_or(7);
        let profile = get("--profile").unwrap_or_else(|| "paper".to_string());
        let fresh = args.iter().any(|a| a == "--fresh");
        let limit = get("--limit").and_then(|s| s.parse().ok());
        Ctx::new(seed, &profile, fresh, limit)
    }

    pub fn new(seed: u64, profile: &str, fresh: bool, limit: Option<usize>) -> Ctx {
        let cfg = match profile {
            "small" => CorpusConfig::small(seed),
            "tiny" => CorpusConfig::tiny(seed),
            _ => CorpusConfig::paper(seed),
        };
        eprintln!("[ctx] generating corpus (profile={profile}, seed={seed})...");
        let corpus = generate(&cfg);
        eprintln!(
            "[ctx] corpus: {} dbs, {} train, {} dev",
            corpus.databases.len(),
            corpus.train.len(),
            corpus.dev.len()
        );
        let rob = build_rob(&corpus, seed ^ 0x0b);
        Ctx {
            corpus,
            rob,
            seed,
            profile: profile.to_string(),
            fresh,
            limit,
            results_dir: PathBuf::from("results"),
            seq2vis: None,
            transformer: None,
            rgvisnet: None,
            gred: Vec::new(),
        }
    }

    fn baseline_cfg(&self) -> BaselineTrainConfig {
        match self.profile.as_str() {
            "paper" => BaselineTrainConfig {
                max_train: 2600,
                epochs: 30,
                lr: 5e-3,
                hidden: 64,
                emb: 48,
                seed: self.seed,
                verbose: true,
                ..BaselineTrainConfig::default()
            },
            "small" => BaselineTrainConfig {
                max_train: 1300,
                epochs: 30,
                lr: 5e-3,
                hidden: 56,
                emb: 40,
                seed: self.seed,
                verbose: true,
                ..BaselineTrainConfig::default()
            },
            _ => BaselineTrainConfig {
                seed: self.seed,
                ..BaselineTrainConfig::fast()
            },
        }
    }

    /// Train/build the model if needed (mutating), without borrowing it out.
    fn ensure_model(&mut self, kind: ModelKind) {
        let _ = self.model(kind);
    }

    /// Immutable access to a previously ensured model.
    fn get_model(&self, kind: ModelKind) -> &dyn Translator {
        match kind {
            ModelKind::Seq2Vis => self.seq2vis.as_ref().expect("ensured"),
            ModelKind::Transformer => self.transformer.as_ref().expect("ensured"),
            ModelKind::RgVisNet => self.rgvisnet.as_ref().expect("ensured"),
            _ => {
                let (_, g) = self.gred.iter().find(|(k, _)| *k == kind).expect("ensured");
                g
            }
        }
    }

    fn model(&mut self, kind: ModelKind) -> &dyn Translator {
        match kind {
            ModelKind::Seq2Vis => {
                if self.seq2vis.is_none() {
                    eprintln!("[ctx] training Seq2Vis...");
                    let t = std::time::Instant::now();
                    self.seq2vis = Some(Seq2Vis::train(&self.corpus, &self.baseline_cfg()));
                    eprintln!("[ctx] Seq2Vis trained in {:?}", t.elapsed());
                }
                self.seq2vis.as_ref().unwrap()
            }
            ModelKind::Transformer => {
                if self.transformer.is_none() {
                    eprintln!("[ctx] training Transformer...");
                    let t = std::time::Instant::now();
                    self.transformer = Some(TransformerBaseline::train(
                        &self.corpus,
                        &self.baseline_cfg(),
                    ));
                    eprintln!("[ctx] Transformer trained in {:?}", t.elapsed());
                }
                self.transformer.as_ref().unwrap()
            }
            ModelKind::RgVisNet => {
                if self.rgvisnet.is_none() {
                    eprintln!("[ctx] building RGVisNet codebase...");
                    self.rgvisnet = Some(RgVisNet::build(&self.corpus));
                }
                self.rgvisnet.as_ref().unwrap()
            }
            _ => {
                if !self.gred.iter().any(|(k, _)| *k == kind) {
                    let config = match kind {
                        ModelKind::Gred => GredConfig::default(),
                        ModelKind::GredNoRtn => GredConfig::default().without_retuner(),
                        ModelKind::GredNoDbg => GredConfig::default().without_debugger(),
                        ModelKind::GredGeneratorOnly => GredConfig::default().generator_only(),
                        _ => unreachable!(),
                    };
                    eprintln!("[ctx] preparing {} ...", kind.label());
                    self.gred.push((kind, default_gred(&self.corpus, config)));
                }
                let (_, g) = self
                    .gred
                    .iter()
                    .find(|(k, _)| *k == kind)
                    .expect("just inserted");
                g as &dyn Translator
            }
        }
    }

    fn cache_path(&self, kind: ModelKind, variant: RobVariant) -> PathBuf {
        self.results_dir.join("cache").join(format!(
            "{}_s{}_{}_{}.tsv",
            self.profile,
            self.seed,
            kind.cache_tag(),
            variant_tag(variant)
        ))
    }

    /// Predictions of `kind` over a variant's test set, cached on disk.
    pub fn predictions(&mut self, kind: ModelKind, variant: RobVariant) -> Vec<Option<String>> {
        let set_len = self.rob.set(variant).len();
        let n = self.limit.unwrap_or(set_len).min(set_len);
        let path = self.cache_path(kind, variant);
        if !self.fresh {
            if let Some(cached) = load_cache(&path, n) {
                eprintln!("[ctx] {} / {}: cache hit", kind.label(), variant.label());
                return cached;
            }
        }
        eprintln!(
            "[ctx] {} / {}: predicting {n} examples...",
            kind.label(),
            variant.label()
        );
        // Resolve inputs before borrowing the model (it may mutate self).
        let inputs: Vec<(String, usize, bool)> = self.rob.set(variant)[..n]
            .iter()
            .map(|e| (e.nlq.clone(), e.db, e.uses_renamed))
            .collect();
        let t = std::time::Instant::now();
        self.ensure_model(kind);
        let model = self.get_model(kind);
        let preds: Vec<Option<String>> = {
            let corpus = &self.corpus;
            let rob = &self.rob;
            inputs
                .iter()
                .map(|(nlq, db, renamed)| {
                    let db = if *renamed {
                        &rob.renamed[*db]
                    } else {
                        &corpus.databases[*db]
                    };
                    model.predict(nlq, db)
                })
                .collect()
        };
        eprintln!("[ctx]   done in {:?}", t.elapsed());
        save_cache(&path, &preds);
        preds
    }

    /// Evaluate a model on a variant (with caching) and return the run.
    pub fn evaluate(&mut self, kind: ModelKind, variant: RobVariant) -> t2v_eval::EvalRun {
        let preds = self.predictions(kind, variant);
        let set = &self.rob.set(variant)[..preds.len()];
        // The set is sliced to the prediction count, so a mismatch can only
        // mean a bug in the caching layer — surface it instead of grading
        // misaligned pairs.
        t2v_eval::evaluate_predictions(kind.label(), variant, &preds, set)
            .expect("predictions sliced to set length")
    }
}

fn load_cache(path: &PathBuf, expect: usize) -> Option<Vec<Option<String>>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    for line in text.lines() {
        match line.strip_prefix("OK\t") {
            Some(p) => out.push(Some(p.to_string())),
            None => out.push(None),
        }
    }
    if out.len() >= expect {
        out.truncate(expect);
        Some(out)
    } else {
        None
    }
}

fn save_cache(path: &PathBuf, preds: &[Option<String>]) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut body = String::new();
    for p in preds {
        match p {
            Some(text) => {
                body.push_str("OK\t");
                body.push_str(&text.replace(['\n', '\t'], " "));
            }
            None => body.push_str("MISS"),
        }
        body.push('\n');
    }
    let _ = std::fs::write(path, body);
}
