//! Criterion micro-benchmarks for the substrate crates, backing the design
//! choices called out in DESIGN.md §5 (e.g. brute-force top-K retrieval,
//! allocation-light parsing, executor throughput, end-to-end GRED latency).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use t2v_corpus::{generate, CorpusConfig};
use t2v_embed::{TextEmbedder, VectorIndex};
use t2v_engine::Store;
use t2v_gred::{default_gred, GredConfig};
use t2v_perturb::rename_database;

const QUERY: &str = "Visualize BAR SELECT JOB_ID , AVG(MANAGER_ID) FROM employees \
                     WHERE salary BETWEEN 8000 AND 12000 AND commission_pct != \"null\" \
                     OR department_id <> 40 GROUP BY JOB_ID ORDER BY JOB_ID ASC";

fn bench_dvq(c: &mut Criterion) {
    let parsed = t2v_dvq::parse(QUERY).unwrap();
    c.bench_function("dvq/parse", |b| {
        b.iter(|| t2v_dvq::parse(black_box(QUERY)).unwrap())
    });
    c.bench_function("dvq/print", |b| {
        b.iter(|| t2v_dvq::Printer::default().print(black_box(&parsed)))
    });
    c.bench_function("dvq/grade", |b| {
        b.iter(|| {
            t2v_dvq::components::ComponentMatch::grade(black_box(&parsed), black_box(&parsed))
        })
    });
}

fn bench_embed(c: &mut Criterion) {
    let model = TextEmbedder::default_model();
    let text = "Please give me a histogram showing the change in wage over the date of hire in ascending manner.";
    c.bench_function("embed/sentence", |b| {
        b.iter(|| model.embed(black_box(text)))
    });
}

fn bench_retrieval(c: &mut Criterion) {
    let model = TextEmbedder::default_model();
    let mut group = c.benchmark_group("retrieval/top10");
    for &n in &[1_000usize, 6_000] {
        let mut index = VectorIndex::with_capacity(n);
        for i in 0..n {
            index.add(model.embed(&format!(
                "training question number {i} about salaries and cities"
            )));
        }
        let q = model.embed("question about wages in each town");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| index.top_k(black_box(&q), 10))
        });
    }
    group.finish();
}

fn bench_retrieval_batch(c: &mut Criterion) {
    let model = TextEmbedder::default_model();
    let n = 6_000usize;
    let mut index = VectorIndex::with_capacity(n);
    for i in 0..n {
        index.add(model.embed(&format!(
            "training question number {i} about salaries and cities"
        )));
    }
    let queries: Vec<Vec<f32>> = (0..64)
        .map(|i| model.embed(&format!("question {i} about wages in each town")))
        .collect();
    c.bench_function("retrieval/top10_batch64_6000", |b| {
        b.iter(|| index.top_k_batch(black_box(&queries), 10))
    });
}

fn bench_embed_into(c: &mut Criterion) {
    let model = TextEmbedder::default_model();
    let text = "Please give me a histogram showing the change in wage over the date of hire in ascending manner.";
    let mut buf = vec![0f32; model.dims()];
    c.bench_function("embed/sentence_into", |b| {
        b.iter(|| model.embed_into(black_box(text), black_box(&mut buf)))
    });
}

fn bench_library_build(c: &mut Criterion) {
    let corpus = generate(&CorpusConfig::tiny(7));
    let model = TextEmbedder::default_model();
    c.bench_function("library/build_tiny", |b| {
        b.iter(|| t2v_gred::EmbeddingLibrary::build(black_box(&corpus), black_box(&model)))
    });
}

fn bench_engine(c: &mut Criterion) {
    let corpus = generate(&CorpusConfig::tiny(7));
    let db = &corpus.databases[0];
    let store = Store::synthesize(db, 7, 200);
    // Use a dev query targeting this database, if any; else a simple count.
    let q = corpus
        .dev
        .iter()
        .find(|e| e.db == 0)
        .map(|e| e.dvq.clone())
        .unwrap_or_else(|| t2v_dvq::parse(QUERY).unwrap());
    c.bench_function("engine/execute_200rows", |b| {
        b.iter(|| t2v_engine::execute(black_box(&q), black_box(&store)))
    });
}

fn bench_perturb(c: &mut Criterion) {
    let corpus = generate(&CorpusConfig::tiny(7));
    c.bench_function("perturb/rename_database", |b| {
        b.iter(|| rename_database(black_box(&corpus.databases[0]), &corpus.lexicon, 42))
    });
}

fn bench_gred(c: &mut Criterion) {
    let corpus = generate(&CorpusConfig::tiny(7));
    let gred = default_gred(&corpus, GredConfig::default());
    let ex = &corpus.dev[0];
    let db = &corpus.databases[ex.db];
    c.bench_function("gred/translate_end_to_end", |b| {
        b.iter(|| gred.translate(black_box(&ex.nlq), black_box(db)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dvq, bench_embed, bench_embed_into, bench_retrieval, bench_retrieval_batch,
              bench_library_build, bench_engine, bench_perturb, bench_gred
}
criterion_main!(benches);
