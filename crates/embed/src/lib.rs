//! # t2v-embed — embedding substrate
//!
//! Substitutes for the pre-trained text embedding model GRED uses in its
//! preparatory phase (paper §4.1, OpenAI `text-embedding-3-large`): a
//! deterministic concept-aware hashed embedder plus an exact top-K cosine
//! index. See [`embedder::TextEmbedder`] for the semantics-fidelity knob
//! (`lexicon_coverage`) used in ablations.

pub mod embedder;
pub mod index;

pub use embedder::{cosine, l2_normalize, EmbedConfig, TextEmbedder};
pub use index::{Hit, VectorIndex};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Cosine stays within [-1, 1] for arbitrary inputs.
        #[test]
        fn cosine_bounds(a in prop::collection::vec(-10f32..10.0, 16),
                         b in prop::collection::vec(-10f32..10.0, 16)) {
            let c = cosine(&a, &b);
            prop_assert!((-1.0..=1.0).contains(&c));
        }

        /// Embeddings are unit-norm (or zero) and deterministic.
        #[test]
        fn embed_norm_and_determinism(words in prop::collection::vec("[a-z]{1,8}", 1..6)) {
            let m = TextEmbedder::default_model();
            let text = words.join(" ");
            let v1 = m.embed(&text);
            let v2 = m.embed(&text);
            prop_assert_eq!(&v1, &v2);
            let norm: f32 = v1.iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-3);
        }

        /// top_k results are sorted by descending score.
        #[test]
        fn topk_sorted(vectors in prop::collection::vec(prop::collection::vec(-1f32..1.0, 8), 1..30),
                       k in 1usize..10) {
            let mut idx = VectorIndex::new();
            for v in vectors { idx.add(v); }
            let q = vec![0.5f32; 8];
            let hits = idx.top_k(&q, k);
            for w in hits.windows(2) {
                prop_assert!(w[0].score >= w[1].score);
            }
            prop_assert!(hits.len() <= k);
        }
    }
}
