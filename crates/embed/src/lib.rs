//! # t2v-embed — embedding substrate
//!
//! Substitutes for the pre-trained text embedding model GRED uses in its
//! preparatory phase (paper §4.1, OpenAI `text-embedding-3-large`): a
//! deterministic concept-aware hashed embedder plus an exact top-K cosine
//! index. See [`embedder::TextEmbedder`] for the semantics-fidelity knob
//! (`lexicon_coverage`) used in ablations.

pub mod embedder;
pub mod index;

pub use embedder::{cosine, l2_normalize, EmbedConfig, EmbedderParts, PhraseRow, TextEmbedder};
pub use index::{best_first, dot as fused_dot, Hit, IndexKind, VectorIndex};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Reference top-k: score every row with the same fused dot the index
    /// uses (bit-identical scores), then fully sort with the documented
    /// tie-break. Any difference from `VectorIndex` output is a bug in the
    /// flat store's heap / chunking / merge logic.
    fn reference_topk(vectors: &[Vec<f32>], query: &[f32], k: usize) -> Vec<Hit> {
        let mut q = query.to_vec();
        l2_normalize(&mut q);
        let mut scored: Vec<Hit> = vectors
            .iter()
            .enumerate()
            .map(|(id, v)| {
                let mut row = v.clone();
                l2_normalize(&mut row);
                Hit {
                    id,
                    score: crate::index::dot(&q, &row).clamp(-1.0, 1.0),
                }
            })
            .collect();
        scored.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
        scored.truncate(k);
        scored
    }

    proptest! {
        /// Cosine stays within [-1, 1] for arbitrary inputs.
        #[test]
        fn cosine_bounds(a in prop::collection::vec(-10f32..10.0, 16),
                         b in prop::collection::vec(-10f32..10.0, 16)) {
            let c = cosine(&a, &b);
            prop_assert!((-1.0..=1.0).contains(&c));
        }

        /// Embeddings are unit-norm (or zero) and deterministic.
        #[test]
        fn embed_norm_and_determinism(words in prop::collection::vec("[a-z]{1,8}", 1..6)) {
            let m = TextEmbedder::default_model();
            let text = words.join(" ");
            let v1 = m.embed(&text);
            let v2 = m.embed(&text);
            prop_assert_eq!(&v1, &v2);
            let norm: f32 = v1.iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-3);
        }

        /// top_k results are sorted by descending score.
        #[test]
        fn topk_sorted(vectors in prop::collection::vec(prop::collection::vec(-1f32..1.0, 8), 1..30),
                       k in 1usize..10) {
            let mut idx = VectorIndex::new();
            for v in vectors { idx.add(v); }
            let q = vec![0.5f32; 8];
            let hits = idx.top_k(&q, k);
            for w in hits.windows(2) {
                prop_assert!(w[0].score >= w[1].score);
            }
            prop_assert!(hits.len() <= k);
        }

        /// The flat store returns identical ids, order, and scores to the
        /// reference brute-force scan — including k > len and duplicate
        /// vectors (exact ties must break toward lower ids).
        #[test]
        fn flat_store_matches_reference(
            vectors in prop::collection::vec(prop::collection::vec(-1f32..1.0, 12), 1..40),
            query in prop::collection::vec(-1f32..1.0, 12),
            k in 1usize..50,
            dup_from in prop::collection::vec(0usize..1000, 0..6),
        ) {
            // Plant exact duplicates to force score ties.
            let mut vectors = vectors;
            for d in dup_from {
                let src = vectors[d % vectors.len()].clone();
                vectors.push(src);
            }
            let mut idx = VectorIndex::new();
            for v in &vectors { idx.add(v.clone()); }
            let got = idx.top_k(&query, k);
            let want = reference_topk(&vectors, &query, k);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.id, w.id);
                prop_assert!(g.score == w.score, "score mismatch: {:?} vs {:?}", g, w);
            }
        }

        /// Batched retrieval equals per-query retrieval, in query order.
        #[test]
        fn batch_matches_reference(
            vectors in prop::collection::vec(prop::collection::vec(-1f32..1.0, 8), 1..25),
            queries in prop::collection::vec(prop::collection::vec(-1f32..1.0, 8), 1..8),
            k in 1usize..6,
        ) {
            let mut idx = VectorIndex::new();
            for v in &vectors { idx.add(v.clone()); }
            let batch = idx.top_k_batch(&queries, k);
            prop_assert_eq!(batch.len(), queries.len());
            for (q, hits) in queries.iter().zip(&batch) {
                prop_assert_eq!(hits, &idx.top_k(q, k));
            }
        }

        /// Prenormalised batched retrieval is bit-identical to per-query
        /// prenormalised retrieval (the serving micro-batcher's contract).
        #[test]
        fn batch_prenormalized_matches_single(
            vectors in prop::collection::vec(prop::collection::vec(-1f32..1.0, 8), 1..25),
            queries in prop::collection::vec(prop::collection::vec(-1f32..1.0, 8), 1..8),
            k in 1usize..6,
        ) {
            let mut idx = VectorIndex::new();
            for v in &vectors { idx.add(v.clone()); }
            let queries: Vec<Vec<f32>> = queries
                .into_iter()
                .map(|mut q| { l2_normalize(&mut q); q })
                .collect();
            let batch = idx.top_k_batch_prenormalized(&queries, k);
            prop_assert_eq!(batch.len(), queries.len());
            for (q, hits) in queries.iter().zip(&batch) {
                prop_assert_eq!(hits, &idx.top_k_prenormalized(q, k));
            }
        }

        /// `embed_into` is byte-for-byte identical to `embed`, regardless of
        /// what the reused buffer previously held.
        #[test]
        fn embed_into_matches_embed(
            words in prop::collection::vec("[a-zA-Z0-9_]{1,10}", 0..12),
            stale in -2f32..2.0,
        ) {
            let m = TextEmbedder::default_model();
            let text = words.join(" ");
            let mut buf = vec![stale; m.dims()];
            m.embed_into(&text, &mut buf);
            prop_assert_eq!(&buf, &m.embed(&text));
        }

        /// A parts-roundtripped embedder is byte-identical to the original
        /// on arbitrary text (the snapshot store's correctness contract).
        #[test]
        fn parts_roundtrip_embeds_identically(
            words in prop::collection::vec("[a-zA-Z]{1,10}", 0..10),
        ) {
            let m = TextEmbedder::default_model();
            let rebuilt = TextEmbedder::from_parts(m.to_parts()).expect("valid parts");
            let text = words.join(" ");
            prop_assert_eq!(rebuilt.embed(&text), m.embed(&text));
        }

        /// The precomputed phrase table agrees with the lexicon's stemmed
        /// lookup for arbitrary word n-grams.
        #[test]
        fn phrase_table_matches_lexicon(words in prop::collection::vec("[a-z]{1,9}", 1..4)) {
            let m = TextEmbedder::default_model();
            let phrase = words.join(" ");
            let via_table = m.resolve_phrase(&phrase).map(|(ci, _)| ci);
            let via_lexicon = m.lexicon().concept_of_phrase_stemmed(&phrase);
            prop_assert_eq!(via_table, via_lexicon, "phrase {:?}", phrase);
        }
    }
}
