//! Flat, SIMD-friendly top-K cosine retrieval.
//!
//! Vectors live in one contiguous row-major `Vec<f32>` with a fixed `dims`
//! stride and are **L2-normalised on insert**, so scoring a pair is a single
//! fused dot product (cosine of the normalised pair) instead of the three
//! passes a naive `dot / (|a|·|b|)` costs per comparison. The scan is
//! exact — a linear pass with a bounded min-heap — and goes wide over
//! row chunks once the index is large enough to amortise thread spawn
//! (see DESIGN.md §5 for layout notes and measurements).
//!
//! Determinism: scores are bit-exact regardless of thread count because each
//! row's dot product is computed identically and chunk results are merged in
//! chunk order; ties break toward lower ids everywhere.

use crate::embedder::l2_normalize;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scored hit returned by [`VectorIndex::top_k`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    pub id: usize,
    pub score: f32,
}

// Min-heap ordering by score (ties broken by id for determinism).
#[derive(Debug, PartialEq)]
struct HeapItem(Hit);

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the *worst* on top —
        // lowest score first, and among ties the *largest* id (so lower ids
        // survive eviction). `total_cmp` keeps the order coherent even for
        // NaN scores (possible only if callers insert non-finite vectors).
        other
            .0
            .score
            .total_cmp(&self.0.score)
            .then_with(|| self.0.id.cmp(&other.0.id))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Best-first ordering shared by every sort in this module — and by any
/// other index implementation that wants to match the flat scan's output
/// contract: descending score under `total_cmp`, ties toward lower ids.
#[inline]
pub fn best_first(a: &Hit, b: &Hit) -> Ordering {
    b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id))
}

/// Which retrieval structure answers top-k queries over an embedding store.
///
/// `Flat` is the exact scan in this module — the recall oracle every
/// approximate index is measured against, and the fallback whenever a corpus
/// is too small for coarse partitioning to pay for itself. `Ivf` is the
/// inverted-file index built by `t2v-ann` (which depends on this crate; the
/// descriptive enum lives here so every layer can name the active index
/// without a dependency cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Exact linear scan over all rows.
    Flat,
    /// IVF coarse partitioning: `nprobe` of `cells` cells scanned per query,
    /// rows optionally stored 8-bit quantized (with exact f32 rescoring).
    Ivf {
        cells: u32,
        nprobe: u32,
        quantized: bool,
    },
}

impl IndexKind {
    /// Short machine-friendly family name: `"flat"` or `"ivf"`.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Flat => "flat",
            IndexKind::Ivf { .. } => "ivf",
        }
    }

    /// Human-readable label, e.g. `flat` or `ivf(cells=64,nprobe=8,sq8)`.
    pub fn label(&self) -> String {
        match self {
            IndexKind::Flat => "flat".to_string(),
            IndexKind::Ivf {
                cells,
                nprobe,
                quantized,
            } => format!(
                "ivf(cells={cells},nprobe={nprobe},{})",
                if *quantized { "sq8" } else { "f32" }
            ),
        }
    }
}

/// Fused dot product over the x86-64 baseline SIMD (SSE2), eight independent
/// 4-lane accumulators.
///
/// Written with intrinsics rather than a hand-unrolled scalar loop because
/// LLVM's auto-vectorisation of the latter is fragile across inlining
/// contexts — in release builds of downstream crates it kept the packed
/// arithmetic but scalarised the *loads* (element `movss` + shuffle soup),
/// halving throughput. The eight accumulators break the FP-add dependency
/// chain so the loop retires multiple multiply-adds per cycle.
///
/// Safety: `_mm_loadu_ps` tolerates unaligned pointers, and every load is
/// bounds-limited by `n` below.
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let blocks = n / 32;
    unsafe {
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm_setzero_ps();
        let mut acc1 = _mm_setzero_ps();
        let mut acc2 = _mm_setzero_ps();
        let mut acc3 = _mm_setzero_ps();
        let mut acc4 = _mm_setzero_ps();
        let mut acc5 = _mm_setzero_ps();
        let mut acc6 = _mm_setzero_ps();
        let mut acc7 = _mm_setzero_ps();
        for blk in 0..blocks {
            let i = blk * 32;
            acc0 = _mm_add_ps(
                acc0,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i)), _mm_loadu_ps(pb.add(i))),
            );
            acc1 = _mm_add_ps(
                acc1,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i + 4)), _mm_loadu_ps(pb.add(i + 4))),
            );
            acc2 = _mm_add_ps(
                acc2,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i + 8)), _mm_loadu_ps(pb.add(i + 8))),
            );
            acc3 = _mm_add_ps(
                acc3,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i + 12)), _mm_loadu_ps(pb.add(i + 12))),
            );
            acc4 = _mm_add_ps(
                acc4,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i + 16)), _mm_loadu_ps(pb.add(i + 16))),
            );
            acc5 = _mm_add_ps(
                acc5,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i + 20)), _mm_loadu_ps(pb.add(i + 20))),
            );
            acc6 = _mm_add_ps(
                acc6,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i + 24)), _mm_loadu_ps(pb.add(i + 24))),
            );
            acc7 = _mm_add_ps(
                acc7,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i + 28)), _mm_loadu_ps(pb.add(i + 28))),
            );
        }
        let mut i = blocks * 32;
        while i + 4 <= n {
            acc0 = _mm_add_ps(
                acc0,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i)), _mm_loadu_ps(pb.add(i))),
            );
            i += 4;
        }
        let s01 = _mm_add_ps(_mm_add_ps(acc0, acc4), _mm_add_ps(acc1, acc5));
        let s23 = _mm_add_ps(_mm_add_ps(acc2, acc6), _mm_add_ps(acc3, acc7));
        let s = _mm_add_ps(s01, s23);
        let hi = _mm_movehl_ps(s, s);
        let pair = _mm_add_ps(s, hi);
        let one = _mm_add_ss(pair, _mm_shuffle_ps(pair, pair, 1));
        let mut sum = _mm_cvtss_f32(one);
        while i < n {
            sum += a[i] * b[i];
            i += 1;
        }
        sum
    }
}

/// Portable fallback: 4 independent 8-lane accumulator blocks, shaped for
/// auto-vectorisation.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [[0.0f32; 8]; 4];
    let mut ca = a.chunks_exact(32);
    let mut cb = b.chunks_exact(32);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for (block, (ba, bb)) in xa.chunks_exact(8).zip(xb.chunks_exact(8)).enumerate() {
            for lane in 0..8 {
                acc[block][lane] += ba[lane] * bb[lane];
            }
        }
    }
    let mut sum = 0.0;
    for block in acc {
        for lane in block {
            sum += lane;
        }
    }
    for (xa, xb) in ca.remainder().iter().zip(cb.remainder()) {
        sum += xa * xb;
    }
    sum
}

/// Row count below which a scan stays on the calling thread: spawn + join
/// overhead (~tens of µs) only pays for itself past a few thousand rows.
const PAR_SCAN_THRESHOLD: usize = 4096;

/// An append-only exact cosine index over a contiguous row-major store.
///
/// Rows are L2-normalised copies of the inserted vectors; [`VectorIndex::get`]
/// therefore returns the *normalised* row. Scores returned by `top_k` equal
/// the cosine similarity of the original pair (clamped to `[-1, 1]`), with
/// the zero vector scoring `0.0` against everything, matching
/// [`crate::embedder::cosine`].
#[derive(Debug, Clone, Default)]
pub struct VectorIndex {
    /// Row stride; fixed by the first inserted vector.
    dims: usize,
    /// Row-major normalised vectors, `len / dims` rows.
    data: Vec<f32>,
}

impl VectorIndex {
    pub fn new() -> Self {
        VectorIndex::default()
    }

    /// Reserve for `n` vectors of the default [`crate::EmbedConfig`] width.
    /// Prefer [`VectorIndex::with_capacity_dims`] when the stride is known —
    /// this guess over-reserves for narrow configs and regrows for wide ones.
    pub fn with_capacity(n: usize) -> Self {
        VectorIndex::with_capacity_dims(n, crate::EmbedConfig::default().dims)
    }

    /// Reserve for `n` vectors of `dims` elements each.
    pub fn with_capacity_dims(n: usize, dims: usize) -> Self {
        VectorIndex {
            dims: 0,
            data: Vec::with_capacity(n.saturating_mul(dims)),
        }
    }

    /// Reassemble an index from a previously captured raw store (see
    /// [`VectorIndex::raw_rows`]) without re-normalising: `data` must hold
    /// row-major **already L2-normalised** rows of stride `dims`, exactly as
    /// a live index stores them. This is the snapshot-restore path — feeding
    /// it unnormalised rows silently skews every cosine score, so only pass
    /// bytes that came out of `raw_rows`.
    pub fn from_parts(dims: usize, data: Vec<f32>) -> Result<VectorIndex, String> {
        if data.is_empty() {
            return Ok(VectorIndex::new());
        }
        if dims == 0 {
            return Err("vector index stride must be non-zero".to_string());
        }
        if !data.len().is_multiple_of(dims) {
            return Err(format!(
                "raw store length {} is not a multiple of stride {dims}",
                data.len()
            ));
        }
        Ok(VectorIndex { dims, data })
    }

    /// The raw row-major store behind the index: `(stride, rows)`. Rows are
    /// the L2-normalised vectors in insertion order — the exact bytes
    /// [`VectorIndex::from_parts`] accepts back.
    pub fn raw_rows(&self) -> (usize, &[f32]) {
        (self.dims, &self.data)
    }

    /// Add a vector; returns its id. The vector is stored L2-normalised.
    ///
    /// # Panics
    /// If `v`'s length differs from previously inserted vectors'.
    pub fn add(&mut self, v: Vec<f32>) -> usize {
        self.add_slice(&v)
    }

    /// [`VectorIndex::add`] without taking ownership (callers can reuse a
    /// scratch buffer filled by `embed_into`).
    pub fn add_slice(&mut self, v: &[f32]) -> usize {
        if self.data.is_empty() {
            assert!(!v.is_empty(), "cannot index zero-dimensional vectors");
            self.dims = v.len();
        } else {
            assert_eq!(v.len(), self.dims, "inconsistent vector dimensionality");
        }
        let start = self.data.len();
        self.data.extend_from_slice(v);
        l2_normalize(&mut self.data[start..]);
        start / self.dims
    }

    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dims).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The vector dimensionality (0 until the first insert).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The stored (L2-normalised) row for `id`.
    pub fn get(&self, id: usize) -> Option<&[f32]> {
        if id < self.len() {
            Some(&self.data[id * self.dims..(id + 1) * self.dims])
        } else {
            None
        }
    }

    /// The `k` nearest vectors by cosine similarity, best first. Ties break
    /// toward lower ids, so results are deterministic.
    pub fn top_k(&self, query: &[f32], k: usize) -> Vec<Hit> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        assert_eq!(query.len(), self.dims, "query dimensionality mismatch");
        let mut q = query.to_vec();
        l2_normalize(&mut q);
        self.top_k_prenormalized(&q, k)
    }

    /// Batch retrieval: one `top_k` per query, fanned across threads.
    /// Results are returned in query order.
    pub fn top_k_batch(&self, queries: &[Vec<f32>], k: usize) -> Vec<Vec<Hit>> {
        if queries.len() <= 1 || self.len() * queries.len() < PAR_SCAN_THRESHOLD {
            return queries.iter().map(|q| self.top_k(q, k)).collect();
        }
        // Each worker runs a *sequential* scan: parallelising across queries
        // dominates (no merge step) when there are many of them, and nesting
        // the parallel scan inside the fan-out would spawn threads².
        t2v_parallel::par_map(queries, |q| {
            assert_eq!(q.len(), self.dims, "query dimensionality mismatch");
            let mut qn = q.to_vec();
            l2_normalize(&mut qn);
            self.scan(0, &self.data, &qn, k)
        })
    }

    /// [`VectorIndex::top_k_batch`] for queries that are already
    /// L2-normalised. Each query runs the same sequential scan as
    /// [`VectorIndex::top_k_prenormalized`] on a sub-threshold index, so the
    /// hits are bit-identical to per-query retrieval — the serving layer's
    /// micro-batcher relies on that to keep batched and unbatched
    /// translations byte-identical.
    pub fn top_k_batch_prenormalized(&self, queries: &[Vec<f32>], k: usize) -> Vec<Vec<Hit>> {
        if queries.len() <= 1 || self.len() * queries.len() < PAR_SCAN_THRESHOLD {
            return queries
                .iter()
                .map(|q| self.top_k_prenormalized(q, k))
                .collect();
        }
        t2v_parallel::par_map(queries, |q| {
            assert_eq!(q.len(), self.dims, "query dimensionality mismatch");
            self.scan(0, &self.data, q, k)
        })
    }

    /// `top_k` for a query that is already L2-normalised (the embedder's
    /// output invariant) — skips the defensive copy + renormalisation.
    pub fn top_k_prenormalized(&self, query: &[f32], k: usize) -> Vec<Hit> {
        self.top_k_prenormalized_in(t2v_parallel::thread_count(), query, k)
    }

    /// [`VectorIndex::top_k_prenormalized`] with an explicit worker count —
    /// a test seam for exercising multi-threaded chunking on any host.
    #[doc(hidden)]
    pub fn top_k_prenormalized_in(&self, threads: usize, query: &[f32], k: usize) -> Vec<Hit> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        assert_eq!(query.len(), self.dims, "query dimensionality mismatch");
        let rows = self.len();
        if rows < PAR_SCAN_THRESHOLD {
            return self.scan(0, &self.data, query, k);
        }
        // min_chunk in *elements*; granularity = the row stride, so chunk
        // boundaries always fall between rows, never through one.
        t2v_parallel::par_chunk_reduce_in(
            threads,
            &self.data,
            PAR_SCAN_THRESHOLD / 2 * self.dims,
            self.dims,
            |offset, chunk| {
                debug_assert_eq!(offset % self.dims, 0);
                debug_assert_eq!(chunk.len() % self.dims, 0);
                self.scan(offset / self.dims, chunk, query, k)
            },
            |a, b| merge_topk(a, b, k),
        )
        .unwrap_or_default()
    }

    /// Sequential heap scan over `chunk` (rows starting at `first_id`),
    /// returning up to `k` hits sorted best-first.
    fn scan(&self, first_id: usize, chunk: &[f32], query: &[f32], k: usize) -> Vec<Hit> {
        if k == 0 {
            // Callers mostly guard this, but the floor bookkeeping below
            // would peek an empty heap for k = 0.
            return Vec::new();
        }
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
        // Score below which a row cannot enter the heap. Ids grow with the
        // scan, so a row that merely *ties* the current k-th best loses the
        // lower-id-wins tie-break and can be skipped without heap traffic —
        // the common case once the heap is warm.
        let mut floor = f32::NEG_INFINITY;
        for (row, v) in chunk.chunks_exact(self.dims).enumerate() {
            let score = dot(query, v).clamp(-1.0, 1.0);
            if score <= floor && heap.len() >= k {
                continue;
            }
            heap.push(HeapItem(Hit {
                id: first_id + row,
                score,
            }));
            if heap.len() > k {
                heap.pop();
            }
            if heap.len() >= k {
                floor = heap.peek().expect("heap is non-empty").0.score;
            }
        }
        let mut hits: Vec<Hit> = heap.into_iter().map(|h| h.0).collect();
        hits.sort_unstable_by(best_first);
        hits
    }
}

/// Merge two best-first hit lists, keeping the best `k` (ties toward lower
/// ids). Deterministic for any chunking because scores are bit-exact.
fn merge_topk(a: Vec<Hit>, b: Vec<Hit>, k: usize) -> Vec<Hit> {
    let mut out = Vec::with_capacity((a.len() + b.len()).min(k));
    let (mut ia, mut ib) = (0, 0);
    while out.len() < k && (ia < a.len() || ib < b.len()) {
        let take_a = match (a.get(ia), b.get(ib)) {
            (Some(x), Some(y)) => best_first(x, y) != Ordering::Greater,
            (Some(_), None) => true,
            _ => false,
        };
        if take_a {
            out.push(a[ia]);
            ia += 1;
        } else {
            out.push(b[ib]);
            ib += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dir: usize, dims: usize) -> Vec<f32> {
        let mut v = vec![0.0; dims];
        v[dir] = 1.0;
        v
    }

    #[test]
    fn top_k_orders_by_similarity() {
        let mut idx = VectorIndex::new();
        idx.add(unit(0, 4)); // id 0
        idx.add(unit(1, 4)); // id 1
        idx.add(vec![0.9, 0.1, 0.0, 0.0]); // id 2, close to e0
        let hits = idx.top_k(&unit(0, 4), 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 2);
    }

    #[test]
    fn top_k_larger_than_len_returns_all() {
        let mut idx = VectorIndex::new();
        idx.add(unit(0, 3));
        idx.add(unit(1, 3));
        let hits = idx.top_k(&unit(0, 3), 10);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn top_k_zero_is_empty() {
        let mut idx = VectorIndex::new();
        idx.add(unit(0, 3));
        assert!(idx.top_k(&unit(0, 3), 0).is_empty());
        assert!(VectorIndex::new().top_k(&unit(0, 3), 3).is_empty());
    }

    #[test]
    fn ties_break_toward_lower_ids() {
        let mut idx = VectorIndex::new();
        idx.add(unit(1, 4));
        idx.add(unit(1, 4));
        idx.add(unit(1, 4));
        let hits = idx.top_k(&unit(1, 4), 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 1);
    }

    #[test]
    fn monotone_in_k() {
        let mut idx = VectorIndex::new();
        for i in 0..20 {
            let mut v = vec![0.1f32; 8];
            v[i % 8] += i as f32 * 0.05;
            idx.add(v);
        }
        let q = vec![1.0; 8];
        let a = idx.top_k(&q, 3);
        let b = idx.top_k(&q, 6);
        assert_eq!(&b[..3], &a[..]);
    }

    #[test]
    fn stored_rows_are_normalized() {
        let mut idx = VectorIndex::new();
        idx.add(vec![3.0, 4.0]);
        let row = idx.get(0).unwrap();
        assert!((row[0] - 0.6).abs() < 1e-6);
        assert!((row[1] - 0.8).abs() < 1e-6);
        assert!(idx.get(1).is_none());
    }

    #[test]
    fn zero_query_scores_zero_everywhere() {
        // Regression: NaN-unsafe `partial_cmp(..).unwrap_or(Equal)` used to
        // corrupt ordering silently for edge-case queries. With pre-normalised
        // storage a zero query yields exact 0.0 scores and id-ordered hits.
        let mut idx = VectorIndex::new();
        for i in 0..5 {
            idx.add(unit(i % 3, 3));
        }
        let hits = idx.top_k(&[0.0, 0.0, 0.0], 3);
        assert_eq!(hits.len(), 3);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.score, 0.0);
            assert_eq!(h.id, i, "ties on a zero query must break by id");
        }
    }

    #[test]
    fn zero_stored_vector_scores_zero() {
        let mut idx = VectorIndex::new();
        idx.add(vec![0.0, 0.0]);
        idx.add(vec![1.0, 0.0]);
        let hits = idx.top_k(&[1.0, 0.0], 2);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[1].id, 0);
        assert_eq!(hits[1].score, 0.0);
    }

    #[test]
    fn heap_item_order_is_total_with_nan() {
        let nan = HeapItem(Hit {
            id: 0,
            score: f32::NAN,
        });
        let one = HeapItem(Hit { id: 1, score: 1.0 });
        // total_cmp puts +NaN above +1.0; reversed ordering puts it below.
        assert_eq!(nan.cmp(&one), Ordering::Less);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn batch_matches_single_queries() {
        let mut idx = VectorIndex::new();
        for i in 0..300 {
            let mut v = vec![0.05f32; 16];
            v[i % 16] += 1.0 + (i as f32) * 1e-3;
            idx.add(v);
        }
        let queries: Vec<Vec<f32>> = (0..40)
            .map(|i| {
                let mut q = vec![0.01f32; 16];
                q[i % 16] = 1.0;
                q
            })
            .collect();
        let batch = idx.top_k_batch(&queries, 7);
        for (q, hits) in queries.iter().zip(&batch) {
            assert_eq!(hits, &idx.top_k(q, 7));
        }
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let mut idx = VectorIndex::new();
        // Large enough to cross PAR_SCAN_THRESHOLD.
        for i in 0..(PAR_SCAN_THRESHOLD + 1000) {
            let mut v = vec![0.0f32; 8];
            v[i % 8] = 1.0;
            v[(i + 3) % 8] = (i % 17) as f32 * 0.1;
            idx.add(v);
        }
        let q = vec![0.3, 0.1, 0.9, 0.0, 0.2, 0.0, 0.4, 0.6];
        let wide = idx.top_k(&q, 12);
        // Force a single-threaded scan of the same data for comparison.
        let seq = idx.scan(
            0,
            &idx.data,
            &{
                let mut qq = q.clone();
                l2_normalize(&mut qq);
                qq
            },
            12,
        );
        assert_eq!(wide, seq);
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let mut idx = VectorIndex::new();
        for i in 0..50 {
            let mut v = vec![0.1f32; 8];
            v[i % 8] = 1.0 + i as f32 * 0.01;
            idx.add(v);
        }
        let (dims, rows) = idx.raw_rows();
        let rebuilt = VectorIndex::from_parts(dims, rows.to_vec()).unwrap();
        assert_eq!(rebuilt.len(), idx.len());
        assert_eq!(rebuilt.dims(), idx.dims());
        // Bit-identical store ⇒ bit-identical retrieval.
        let q = vec![0.3f32; 8];
        assert_eq!(rebuilt.top_k(&q, 7), idx.top_k(&q, 7));
        assert_eq!(rebuilt.raw_rows().1, rows);

        // Empty stores reassemble to an empty index regardless of stride.
        assert_eq!(VectorIndex::from_parts(0, Vec::new()).unwrap().len(), 0);
        // Invalid shapes are structured errors, not panics.
        assert!(VectorIndex::from_parts(0, vec![1.0]).is_err());
        assert!(VectorIndex::from_parts(3, vec![1.0; 8]).is_err());
    }

    #[test]
    #[should_panic(expected = "inconsistent vector dimensionality")]
    fn mismatched_dims_panic() {
        let mut idx = VectorIndex::new();
        idx.add(vec![1.0, 0.0]);
        idx.add(vec![1.0, 0.0, 0.0]);
    }

    /// Regression: with a worker count that doesn't divide the element count
    /// into row-aligned chunks (e.g. 3 workers × stride 12), the parallel
    /// scan used to split rows across chunk boundaries and return garbage
    /// ids/scores. The explicit-threads seam forces multi-threaded chunking
    /// even on 1-CPU hosts (no process-global state touched).
    #[test]
    fn forced_parallel_scan_is_row_aligned() {
        let dims = 12usize;
        let rows = PAR_SCAN_THRESHOLD + 1303; // odd size, crosses threshold
        let mut idx = VectorIndex::with_capacity_dims(rows, dims);
        for i in 0..rows {
            let mut v = vec![0.02f32; dims];
            v[i % dims] = 1.0 + (i % 23) as f32 * 0.01;
            idx.add(v);
        }
        let q: Vec<f32> = (0..dims).map(|i| 0.1 + (i as f32) * 0.05).collect();
        let mut qn = q.clone();
        l2_normalize(&mut qn);
        let seq = idx.scan(0, &idx.data, &qn, 10);
        for threads in [2, 3, 5, 7] {
            let par = idx.top_k_prenormalized_in(threads, &qn, 10);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn k_zero_is_empty_on_every_path() {
        let mut idx = VectorIndex::new();
        for i in 0..3000 {
            idx.add(unit(i % 3, 3));
        }
        // Sequential, forced-parallel, and batch (2 queries × 3000 rows
        // crosses the batch threshold) must all return empty hit lists.
        assert!(idx.top_k(&unit(0, 3), 0).is_empty());
        assert!(idx.top_k_prenormalized_in(3, &unit(0, 3), 0).is_empty());
        let batch = idx.top_k_batch(&[unit(0, 3), unit(1, 3)], 0);
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(Vec::is_empty));
    }
}
