//! Brute-force top-K cosine retrieval over a vector collection.
//!
//! The embedding library of GRED holds a few thousand vectors, for which an
//! exact linear scan with a bounded min-heap is both simplest and fastest
//! (see `bench_retrieval` for the measurement backing this choice).

use crate::embedder::cosine;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scored hit returned by [`VectorIndex::top_k`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    pub id: usize,
    pub score: f32,
}

// Min-heap ordering by score (ties broken by id for determinism).
#[derive(Debug, PartialEq)]
struct HeapItem(Hit);

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the *worst* on top —
        // lowest score first, and among ties the *largest* id (so lower ids
        // survive eviction).
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.id.cmp(&other.0.id))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An append-only exact cosine index.
#[derive(Debug, Clone, Default)]
pub struct VectorIndex {
    vectors: Vec<Vec<f32>>,
}

impl VectorIndex {
    pub fn new() -> Self {
        VectorIndex::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        VectorIndex {
            vectors: Vec::with_capacity(n),
        }
    }

    /// Add a vector; returns its id.
    pub fn add(&mut self, v: Vec<f32>) -> usize {
        self.vectors.push(v);
        self.vectors.len() - 1
    }

    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    pub fn get(&self, id: usize) -> Option<&[f32]> {
        self.vectors.get(id).map(Vec::as_slice)
    }

    /// The `k` nearest vectors by cosine similarity, best first. Ties break
    /// toward lower ids, so results are deterministic.
    pub fn top_k(&self, query: &[f32], k: usize) -> Vec<Hit> {
        if k == 0 || self.vectors.is_empty() {
            return Vec::new();
        }
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
        for (id, v) in self.vectors.iter().enumerate() {
            let score = cosine(query, v);
            heap.push(HeapItem(Hit { id, score }));
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut hits: Vec<Hit> = heap.into_iter().map(|h| h.0).collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dir: usize, dims: usize) -> Vec<f32> {
        let mut v = vec![0.0; dims];
        v[dir] = 1.0;
        v
    }

    #[test]
    fn top_k_orders_by_similarity() {
        let mut idx = VectorIndex::new();
        idx.add(unit(0, 4)); // id 0
        idx.add(unit(1, 4)); // id 1
        idx.add(vec![0.9, 0.1, 0.0, 0.0]); // id 2, close to e0
        let hits = idx.top_k(&unit(0, 4), 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 2);
    }

    #[test]
    fn top_k_larger_than_len_returns_all() {
        let mut idx = VectorIndex::new();
        idx.add(unit(0, 3));
        idx.add(unit(1, 3));
        let hits = idx.top_k(&unit(0, 3), 10);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn top_k_zero_is_empty() {
        let mut idx = VectorIndex::new();
        idx.add(unit(0, 3));
        assert!(idx.top_k(&unit(0, 3), 0).is_empty());
        assert!(VectorIndex::new().top_k(&unit(0, 3), 3).is_empty());
    }

    #[test]
    fn ties_break_toward_lower_ids() {
        let mut idx = VectorIndex::new();
        idx.add(unit(1, 4));
        idx.add(unit(1, 4));
        idx.add(unit(1, 4));
        let hits = idx.top_k(&unit(1, 4), 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 1);
    }

    #[test]
    fn monotone_in_k() {
        let mut idx = VectorIndex::new();
        for i in 0..20 {
            let mut v = vec![0.1f32; 8];
            v[i % 8] += i as f32 * 0.05;
            idx.add(v);
        }
        let q = vec![1.0; 8];
        let a = idx.top_k(&q, 3);
        let b = idx.top_k(&q, 6);
        assert_eq!(&b[..3], &a[..]);
    }
}
