//! The deterministic text embedder.
//!
//! Substitutes for OpenAI's `text-embedding-3-large` (paper §4.1): texts are
//! mapped to fixed-size L2-normalised vectors such that
//!
//! * surface overlap raises cosine similarity (word + character-trigram
//!   features), and
//! * *semantic* overlap raises it too: lexicalisations of the same lexicon
//!   concept ("salary" / "wage") project onto a shared feature — but only
//!   for the subset of lexicalisations the embedder *knows*, sampled at
//!   construction with [`EmbedConfig::lexicon_coverage`]. Coverage < 1.0
//!   models the imperfect synonym knowledge of a real embedding model and is
//!   the main quality knob exercised by the ablation benches.
//!
//! This is the hottest code in the repository (it runs once per library
//! entry at prepare time and three times per translation), so the hot path
//! is allocation-free: [`TextEmbedder::embed_into`] tokenizes over byte
//! ranges of a reused thread-local scratch buffer, hashes features
//! incrementally, and resolves concept phrases against a hash map
//! precomputed at construction (including plural-stemmed forms) instead of
//! re-joining phrase strings per probe. See DESIGN.md §5.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use t2v_corpus::lexicon::Lexicon;

/// Embedder configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbedConfig {
    /// Vector dimensionality.
    pub dims: usize,
    /// Fraction of non-primary lexicalisations the embedder knows map to
    /// their concept (primary forms are always known).
    pub lexicon_coverage: f64,
    /// Seed for the coverage sample.
    pub seed: u64,
    /// Feature weights.
    pub word_weight: f32,
    pub concept_weight: f32,
    pub trigram_weight: f32,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        EmbedConfig {
            dims: 256,
            lexicon_coverage: 0.9,
            seed: 0x7e37,
            word_weight: 1.0,
            concept_weight: 1.6,
            trigram_weight: 0.25,
        }
    }
}

/// One resolvable phrase in the precomputed concept-lookup table.
///
/// The table mirrors `Lexicon::concept_of_phrase_stemmed` exactly: it is
/// keyed by an FNV hash of the phrase, holds the canonical phrase text for
/// collision verification, and contains *stemmed* (plural) forms alongside
/// exact lexicalisations so probes never rebuild candidate strings.
#[derive(Debug, Clone)]
struct PhraseEntry {
    /// Canonical probe text: words joined by single spaces.
    phrase: Box<str>,
    /// (concept, alt) this phrase resolves to under seed semantics.
    concept: usize,
    alt: usize,
    /// Whether the coverage sample knows this (concept, alt).
    known: bool,
    /// Precomputed feature slot for the concept id (dim, signed weight).
    dim: u32,
    signed_weight: f32,
}

/// Deterministic concept-aware text embedder.
#[derive(Debug, Clone)]
pub struct TextEmbedder {
    cfg: EmbedConfig,
    lexicon: Lexicon,
    /// Known (concept index, alt index) lexicalisations.
    known: HashSet<(usize, usize)>,
    /// Phrase-hash → entries (Vec only for the astronomically unlikely hash
    /// collision; the stored phrase disambiguates).
    phrases: HashMap<u64, Vec<PhraseEntry>>,
}

/// One row of the serialisable phrase-table view: a resolvable phrase
/// (exact or plural-stemmed) and the (concept, alt) it maps to. The feature
/// slot and coverage flag are *derived* state and are recomputed on
/// reconstruction, so a persisted table cannot drift from its lexicon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhraseRow {
    pub phrase: String,
    pub concept: u32,
    pub alt: u32,
}

/// A plain-data view of everything that determines a [`TextEmbedder`]'s
/// behaviour — the (de)serialisation seam used by the snapshot store.
/// [`TextEmbedder::to_parts`] emits it in a canonical order (known pairs and
/// phrase rows sorted), so equal embedders serialise to equal bytes.
#[derive(Debug, Clone)]
pub struct EmbedderParts {
    pub config: EmbedConfig,
    pub lexicon: Lexicon,
    /// Known (concept, alt) lexicalisations, sorted. Persisted explicitly —
    /// not re-sampled from the seed — so snapshots stay valid even if the
    /// sampling RNG ever changes.
    pub known: Vec<(u32, u32)>,
    /// Every resolvable phrase (exact + stemmed forms), sorted by phrase.
    pub phrases: Vec<PhraseRow>,
}

/// Reused per-thread tokenizer state: a lowercase byte buffer plus the word
/// ranges into it. Embedding allocates nothing after thread warm-up.
#[derive(Default)]
struct Scratch {
    buf: Vec<u8>,
    words: Vec<(u32, u32)>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

impl TextEmbedder {
    pub fn new(lexicon: Lexicon, cfg: EmbedConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut known = HashSet::new();
        for (ci, c) in lexicon.concepts.iter().enumerate() {
            for ai in 0..c.alts.len() {
                if ai == 0 || rng.gen_bool(cfg.lexicon_coverage) {
                    known.insert((ci, ai));
                }
            }
        }
        let mut e = TextEmbedder {
            cfg,
            lexicon,
            known,
            phrases: HashMap::new(),
        };
        e.build_phrase_table();
        e
    }

    /// Precompute every phrase `concept_of_phrase_stemmed` can resolve.
    ///
    /// Insertion happens in three priority rounds matching the seed lookup
    /// order — exact phrases, then plural forms stripped by `es`, then by
    /// `s` — with first-wins semantics per phrase (earlier concepts claim
    /// shared phrases, exact forms beat stemmed ones).
    fn build_phrase_table(&mut self) {
        let mut by_phrase: HashMap<String, (usize, usize)> = HashMap::new();

        // Round 0: exact lexicalisations (concept order, first wins).
        for (ci, c) in self.lexicon.concepts.iter().enumerate() {
            for alt in &c.alts {
                let phrase = alt.join(" ");
                by_phrase.entry(phrase).or_insert_with(|| {
                    let ai = c
                        .alts
                        .iter()
                        .position(|a| a == alt)
                        .expect("alt is from this concept");
                    (ci, ai)
                });
            }
        }

        // Rounds 1–2: inputs whose stemmed form hits a round-0 phrase.
        // An input `X` resolves by trying `strip("es")` then `strip("s")`,
        // so `…es` derivations are inserted before `…s` ones. Derived inputs
        // are never themselves exact lexicalisations (those were claimed in
        // round 0), so they resolve to alt 0 — which is always known.
        // Snapshot the exact phrases (derivation inserts into the same map).
        // Iteration order within a round is irrelevant: `phrase + suffix` is
        // injective per suffix, so no two sources compete for one derived key
        // in the same round, and cross-round priority is the loop order.
        let exact: Vec<(String, usize)> = by_phrase
            .iter()
            .map(|(p, &(ci, _))| (p.clone(), ci))
            .collect();
        for suffix in ["es", "s"] {
            for (phrase, ci) in &exact {
                let last = phrase.rsplit(' ').next().expect("phrases are non-empty");
                if last.len() < 2 || (suffix == "s" && last.ends_with('s')) {
                    // Seed lookup rejects stems shorter than 2 chars and
                    // plural inputs ending in "ss".
                    continue;
                }
                let derived = format!("{phrase}{suffix}");
                by_phrase.entry(derived).or_insert((*ci, 0));
            }
        }

        for (phrase, (ci, ai)) in by_phrase {
            let (dim, signed_weight) = feature_slot(
                b"c:",
                self.lexicon.concepts[ci].id.as_bytes(),
                self.cfg.dims,
                self.cfg.concept_weight,
            );
            let entry = PhraseEntry {
                phrase: phrase.into_boxed_str(),
                concept: ci,
                alt: ai,
                known: self.known.contains(&(ci, ai)),
                dim,
                signed_weight,
            };
            self.phrases
                .entry(fnv_str(&entry.phrase))
                .or_default()
                .push(entry);
        }
    }

    /// Build with the default configuration over the builtin lexicon.
    pub fn default_model() -> Self {
        TextEmbedder::new(Lexicon::builtin(), EmbedConfig::default())
    }

    pub fn dims(&self) -> usize {
        self.cfg.dims
    }

    pub fn config(&self) -> &EmbedConfig {
        &self.cfg
    }

    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Capture the embedder as plain data, in canonical (sorted) order.
    /// `from_parts(to_parts())` reconstructs a behaviourally identical
    /// embedder (byte-identical `embed` output — property-tested).
    pub fn to_parts(&self) -> EmbedderParts {
        let mut known: Vec<(u32, u32)> = self
            .known
            .iter()
            .map(|&(ci, ai)| (ci as u32, ai as u32))
            .collect();
        known.sort_unstable();
        let mut phrases: Vec<PhraseRow> = self
            .phrases
            .values()
            .flatten()
            .map(|e| PhraseRow {
                phrase: e.phrase.to_string(),
                concept: e.concept as u32,
                alt: e.alt as u32,
            })
            .collect();
        phrases.sort_unstable_by(|a, b| a.phrase.cmp(&b.phrase));
        EmbedderParts {
            config: self.cfg.clone(),
            lexicon: self.lexicon.clone(),
            known,
            phrases,
        }
    }

    /// Reconstruct an embedder from captured parts **without re-deriving**
    /// the coverage sample or the stemmed-phrase derivation rounds: the
    /// persisted `known` set and phrase→concept map are taken as-is, and
    /// only the per-row derived state (feature slot, coverage flag) is
    /// recomputed. Structural inconsistencies are `Err`s, never panics.
    pub fn from_parts(parts: EmbedderParts) -> Result<TextEmbedder, String> {
        let EmbedderParts {
            config: cfg,
            lexicon,
            known,
            phrases,
        } = parts;
        if cfg.dims == 0 {
            return Err("embedder dims must be non-zero".to_string());
        }
        let in_range = |ci: u32, ai: u32| -> Result<(usize, usize), String> {
            let concept = lexicon
                .concepts
                .get(ci as usize)
                .ok_or_else(|| format!("concept index {ci} out of range"))?;
            if ai as usize >= concept.alts.len() {
                return Err(format!("alt index {ai} out of range for concept {ci}"));
            }
            Ok((ci as usize, ai as usize))
        };
        let known: HashSet<(usize, usize)> = known
            .into_iter()
            .map(|(ci, ai)| in_range(ci, ai))
            .collect::<Result<_, _>>()?;
        let mut table: HashMap<u64, Vec<PhraseEntry>> = HashMap::new();
        for row in phrases {
            let (ci, ai) = in_range(row.concept, row.alt)?;
            if row.phrase.is_empty() {
                return Err("phrase table contains an empty phrase".to_string());
            }
            let (dim, signed_weight) = feature_slot(
                b"c:",
                lexicon.concepts[ci].id.as_bytes(),
                cfg.dims,
                cfg.concept_weight,
            );
            let entry = PhraseEntry {
                phrase: row.phrase.into_boxed_str(),
                concept: ci,
                alt: ai,
                known: known.contains(&(ci, ai)),
                dim,
                signed_weight,
            };
            let bucket = table.entry(fnv_str(&entry.phrase)).or_default();
            if bucket.iter().any(|e| e.phrase == entry.phrase) {
                return Err(format!("phrase {:?} listed twice", entry.phrase));
            }
            bucket.push(entry);
        }
        Ok(TextEmbedder {
            cfg,
            lexicon,
            known,
            phrases: table,
        })
    }

    /// Lowercase alphanumeric word tokens (underscores split words).
    pub fn tokenize(text: &str) -> Vec<String> {
        let mut scratch = Scratch::default();
        tokenize_into(text, &mut scratch);
        scratch
            .words
            .iter()
            .map(|&(s, e)| {
                String::from_utf8(scratch.buf[s as usize..e as usize].to_vec())
                    .expect("buffer is pure ASCII")
            })
            .collect()
    }

    /// Embed `text` into an L2-normalised vector.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0f32; self.cfg.dims];
        self.embed_into(text, &mut v);
        v
    }

    /// Embed `text` into a caller-provided buffer of length
    /// [`TextEmbedder::dims`], overwriting it. Allocation-free after
    /// per-thread warm-up; byte-identical to [`TextEmbedder::embed`].
    pub fn embed_into(&self, text: &str, out: &mut [f32]) {
        let _span = t2v_trace::span(t2v_trace::Stage::Embed);
        t2v_fault::inject_delay(t2v_fault::FaultPoint::EmbedLatency);
        assert_eq!(out.len(), self.cfg.dims, "output buffer length mismatch");
        out.fill(0.0);

        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            tokenize_into(text, scratch);
            let Scratch { buf, words } = scratch;

            // Word and trigram features.
            for &(s, e) in words.iter() {
                let w = &buf[s as usize..e as usize];
                add_feature(out, b"w:", w, self.cfg.word_weight);
                if w.len() >= 3 {
                    for tri in w.windows(3) {
                        add_feature(out, b"t:", tri, self.cfg.trigram_weight);
                    }
                }
            }

            // Concept features: greedy longest-match of word n-grams (length
            // 3 down to 1) against the precomputed phrase table.
            let mut i = 0usize;
            while i < words.len() {
                let mut matched = 0usize;
                for len in (1..=3usize).rev() {
                    if i + len > words.len() {
                        continue;
                    }
                    if let Some(entry) = self.probe_phrase(buf, &words[i..i + len]) {
                        if entry.known {
                            out[entry.dim as usize] += entry.signed_weight;
                            matched = len;
                            break;
                        }
                    }
                }
                i += matched.max(1);
            }
        });

        l2_normalize(out);
    }

    /// Look up the n-gram `words` (ranges into `buf`) in the phrase table
    /// without materialising the joined phrase: the FNV state is fed word by
    /// word with a space separator, and candidate entries verify against the
    /// stored canonical phrase to rule out hash collisions.
    fn probe_phrase(&self, buf: &[u8], words: &[(u32, u32)]) -> Option<&PhraseEntry> {
        let mut h: u64 = FNV_OFFSET;
        for (wi, &(s, e)) in words.iter().enumerate() {
            if wi > 0 {
                h = fnv_step(h, b' ');
            }
            for &b in &buf[s as usize..e as usize] {
                h = fnv_step(h, b);
            }
        }
        self.phrases
            .get(&h)?
            .iter()
            .find(|entry| phrase_matches(&entry.phrase, buf, words))
    }

    /// Whether the embedder knows this (concept, alt) lexicalisation — used
    /// by diagnostics and coverage benches.
    pub fn knows(&self, concept: usize, alt: usize) -> bool {
        self.known.contains(&(concept, alt))
    }

    /// Which (concept, alt) an n-gram phrase resolves to, if any — the
    /// precomputed equivalent of `Lexicon::concept_of_phrase_stemmed` plus
    /// the alt-position rule. Exposed for the equivalence property tests.
    #[doc(hidden)]
    pub fn resolve_phrase(&self, phrase: &str) -> Option<(usize, usize)> {
        self.phrases
            .get(&fnv_str(phrase))?
            .iter()
            .find(|e| &*e.phrase == phrase)
            .map(|e| (e.concept, e.alt))
    }
}

/// Fill `scratch` with the lowercase words of `text`: `buf` holds the
/// lowercased alphanumeric bytes back to back, `words` the (start, end)
/// byte ranges. Equivalent to the old `Vec<String>` tokenizer (multi-byte
/// UTF-8 sequences are non-alphanumeric bytes, i.e. separators).
fn tokenize_into(text: &str, scratch: &mut Scratch) {
    scratch.buf.clear();
    scratch.words.clear();
    let mut start: Option<u32> = None;
    for &b in text.as_bytes() {
        if b.is_ascii_alphanumeric() {
            if start.is_none() {
                start = Some(scratch.buf.len() as u32);
            }
            scratch.buf.push(b.to_ascii_lowercase());
        } else if let Some(s) = start.take() {
            scratch.words.push((s, scratch.buf.len() as u32));
        }
    }
    if let Some(s) = start {
        scratch.words.push((s, scratch.buf.len() as u32));
    }
}

/// Does `phrase` equal the words joined by single spaces?
fn phrase_matches(phrase: &str, buf: &[u8], words: &[(u32, u32)]) -> bool {
    let p = phrase.as_bytes();
    let mut pos = 0usize;
    for (wi, &(s, e)) in words.iter().enumerate() {
        if wi > 0 {
            if p.get(pos) != Some(&b' ') {
                return false;
            }
            pos += 1;
        }
        let w = &buf[s as usize..e as usize];
        if p.len() < pos + w.len() || &p[pos..pos + w.len()] != w {
            return false;
        }
        pos += w.len();
    }
    pos == p.len()
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

#[inline]
fn fnv_step(h: u64, b: u8) -> u64 {
    (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
}

fn fnv_str(s: &str) -> u64 {
    s.bytes().fold(FNV_OFFSET, fnv_step)
}

/// FNV-1a over a tagged byte string, mapped to (dimension, signed weight).
#[inline]
fn feature_slot(tag: &[u8], bytes: &[u8], dims: usize, weight: f32) -> (u32, f32) {
    let mut h: u64 = FNV_OFFSET;
    for &b in tag.iter().chain(bytes.iter()) {
        h = fnv_step(h, b);
    }
    let dim = (h % dims as u64) as u32;
    let sign = if (h >> 63) & 1 == 1 { -1.0 } else { 1.0 };
    (dim, sign * weight)
}

/// FNV-1a over a tagged byte string, accumulated into the feature vector.
#[inline]
fn add_feature(v: &mut [f32], tag: &[u8], bytes: &[u8], weight: f32) {
    let (dim, w) = feature_slot(tag, bytes, v.len(), weight);
    v[dim as usize] += w;
}

/// Normalise to unit length (no-op for the zero vector).
pub fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Cosine similarity between two equal-length vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f32 = crate::index::dot(a, b);
    let na: f32 = crate::index::dot(a, a).sqrt();
    let nb: f32 = crate::index::dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na * nb)).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(coverage: f64) -> TextEmbedder {
        TextEmbedder::new(
            Lexicon::builtin(),
            EmbedConfig {
                lexicon_coverage: coverage,
                ..EmbedConfig::default()
            },
        )
    }

    #[test]
    fn identical_texts_have_cosine_one() {
        let m = model(1.0);
        let a = m.embed("show the average salary per department");
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn synonyms_are_closer_than_unrelated_words() {
        let m = model(1.0);
        let salary = m.embed("salary");
        let wage = m.embed("wage");
        let cinema = m.embed("cinema");
        assert!(
            cosine(&salary, &wage) > cosine(&salary, &cinema) + 0.2,
            "syn={} unrel={}",
            cosine(&salary, &wage),
            cosine(&salary, &cinema)
        );
    }

    #[test]
    fn multiword_synonyms_match() {
        let m = model(1.0);
        let a = m.embed("hire_date");
        let b = m.embed("date of hire");
        let c = m.embed("openning year");
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn zero_coverage_kills_synonym_signal() {
        let full = model(1.0);
        let none = TextEmbedder::new(
            Lexicon::builtin(),
            EmbedConfig {
                lexicon_coverage: 0.0,
                concept_weight: 1.6,
                ..EmbedConfig::default()
            },
        );
        let s_full = cosine(&full.embed("salary"), &full.embed("wage"));
        let s_none = cosine(&none.embed("salary"), &none.embed("wage"));
        assert!(s_full > s_none + 0.2, "full={s_full} none={s_none}");
    }

    #[test]
    fn sentence_similarity_prefers_paraphrase_over_different_question() {
        let m = model(1.0);
        let q =
            m.embed("Please give me a histogram showing the change in wage over the date of hire.");
        let same = m.embed("Draw a bar chart about the change of salary over hire_date.");
        let other = m.embed("Show all countries with a pie chart.");
        assert!(cosine(&q, &same) > cosine(&q, &other) + 0.1);
    }

    #[test]
    fn embedding_is_deterministic() {
        let m = model(0.8);
        assert_eq!(m.embed("abc def"), m.embed("abc def"));
    }

    #[test]
    fn tokenize_splits_on_underscores_and_case() {
        assert_eq!(
            TextEmbedder::tokenize("HIRE_DATE, salary!"),
            vec!["hire", "date", "salary"]
        );
    }

    #[test]
    fn vectors_are_unit_norm() {
        let m = model(0.9);
        let v = m.embed("some nontrivial text with words");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let z = vec![0.0; 8];
        let o = vec![1.0; 8];
        assert_eq!(cosine(&z, &o), 0.0);
    }

    #[test]
    fn embed_into_reuses_buffer_and_matches_embed() {
        let m = model(0.9);
        let mut buf = vec![7.0f32; m.dims()];
        m.embed_into("show the average salary per city", &mut buf);
        assert_eq!(buf, m.embed("show the average salary per city"));
        // Reuse without clearing: embed_into overwrites.
        m.embed_into("different text entirely", &mut buf);
        assert_eq!(buf, m.embed("different text entirely"));
    }

    #[test]
    fn phrase_table_matches_lexicon_stemmed_lookup() {
        let m = model(1.0);
        let lex = m.lexicon();
        // Exact, plural-s, plural-es, multiword, and miss cases.
        for probe in [
            "salary",
            "salaries",
            "wages",
            "date of hire",
            "dates of hire",
            "wage",
            "zzz unknown phrase",
            "employees",
            "glass",
        ] {
            let expected = lex.concept_of_phrase_stemmed(probe);
            let got = m.resolve_phrase(probe).map(|(ci, _)| ci);
            assert_eq!(got, expected, "probe {probe:?}");
        }
    }

    #[test]
    fn parts_roundtrip_preserves_embedding_behaviour() {
        let m = model(0.8);
        let parts = m.to_parts();
        // Canonical order: sorted, so equal embedders capture equal parts.
        assert!(parts.known.windows(2).all(|w| w[0] < w[1]));
        assert!(parts.phrases.windows(2).all(|w| w[0].phrase < w[1].phrase));
        let rebuilt = TextEmbedder::from_parts(parts.clone()).unwrap();
        assert_eq!(rebuilt.config(), m.config());
        for text in [
            "show the average salary per department",
            "wages by date of hire",
            "departments",
            "salaries of all staff members in each town",
            "",
        ] {
            assert_eq!(rebuilt.embed(text), m.embed(text), "text {text:?}");
        }
        for probe in ["salary", "salaries", "date of hire", "zzz"] {
            assert_eq!(rebuilt.resolve_phrase(probe), m.resolve_phrase(probe));
        }
        // And the re-captured parts are identical (stable canonical form).
        let again = rebuilt.to_parts();
        assert_eq!(again.known, m.to_parts().known);
        assert_eq!(again.phrases, m.to_parts().phrases);
    }

    #[test]
    fn from_parts_rejects_inconsistent_tables() {
        let m = model(1.0);
        let good = m.to_parts();

        let mut bad = good.clone();
        bad.config.dims = 0;
        assert!(TextEmbedder::from_parts(bad).is_err());

        let mut bad = good.clone();
        bad.known.push((u32::MAX, 0));
        assert!(TextEmbedder::from_parts(bad).is_err());

        let mut bad = good.clone();
        bad.phrases[0].concept = u32::MAX;
        assert!(TextEmbedder::from_parts(bad).is_err());

        let mut bad = good.clone();
        bad.phrases[0].alt = u32::MAX;
        assert!(TextEmbedder::from_parts(bad).is_err());

        let mut bad = good.clone();
        let dup = bad.phrases[0].clone();
        bad.phrases.push(dup);
        assert!(TextEmbedder::from_parts(bad).is_err());

        let mut bad = good;
        bad.phrases[0].phrase = String::new();
        assert!(TextEmbedder::from_parts(bad).is_err());
    }

    #[test]
    fn plural_last_word_still_finds_concept_feature() {
        let m = model(1.0);
        // "departments" only resolves through the stemmed table.
        let plural = m.embed("departments");
        let singular = m.embed("department");
        let unrelated = m.embed("cinema");
        assert!(cosine(&plural, &singular) > cosine(&plural, &unrelated));
    }
}
