//! The deterministic text embedder.
//!
//! Substitutes for OpenAI's `text-embedding-3-large` (paper §4.1): texts are
//! mapped to fixed-size L2-normalised vectors such that
//!
//! * surface overlap raises cosine similarity (word + character-trigram
//!   features), and
//! * *semantic* overlap raises it too: lexicalisations of the same lexicon
//!   concept ("salary" / "wage") project onto a shared feature — but only
//!   for the subset of lexicalisations the embedder *knows*, sampled at
//!   construction with [`EmbedConfig::lexicon_coverage`]. Coverage < 1.0
//!   models the imperfect synonym knowledge of a real embedding model and is
//!   the main quality knob exercised by the ablation benches.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use t2v_corpus::lexicon::Lexicon;

/// Embedder configuration.
#[derive(Debug, Clone)]
pub struct EmbedConfig {
    /// Vector dimensionality.
    pub dims: usize,
    /// Fraction of non-primary lexicalisations the embedder knows map to
    /// their concept (primary forms are always known).
    pub lexicon_coverage: f64,
    /// Seed for the coverage sample.
    pub seed: u64,
    /// Feature weights.
    pub word_weight: f32,
    pub concept_weight: f32,
    pub trigram_weight: f32,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        EmbedConfig {
            dims: 256,
            lexicon_coverage: 0.9,
            seed: 0x7e37,
            word_weight: 1.0,
            concept_weight: 1.6,
            trigram_weight: 0.25,
        }
    }
}

/// Deterministic concept-aware text embedder.
#[derive(Debug, Clone)]
pub struct TextEmbedder {
    cfg: EmbedConfig,
    lexicon: Lexicon,
    /// Known (concept index, alt index) lexicalisations.
    known: HashSet<(usize, usize)>,
}

impl TextEmbedder {
    pub fn new(lexicon: Lexicon, cfg: EmbedConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut known = HashSet::new();
        for (ci, c) in lexicon.concepts.iter().enumerate() {
            for ai in 0..c.alts.len() {
                if ai == 0 || rng.gen_bool(cfg.lexicon_coverage) {
                    known.insert((ci, ai));
                }
            }
        }
        TextEmbedder {
            cfg,
            lexicon,
            known,
        }
    }

    /// Build with the default configuration over the builtin lexicon.
    pub fn default_model() -> Self {
        TextEmbedder::new(Lexicon::builtin(), EmbedConfig::default())
    }

    pub fn dims(&self) -> usize {
        self.cfg.dims
    }

    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Lowercase alphanumeric word tokens (underscores split words).
    pub fn tokenize(text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = String::new();
        for ch in text.chars() {
            if ch.is_ascii_alphanumeric() {
                cur.push(ch.to_ascii_lowercase());
            } else if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            out.push(cur);
        }
        out
    }

    /// Embed `text` into an L2-normalised vector.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let words = Self::tokenize(text);
        let mut v = vec![0f32; self.cfg.dims];

        // Word and trigram features.
        for w in &words {
            add_feature(&mut v, b"w:", w.as_bytes(), self.cfg.word_weight);
            let bytes = w.as_bytes();
            if bytes.len() >= 3 {
                for tri in bytes.windows(3) {
                    add_feature(&mut v, b"t:", tri, self.cfg.trigram_weight);
                }
            }
        }

        // Concept features: greedy longest-match of word n-grams (length 3
        // down to 1) against known lexicalisations.
        let mut i = 0usize;
        while i < words.len() {
            let mut matched = 0usize;
            for len in (1..=3usize).rev() {
                if i + len > words.len() {
                    continue;
                }
                let phrase = words[i..i + len].join(" ");
                if let Some(ci) = self.lexicon.concept_of_phrase_stemmed(&phrase) {
                    let alt = self.lexicon.concepts[ci]
                        .alts
                        .iter()
                        .position(|a| a.join(" ") == phrase)
                        .unwrap_or(0);
                    if self.known.contains(&(ci, alt)) {
                        add_feature(
                            &mut v,
                            b"c:",
                            self.lexicon.concepts[ci].id.as_bytes(),
                            self.cfg.concept_weight,
                        );
                        matched = len;
                        break;
                    }
                }
            }
            i += matched.max(1);
        }

        l2_normalize(&mut v);
        v
    }

    /// Whether the embedder knows this (concept, alt) lexicalisation — used
    /// by diagnostics and coverage benches.
    pub fn knows(&self, concept: usize, alt: usize) -> bool {
        self.known.contains(&(concept, alt))
    }
}

/// FNV-1a over a tagged byte string, mapped to (dimension, sign).
fn add_feature(v: &mut [f32], tag: &[u8], bytes: &[u8], weight: f32) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in tag.iter().chain(bytes.iter()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let dim = (h % v.len() as u64) as usize;
    let sign = if (h >> 63) & 1 == 1 { -1.0 } else { 1.0 };
    v[dim] += sign * weight;
}

/// Normalise to unit length (no-op for the zero vector).
pub fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Cosine similarity between two equal-length vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na * nb)).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(coverage: f64) -> TextEmbedder {
        TextEmbedder::new(
            Lexicon::builtin(),
            EmbedConfig {
                lexicon_coverage: coverage,
                ..EmbedConfig::default()
            },
        )
    }

    #[test]
    fn identical_texts_have_cosine_one() {
        let m = model(1.0);
        let a = m.embed("show the average salary per department");
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn synonyms_are_closer_than_unrelated_words() {
        let m = model(1.0);
        let salary = m.embed("salary");
        let wage = m.embed("wage");
        let cinema = m.embed("cinema");
        assert!(
            cosine(&salary, &wage) > cosine(&salary, &cinema) + 0.2,
            "syn={} unrel={}",
            cosine(&salary, &wage),
            cosine(&salary, &cinema)
        );
    }

    #[test]
    fn multiword_synonyms_match() {
        let m = model(1.0);
        let a = m.embed("hire_date");
        let b = m.embed("date of hire");
        let c = m.embed("openning year");
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn zero_coverage_kills_synonym_signal() {
        let full = model(1.0);
        let none = TextEmbedder::new(
            Lexicon::builtin(),
            EmbedConfig {
                lexicon_coverage: 0.0,
                concept_weight: 1.6,
                ..EmbedConfig::default()
            },
        );
        let s_full = cosine(&full.embed("salary"), &full.embed("wage"));
        let s_none = cosine(&none.embed("salary"), &none.embed("wage"));
        assert!(s_full > s_none + 0.2, "full={s_full} none={s_none}");
    }

    #[test]
    fn sentence_similarity_prefers_paraphrase_over_different_question() {
        let m = model(1.0);
        let q = m.embed("Please give me a histogram showing the change in wage over the date of hire.");
        let same = m.embed("Draw a bar chart about the change of salary over hire_date.");
        let other = m.embed("Show all countries with a pie chart.");
        assert!(cosine(&q, &same) > cosine(&q, &other) + 0.1);
    }

    #[test]
    fn embedding_is_deterministic() {
        let m = model(0.8);
        assert_eq!(m.embed("abc def"), m.embed("abc def"));
    }

    #[test]
    fn tokenize_splits_on_underscores_and_case() {
        assert_eq!(
            TextEmbedder::tokenize("HIRE_DATE, salary!"),
            vec!["hire", "date", "salary"]
        );
    }

    #[test]
    fn vectors_are_unit_norm() {
        let m = model(0.9);
        let v = m.embed("some nontrivial text with words");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let z = vec![0.0; 8];
        let o = vec![1.0; 8];
        assert_eq!(cosine(&z, &o), 0.0);
    }
}
