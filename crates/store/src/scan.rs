//! Directory scanning: every `*.t2vsnap` under a directory, with its
//! manifest inspected (framing + checksums validated, payloads untouched).
//! The tenant catalog and the `t2v-snapshot catalog` CLI both build on
//! this; neither wants to decode megabytes of vectors just to list what a
//! directory holds.

use crate::error::SnapshotError;
use crate::format::{inspect, Manifest};
use std::path::{Path, PathBuf};

/// The snapshot file extension — the one spelling the scanner, the tenant
/// catalog convention, and the CLIs all share.
pub const SNAPSHOT_EXT: &str = ".t2vsnap";

/// One snapshot file found by [`scan_snapshots`]: its path and either its
/// validated manifest or the structured reason it is not loadable.
#[derive(Debug)]
pub struct ScanEntry {
    pub path: PathBuf,
    pub manifest: Result<Manifest, SnapshotError>,
}

impl ScanEntry {
    /// The bare file name (scan only yields direct children, so this never
    /// fails for entries the scanner produced).
    pub fn file_name(&self) -> &str {
        self.path.file_name().and_then(|n| n.to_str()).unwrap_or("")
    }
}

/// List every `*.t2vsnap` directly under `dir` (no recursion), sorted by
/// file name for deterministic catalogs, each with its inspected manifest.
/// Unreadable or corrupt snapshots are *entries with an error*, not scan
/// failures — the caller decides whether an invalid artifact is fatal (a
/// serving catalog: yes) or merely reportable (a listing CLI: no). Only an
/// unreadable directory fails the scan itself.
pub fn scan_snapshots(dir: impl AsRef<Path>) -> std::io::Result<Vec<ScanEntry>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir.as_ref())?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            (path.is_file() && name.ends_with(SNAPSHOT_EXT)).then_some(path)
        })
        .collect();
    paths.sort();
    Ok(paths
        .into_iter()
        .map(|path| {
            let manifest = inspect(&path);
            ScanEntry { path, manifest }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2v_corpus::{generate, CorpusConfig};
    use t2v_embed::EmbedConfig;

    #[test]
    fn scan_lists_valid_and_invalid_snapshots_sorted() {
        let dir = std::env::temp_dir().join(format!("t2v-scan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let corpus = generate(&CorpusConfig::tiny(7));
        let built = crate::LibrarySource::Build
            .resolve(&corpus, &EmbedConfig::default())
            .unwrap();
        crate::save(dir.join("b-good.t2vsnap"), &built.library, &built.embedder).unwrap();
        std::fs::write(dir.join("a-bad.t2vsnap"), b"garbage bytes").unwrap();
        std::fs::write(dir.join("notes.txt"), b"ignored").unwrap();

        let entries = scan_snapshots(&dir).unwrap();
        assert_eq!(entries.len(), 2, "only *.t2vsnap files are scanned");
        assert_eq!(entries[0].file_name(), "a-bad.t2vsnap");
        assert!(entries[0].manifest.is_err());
        assert_eq!(entries[1].file_name(), "b-good.t2vsnap");
        let manifest = entries[1].manifest.as_ref().unwrap();
        assert_eq!(manifest.corpus_fingerprint, built.corpus_fingerprint);

        assert!(scan_snapshots(dir.join("no-such-subdir")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
