//! The structured failure taxonomy of the snapshot store.
//!
//! Every way a snapshot can be unusable — I/O, truncation, corruption,
//! format drift, provenance mismatch — is a distinct, printable variant.
//! Nothing in this crate panics on untrusted bytes: a fuzzer feeding
//! arbitrary files to the loader sees only these errors.

use std::fmt;

/// Why a snapshot could not be written, read, or trusted.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem-level failure (open/read/write/rename).
    Io {
        path: String,
        source: std::io::Error,
    },
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic { found: [u8; 8] },
    /// The format version is newer (or older) than this build understands.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The file ends before a structure it promises: a truncated copy.
    Truncated {
        context: &'static str,
        needed: u64,
        available: u64,
    },
    /// A checksum does not match its payload: bit rot or tampering.
    ChecksumMismatch {
        scope: &'static str,
        expected: u64,
        found: u64,
    },
    /// The snapshot was built from a different corpus or embedder than the
    /// one the caller is serving.
    FingerprintMismatch {
        which: &'static str,
        expected: u64,
        found: u64,
    },
    /// Structurally invalid content behind valid checksums (e.g. an index
    /// whose row count disagrees with the entry table) — a writer bug, not
    /// transport damage.
    Malformed { context: String },
}

impl SnapshotError {
    pub(crate) fn malformed(context: impl Into<String>) -> SnapshotError {
        SnapshotError::Malformed {
            context: context.into(),
        }
    }

    /// Stable machine-readable code, mirroring the serving error taxonomy
    /// style (`{"error": {"code", ...}}`).
    pub fn code(&self) -> &'static str {
        match self {
            SnapshotError::Io { .. } => "io",
            SnapshotError::BadMagic { .. } => "bad_magic",
            SnapshotError::UnsupportedVersion { .. } => "unsupported_version",
            SnapshotError::Truncated { .. } => "truncated",
            SnapshotError::ChecksumMismatch { .. } => "checksum_mismatch",
            SnapshotError::FingerprintMismatch { .. } => "fingerprint_mismatch",
            SnapshotError::Malformed { .. } => "malformed",
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, source } => write!(f, "snapshot io error at {path}: {source}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a t2v snapshot (magic {:02x?})", found)
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {supported})"
            ),
            SnapshotError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "snapshot truncated reading {context}: need {needed} bytes, have {available}"
            ),
            SnapshotError::ChecksumMismatch {
                scope,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch in {scope}: stored {expected:#018x}, computed {found:#018x}"
            ),
            SnapshotError::FingerprintMismatch {
                which,
                expected,
                found,
            } => write!(
                f,
                "{which} fingerprint mismatch: expected {expected:#018x}, snapshot has {found:#018x}"
            ),
            SnapshotError::Malformed { context } => write!(f, "malformed snapshot: {context}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
