//! Provenance fingerprints.
//!
//! A snapshot is only trustworthy relative to what the consumer *would have
//! built*: the corpus fingerprint pins the exact training split (ids,
//! schemas, NLQs, DVQs) and the embedder fingerprint pins the embedding
//! model (config, lexicon, sampled coverage). Both are stored in the
//! snapshot header and verified before any reconstructed state is used.
//!
//! Invariant (tested): `library_fingerprint(EmbeddingLibrary::build(c, e))
//! == corpus_fingerprint(c)` — the library-side walk visits exactly the
//! fields the build copied out of the corpus, so a snapshot written from a
//! built library carries the fingerprint of its source corpus.

use crate::wire::Hasher;
use t2v_corpus::lexicon::Lexicon;
use t2v_corpus::Corpus;
use t2v_embed::{EmbedConfig, TextEmbedder};
use t2v_gred::EmbeddingLibrary;

/// Fingerprint of the training split an embedding library is built from.
pub fn corpus_fingerprint(corpus: &Corpus) -> u64 {
    // Schemas render once per database, not once per example.
    let schemas: Vec<String> = corpus
        .databases
        .iter()
        .map(|db| db.render_prompt_schema())
        .collect();
    let mut h = Hasher::new();
    h.eat_u64(corpus.train.len() as u64);
    for ex in &corpus.train {
        h.eat_str(&corpus.databases[ex.db].id);
        h.eat_str(&schemas[ex.db]);
        h.eat_str(&ex.nlq);
        h.eat_str(&ex.dvq_text);
    }
    h.finish()
}

/// Fingerprint of a built library — equal to [`corpus_fingerprint`] of the
/// corpus it was built from (same field walk over the copied entries).
pub fn library_fingerprint(library: &EmbeddingLibrary) -> u64 {
    let mut h = Hasher::new();
    h.eat_u64(library.len() as u64);
    for e in &library.entries {
        h.eat_str(&e.db_id);
        h.eat_str(&e.schema_text);
        h.eat_str(&e.nlq);
        h.eat_str(&e.dvq);
    }
    h.finish()
}

/// Fingerprint of an embedding model: config, lexicon content, and the
/// sampled coverage set. Two embedders with equal fingerprints produce
/// bit-identical vectors for every input.
pub fn embedder_fingerprint(embedder: &TextEmbedder) -> u64 {
    let cfg = embedder.config();
    let mut h = Hasher::new();
    h.eat_u64(cfg.dims as u64);
    h.eat_u64(cfg.lexicon_coverage.to_bits());
    h.eat_u64(cfg.seed);
    h.eat(&cfg.word_weight.to_le_bytes());
    h.eat(&cfg.concept_weight.to_le_bytes());
    h.eat(&cfg.trigram_weight.to_le_bytes());
    eat_lexicon(&mut h, embedder.lexicon());
    // The coverage sample, in canonical (sorted) order. Persisting it in the
    // fingerprint means a snapshot is rejected if the sampling ever drifts
    // from what this process would have drawn for the same seed.
    let mut known: Vec<(u32, u32)> = Vec::new();
    for (ci, c) in embedder.lexicon().concepts.iter().enumerate() {
        for ai in 0..c.alts.len() {
            if embedder.knows(ci, ai) {
                known.push((ci as u32, ai as u32));
            }
        }
    }
    h.eat_u64(known.len() as u64);
    for (ci, ai) in known {
        h.eat_u64(ci as u64);
        h.eat_u64(ai as u64);
    }
    h.finish()
}

/// The embedder fingerprint a consumer *expects*: what a freshly
/// constructed `TextEmbedder::new(lexicon, config)` would fingerprint to.
pub fn expected_embedder_fingerprint(config: &EmbedConfig) -> u64 {
    embedder_fingerprint(&TextEmbedder::new(Lexicon::builtin(), config.clone()))
}

fn eat_lexicon(h: &mut Hasher, lexicon: &Lexicon) {
    h.eat_u64(lexicon.concepts.len() as u64);
    for c in &lexicon.concepts {
        h.eat_str(&c.id);
        h.eat_u64(c.alts.len() as u64);
        for alt in &c.alts {
            h.eat_u64(alt.len() as u64);
            for w in alt {
                h.eat_str(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2v_corpus::{generate, CorpusConfig};

    #[test]
    fn library_fingerprint_equals_corpus_fingerprint() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let embedder = TextEmbedder::default_model();
        let lib = EmbeddingLibrary::build(&corpus, &embedder);
        assert_eq!(library_fingerprint(&lib), corpus_fingerprint(&corpus));
    }

    #[test]
    fn fingerprints_separate_corpora_and_embedders() {
        let a = generate(&CorpusConfig::tiny(7));
        let b = generate(&CorpusConfig::tiny(8));
        assert_ne!(corpus_fingerprint(&a), corpus_fingerprint(&b));
        assert_eq!(corpus_fingerprint(&a), corpus_fingerprint(&a));

        let default = TextEmbedder::default_model();
        assert_eq!(
            embedder_fingerprint(&default),
            expected_embedder_fingerprint(&EmbedConfig::default())
        );
        let narrow = TextEmbedder::new(
            Lexicon::builtin(),
            EmbedConfig {
                dims: 128,
                ..EmbedConfig::default()
            },
        );
        assert_ne!(
            embedder_fingerprint(&default),
            embedder_fingerprint(&narrow)
        );
        let other_seed = TextEmbedder::new(
            Lexicon::builtin(),
            EmbedConfig {
                seed: 1,
                ..EmbedConfig::default()
            },
        );
        assert_ne!(
            embedder_fingerprint(&default),
            embedder_fingerprint(&other_seed)
        );
    }
}
