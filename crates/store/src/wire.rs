//! Byte-level primitives: little-endian writer, bounds-checked reader, and
//! the FNV-1a checksum both sides share.
//!
//! The reader never indexes past its slice — every access goes through
//! [`Reader::take`], which turns an over-read into a structured
//! [`SnapshotError::Truncated`] instead of a panic. Multi-byte values are
//! decoded with `from_le_bytes` over copied arrays, so loads are
//! alignment-safe no matter where a section starts in the file.

use crate::error::SnapshotError;

pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// The section/trailer checksum: FNV-1a's xor-multiply chain applied to
/// **8-byte little-endian words** (tail zero-padded, length folded in last).
///
/// Word-at-a-time matters: the loader checksums every payload plus the
/// whole file, and byte-serial FNV made that the dominant cost of a warm
/// restart — slower than the library rebuild it replaces. This variant is
/// ~8× faster and still guarantees detection of any corruption confined to
/// one word: each step `h' = (h ^ w) · P` is a bijection of `h` (odd `P`),
/// so two inputs differing in exactly one word can never collide. Not
/// FNV-compatible — the snapshot format defines it (DESIGN.md §9);
/// cryptographic integrity is out of scope for a local artifact cache.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().unwrap());
        h = (h ^ w).wrapping_mul(FNV_PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(FNV_PRIME);
    }
    // Folding the length separates "short input" from "same input padded
    // with zeros".
    (h ^ bytes.len() as u64).wrapping_mul(FNV_PRIME)
}

/// Incremental FNV-1a used by the fingerprint walks.
#[derive(Clone, Copy)]
pub struct Hasher(u64);

impl Hasher {
    pub fn new() -> Hasher {
        Hasher(FNV_OFFSET)
    }

    pub fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// Hash a length-prefixed string: unambiguous under concatenation.
    pub fn eat_str(&mut self, s: &str) {
        self.eat(&(s.len() as u64).to_le_bytes());
        self.eat(s.as_bytes());
    }

    pub fn eat_u64(&mut self, v: u64) {
        self.eat(&v.to_le_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

/// Little-endian append-only encoder.
#[derive(Default)]
pub struct Writer {
    pub buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `u32` length prefix + UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn put_f32s(&mut self, vs: &[f32]) {
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    pub fn put_u32s(&mut self, vs: &[u32]) {
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Raw signed bytes (SQ8 code tables), two's-complement as-is.
    pub fn put_i8s(&mut self, vs: &[i8]) {
        self.buf.reserve(vs.len());
        for &v in vs {
            self.buf.push(v as u8);
        }
    }
}

/// Bounds-checked little-endian decoder over a borrowed byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// What is being decoded, for truncation diagnostics.
    context: &'static str,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8], context: &'static str) -> Reader<'a> {
        Reader {
            buf,
            pos: 0,
            context,
        }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                context: self.context,
                needed: n as u64,
                available: self.remaining() as u64,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|e| {
            SnapshotError::malformed(format!("{}: non-UTF-8 string: {e}", self.context))
        })
    }

    /// A length-guarded count: the payload must be able to hold `count`
    /// items of at least `min_item_bytes` each, so a corrupt count cannot
    /// trigger an absurd up-front allocation.
    pub fn count(&mut self, min_item_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_item_bytes) > self.remaining() {
            return Err(SnapshotError::Truncated {
                context: self.context,
                needed: (n * min_item_bytes) as u64,
                available: self.remaining() as u64,
            });
        }
        Ok(n)
    }

    /// Decode `n` little-endian f32s. Alignment-safe: bytes are copied
    /// through fixed arrays (which compiles to a straight memcpy on LE
    /// targets), never reinterpreted in place.
    pub fn f32s(&mut self, n: usize) -> Result<Vec<f32>, SnapshotError> {
        let bytes = self.take(n.saturating_mul(4))?;
        let mut out = Vec::with_capacity(n);
        for chunk in bytes.chunks_exact(4) {
            out.push(f32::from_le_bytes(chunk.try_into().unwrap()));
        }
        Ok(out)
    }

    pub fn u32s(&mut self, n: usize) -> Result<Vec<u32>, SnapshotError> {
        let bytes = self.take(n.saturating_mul(4))?;
        let mut out = Vec::with_capacity(n);
        for chunk in bytes.chunks_exact(4) {
            out.push(u32::from_le_bytes(chunk.try_into().unwrap()));
        }
        Ok(out)
    }

    /// Decode `n` raw signed bytes (SQ8 code tables).
    pub fn i8s(&mut self, n: usize) -> Result<Vec<i8>, SnapshotError> {
        let bytes = self.take(n)?;
        Ok(bytes.iter().map(|&b| b as i8).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = Writer::new();
        w.put_u32(7);
        w.put_u64(u64::MAX - 3);
        w.put_f32(1.5);
        w.put_f64(-2.25);
        w.put_str("héllo");
        w.put_f32s(&[0.0, -1.0, 3.5]);
        let mut r = Reader::new(&w.buf, "test");
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert_eq!(r.f64().unwrap(), -2.25);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.f32s(3).unwrap(), vec![0.0, -1.0, 3.5]);
        assert!(r.is_empty());
    }

    #[test]
    fn over_reads_are_truncation_errors() {
        let mut r = Reader::new(&[1, 2, 3], "tiny");
        assert!(matches!(
            r.u32(),
            Err(SnapshotError::Truncated {
                context: "tiny",
                ..
            })
        ));
        // A huge count cannot force a huge allocation.
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let mut r = Reader::new(&w.buf, "count");
        assert!(matches!(r.count(4), Err(SnapshotError::Truncated { .. })));
    }

    #[test]
    fn invalid_utf8_is_malformed_not_panic() {
        let mut w = Writer::new();
        w.put_u32(2);
        w.buf.extend_from_slice(&[0xff, 0xfe]);
        let mut r = Reader::new(&w.buf, "strings");
        assert!(matches!(r.str(), Err(SnapshotError::Malformed { .. })));
    }

    #[test]
    fn checksum64_detects_flips_truncation_and_padding() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let base = checksum64(&data);
        assert_eq!(base, checksum64(&data), "deterministic");
        // Any single bit flip changes the sum (bijective per-word chain).
        for off in [0, 7, 8, 500, 993, 999] {
            let mut bad = data.clone();
            bad[off] ^= 1;
            assert_ne!(checksum64(&bad), base, "flip at {off}");
        }
        // Truncation and zero-padding both change the sum.
        assert_ne!(checksum64(&data[..999]), base);
        let mut padded = data.clone();
        padded.push(0);
        assert_ne!(checksum64(&padded), base);
        // Empty vs single zero byte differ (length fold).
        assert_ne!(checksum64(b""), checksum64(b"\0"));
    }
}
