//! The snapshot wire format (DESIGN.md §9).
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header (48 B): magic "T2VSNAP\0" · version u32 · sections    │
//! │   u32 · corpus_fp u64 · embedder_fp u64 · entries u64 ·      │
//! │   dims u32 · reserved u32                                    │
//! ├──────────────────────────────────────────────────────────────┤
//! │ section table (32 B × n): kind u32 · reserved u32 ·          │
//! │   offset u64 · len u64 · checksum64 u64                  │
//! ├──────────────────────────────────────────────────────────────┤
//! │ payloads: embedder · strings · entries · nlq_index ·         │
//! │   dvq_index (offsets absolute, contiguous)                   │
//! ├──────────────────────────────────────────────────────────────┤
//! │ trailer (8 B): checksum64 over every preceding byte               │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers and floats are little-endian; strings are `u32`-length-
//! prefixed UTF-8. Library strings (db ids, schemas, NLQs, DVQs) live once
//! in a deduplicated string table and are referenced by `u32` id, so the
//! loader reconstructs the library's `Arc<str>` sharing exactly (entries of
//! one database alias a single schema allocation, as a built library does).
//! Index payloads are the raw pre-normalised row-major `f32` stores — the
//! loader hands them back to [`VectorIndex::from_parts`] untouched, which
//! is what makes a loaded `Gred` byte-identical to a built one.
//!
//! Integrity is layered: the trailer checksum catches any flipped byte or
//! truncation, per-section checksums localise the damage for diagnostics,
//! and the loader's structural validation (bounds-checked reads, cross-
//! checked counts) means arbitrary bytes can never cause UB or a panic —
//! only a structured [`SnapshotError`].

use crate::error::SnapshotError;
use crate::fingerprint::{embedder_fingerprint, library_fingerprint};
use crate::wire::{checksum64, Reader, Writer};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use t2v_ann::{IvfIndex, IvfParts};
use t2v_corpus::lexicon::{Concept, Lexicon};
use t2v_embed::{EmbedConfig, EmbedderParts, PhraseRow, TextEmbedder, VectorIndex};
use t2v_gred::{AnnPair, EmbeddingLibrary, LibEntry};

pub const MAGIC: [u8; 8] = *b"T2VSNAP\0";
/// Base format: the five v1 sections. Snapshots without a trained ANN index
/// are still written as byte-identical v1 files, so older readers and
/// fixtures keep working.
pub const FORMAT_VERSION: u32 = 1;
/// v1 plus two ANN sections (trained IVF indexes for the NLQ and DVQ
/// stores). Written only when the library carries an attached ANN pair.
pub const FORMAT_VERSION_ANN: u32 = 2;
const HEADER_LEN: usize = 48;
const SECTION_ROW_LEN: usize = 32;
const TRAILER_LEN: usize = 8;

/// The payload sections, in file order. v1 files carry the first five;
/// v2 files append the two ANN sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    Embedder,
    Strings,
    Entries,
    NlqIndex,
    DvqIndex,
    AnnNlq,
    AnnDvq,
}

impl SectionKind {
    const ALL: [SectionKind; 5] = [
        SectionKind::Embedder,
        SectionKind::Strings,
        SectionKind::Entries,
        SectionKind::NlqIndex,
        SectionKind::DvqIndex,
    ];

    const ALL_V2: [SectionKind; 7] = [
        SectionKind::Embedder,
        SectionKind::Strings,
        SectionKind::Entries,
        SectionKind::NlqIndex,
        SectionKind::DvqIndex,
        SectionKind::AnnNlq,
        SectionKind::AnnDvq,
    ];

    fn id(self) -> u32 {
        match self {
            SectionKind::Embedder => 1,
            SectionKind::Strings => 2,
            SectionKind::Entries => 3,
            SectionKind::NlqIndex => 4,
            SectionKind::DvqIndex => 5,
            SectionKind::AnnNlq => 6,
            SectionKind::AnnDvq => 7,
        }
    }

    fn from_id(id: u32) -> Option<SectionKind> {
        SectionKind::ALL_V2.into_iter().find(|k| k.id() == id)
    }

    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Embedder => "embedder",
            SectionKind::Strings => "strings",
            SectionKind::Entries => "entries",
            SectionKind::NlqIndex => "nlq_index",
            SectionKind::DvqIndex => "dvq_index",
            SectionKind::AnnNlq => "ann_nlq",
            SectionKind::AnnDvq => "ann_dvq",
        }
    }
}

/// One row of the section table.
#[derive(Debug, Clone)]
pub struct SectionInfo {
    pub kind: SectionKind,
    pub offset: u64,
    pub len: u64,
    pub checksum: u64,
}

/// ANN section facts readable without decoding payloads (the fixed prefix
/// of the `ann_nlq` payload plus the two sections' byte lengths).
#[derive(Debug, Clone)]
pub struct AnnSummary {
    pub cells: u64,
    pub nprobe: u32,
    pub quantized: bool,
    /// Combined byte length of both ANN sections.
    pub bytes: u64,
}

/// Everything knowable about a snapshot without decoding its payloads.
#[derive(Debug, Clone)]
pub struct Manifest {
    pub format_version: u32,
    pub corpus_fingerprint: u64,
    pub embedder_fingerprint: u64,
    pub entries: u64,
    pub dims: u32,
    pub file_len: u64,
    pub sections: Vec<SectionInfo>,
    /// Present for v2 snapshots (trained ANN index persisted).
    pub ann: Option<AnnSummary>,
}

/// A fully reconstructed snapshot: the embedder and library, ready to feed
/// `Gred::from_parts` without any re-embedding.
pub struct LoadedSnapshot {
    pub embedder: TextEmbedder,
    pub library: EmbeddingLibrary,
    pub manifest: Manifest,
}

impl std::fmt::Debug for LoadedSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedSnapshot")
            .field("entries", &self.library.len())
            .field("dims", &self.embedder.dims())
            .field("manifest", &self.manifest)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// encode
// ---------------------------------------------------------------------------

/// Deduplicating string interner over borrowed library strings.
struct StringTable<'a> {
    ids: HashMap<&'a str, u32>,
    strings: Vec<&'a str>,
}

impl<'a> StringTable<'a> {
    fn new() -> StringTable<'a> {
        StringTable {
            ids: HashMap::new(),
            strings: Vec::new(),
        }
    }

    fn intern(&mut self, s: &'a str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.ids.insert(s, id);
        self.strings.push(s);
        id
    }
}

fn encode_embedder(embedder: &TextEmbedder) -> Vec<u8> {
    let parts = embedder.to_parts();
    let mut w = Writer::new();
    // config
    w.put_u32(parts.config.dims as u32);
    w.put_f64(parts.config.lexicon_coverage);
    w.put_u64(parts.config.seed);
    w.put_f32(parts.config.word_weight);
    w.put_f32(parts.config.concept_weight);
    w.put_f32(parts.config.trigram_weight);
    // lexicon
    w.put_u32(parts.lexicon.concepts.len() as u32);
    for c in &parts.lexicon.concepts {
        w.put_str(&c.id);
        w.put_u32(c.alts.len() as u32);
        for alt in &c.alts {
            w.put_u32(alt.len() as u32);
            for word in alt {
                w.put_str(word);
            }
        }
    }
    // coverage sample (canonical order from to_parts)
    w.put_u32(parts.known.len() as u32);
    for (ci, ai) in &parts.known {
        w.put_u32(*ci);
        w.put_u32(*ai);
    }
    // stemmed-phrase table (canonical order from to_parts)
    w.put_u32(parts.phrases.len() as u32);
    for row in &parts.phrases {
        w.put_str(&row.phrase);
        w.put_u32(row.concept);
        w.put_u32(row.alt);
    }
    w.buf
}

fn encode_index(index: &VectorIndex) -> Vec<u8> {
    let (dims, rows) = index.raw_rows();
    let mut w = Writer::new();
    w.put_u32(dims as u32);
    w.put_u64(index.len() as u64);
    w.put_f32s(rows);
    w.buf
}

/// ANN section payload: a fixed prefix (dims, nprobe, quantized, cells,
/// rows — the part [`inspect_bytes`] summarises without a full decode),
/// then centroids, the CSR offset/id tables, and — when quantized — the
/// SQ8 code and scale tables. The f32 rows themselves are **not** stored:
/// searches borrow them from the nlq/dvq index sections, so the ANN
/// sections stay small (centroids + tables + 1 byte/component of codes).
fn encode_ann(ivf: &IvfIndex) -> Vec<u8> {
    let (centroids, cell_offsets, ids, codes, scales) = ivf.raw_parts();
    let mut w = Writer::new();
    w.put_u32(ivf.dims() as u32);
    w.put_u32(ivf.default_nprobe() as u32);
    w.put_u32(ivf.quantized() as u32);
    w.put_u32(0); // reserved
    w.put_u64(ivf.cells() as u64);
    w.put_u64(ivf.rows() as u64);
    w.put_f32s(centroids);
    w.put_u32s(cell_offsets);
    w.put_u32s(ids);
    if ivf.quantized() {
        w.put_i8s(codes);
        w.put_f32s(scales);
    }
    w.buf
}

/// Serialise a library + its embedder to snapshot bytes.
pub fn encode(library: &EmbeddingLibrary, embedder: &TextEmbedder) -> Vec<u8> {
    // Entries reference the deduplicated string table by id.
    let mut strings = StringTable::new();
    let mut entry_rows: Vec<[u32; 5]> = Vec::with_capacity(library.len());
    for e in &library.entries {
        entry_rows.push([
            e.db as u32,
            strings.intern(&e.db_id),
            strings.intern(&e.schema_text),
            strings.intern(&e.nlq),
            strings.intern(&e.dvq),
        ]);
    }
    let mut strings_payload = Writer::new();
    strings_payload.put_u32(strings.strings.len() as u32);
    for s in &strings.strings {
        strings_payload.put_str(s);
    }
    let mut entries_payload = Writer::new();
    entries_payload.put_u32(entry_rows.len() as u32);
    for row in &entry_rows {
        for v in row {
            entries_payload.put_u32(*v);
        }
    }

    let mut payloads: Vec<(SectionKind, Vec<u8>)> = vec![
        (SectionKind::Embedder, encode_embedder(embedder)),
        (SectionKind::Strings, strings_payload.buf),
        (SectionKind::Entries, entries_payload.buf),
        (SectionKind::NlqIndex, encode_index(&library.nlq_index)),
        (SectionKind::DvqIndex, encode_index(&library.dvq_index)),
    ];
    // A library with a trained ANN pair persists it as two extra sections
    // and bumps the format version; without one the output is byte-identical
    // to format v1, so pre-ANN readers and fixtures are untouched.
    let version = match library.ann() {
        Some(pair) => {
            payloads.push((SectionKind::AnnNlq, encode_ann(&pair.nlq)));
            payloads.push((SectionKind::AnnDvq, encode_ann(&pair.dvq)));
            FORMAT_VERSION_ANN
        }
        None => FORMAT_VERSION,
    };

    // Header.
    let mut out = Writer::new();
    out.buf.extend_from_slice(&MAGIC);
    out.put_u32(version);
    out.put_u32(payloads.len() as u32);
    out.put_u64(library_fingerprint(library));
    out.put_u64(embedder_fingerprint(embedder));
    out.put_u64(library.len() as u64);
    out.put_u32(embedder.dims() as u32);
    out.put_u32(0); // reserved
    debug_assert_eq!(out.buf.len(), HEADER_LEN);

    // Section table, then payloads.
    let mut offset = (HEADER_LEN + payloads.len() * SECTION_ROW_LEN) as u64;
    for (kind, payload) in &payloads {
        out.put_u32(kind.id());
        out.put_u32(0); // reserved
        out.put_u64(offset);
        out.put_u64(payload.len() as u64);
        out.put_u64(checksum64(payload));
        offset += payload.len() as u64;
    }
    for (_, payload) in &payloads {
        out.buf.extend_from_slice(payload);
    }

    // Trailer: whole-file checksum.
    let trailer = checksum64(&out.buf);
    out.put_u64(trailer);
    out.buf
}

// ---------------------------------------------------------------------------
// decode
// ---------------------------------------------------------------------------

/// Validate framing + checksums and return the manifest, without decoding
/// payloads. Any corruption — flipped byte, truncation, wrong version —
/// surfaces here.
pub fn inspect_bytes(bytes: &[u8]) -> Result<Manifest, SnapshotError> {
    if bytes.len() < MAGIC.len() {
        return Err(SnapshotError::Truncated {
            context: "magic",
            needed: MAGIC.len() as u64,
            available: bytes.len() as u64,
        });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(SnapshotError::BadMagic { found });
    }
    let mut header = Reader::new(bytes, "header");
    let _ = header.take(MAGIC.len())?;
    let format_version = header.u32()?;
    let expected_sections: &[SectionKind] = match format_version {
        FORMAT_VERSION => &SectionKind::ALL,
        FORMAT_VERSION_ANN => &SectionKind::ALL_V2,
        _ => {
            return Err(SnapshotError::UnsupportedVersion {
                found: format_version,
                supported: FORMAT_VERSION_ANN,
            })
        }
    };
    let section_count = header.u32()? as usize;
    let corpus_fingerprint = header.u64()?;
    let embedder_fingerprint = header.u64()?;
    let entries = header.u64()?;
    let dims = header.u32()?;
    let _reserved = header.u32()?;
    if section_count != expected_sections.len() {
        return Err(SnapshotError::malformed(format!(
            "format v{format_version} carries {} sections, header claims {section_count}",
            expected_sections.len()
        )));
    }

    let framed = HEADER_LEN + section_count * SECTION_ROW_LEN + TRAILER_LEN;
    if bytes.len() < framed {
        return Err(SnapshotError::Truncated {
            context: "section table",
            needed: framed as u64,
            available: bytes.len() as u64,
        });
    }
    // Whole-file checksum first: one pass decides whether the bytes can be
    // trusted at all; everything after reads verified data.
    let body = &bytes[..bytes.len() - TRAILER_LEN];
    let stored = u64::from_le_bytes(bytes[bytes.len() - TRAILER_LEN..].try_into().unwrap());
    let computed = checksum64(body);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch {
            scope: "file",
            expected: stored,
            found: computed,
        });
    }

    let mut table = Reader::new(
        &bytes[HEADER_LEN..HEADER_LEN + section_count * SECTION_ROW_LEN],
        "section table",
    );
    let mut sections = Vec::with_capacity(section_count);
    for &expected_kind in expected_sections {
        let kind_id = table.u32()?;
        let _reserved = table.u32()?;
        let offset = table.u64()?;
        let len = table.u64()?;
        let checksum = table.u64()?;
        let kind = SectionKind::from_id(kind_id)
            .ok_or_else(|| SnapshotError::malformed(format!("unknown section kind {kind_id}")))?;
        if kind != expected_kind {
            return Err(SnapshotError::malformed(format!(
                "section order: found {} where {} belongs",
                kind.name(),
                expected_kind.name()
            )));
        }
        let end = offset.checked_add(len).ok_or_else(|| {
            SnapshotError::malformed(format!("section {} length overflows", kind.name()))
        })?;
        if offset < framed as u64 - TRAILER_LEN as u64 || end > body.len() as u64 {
            return Err(SnapshotError::Truncated {
                context: kind.name(),
                needed: end,
                available: body.len() as u64,
            });
        }
        let payload = &bytes[offset as usize..end as usize];
        let found = checksum64(payload);
        if found != checksum {
            return Err(SnapshotError::ChecksumMismatch {
                scope: kind.name(),
                expected: checksum,
                found,
            });
        }
        sections.push(SectionInfo {
            kind,
            offset,
            len,
            checksum,
        });
    }
    // v2: lift the ANN summary out of the (already checksummed) `ann_nlq`
    // payload's fixed prefix — no table decoding needed.
    let ann = if format_version == FORMAT_VERSION_ANN {
        let info = sections
            .iter()
            .find(|s| s.kind == SectionKind::AnnNlq)
            .expect("v2 section walk includes ann_nlq");
        let payload = &bytes[info.offset as usize..(info.offset + info.len) as usize];
        let mut r = Reader::new(payload, "ann_nlq");
        let _dims = r.u32()?;
        let nprobe = r.u32()?;
        let quantized = r.u32()? != 0;
        let _reserved = r.u32()?;
        let cells = r.u64()?;
        let bytes_total = sections
            .iter()
            .filter(|s| matches!(s.kind, SectionKind::AnnNlq | SectionKind::AnnDvq))
            .map(|s| s.len)
            .sum();
        Some(AnnSummary {
            cells,
            nprobe,
            quantized,
            bytes: bytes_total,
        })
    } else {
        None
    };
    Ok(Manifest {
        format_version,
        corpus_fingerprint,
        embedder_fingerprint,
        entries,
        dims,
        file_len: bytes.len() as u64,
        sections,
        ann,
    })
}

fn section<'a>(bytes: &'a [u8], manifest: &Manifest, kind: SectionKind) -> &'a [u8] {
    let info = manifest
        .sections
        .iter()
        .find(|s| s.kind == kind)
        .expect("manifest validated every section of its version present");
    &bytes[info.offset as usize..(info.offset + info.len) as usize]
}

fn decode_embedder(payload: &[u8]) -> Result<TextEmbedder, SnapshotError> {
    let mut r = Reader::new(payload, "embedder");
    let config = EmbedConfig {
        dims: r.u32()? as usize,
        lexicon_coverage: r.f64()?,
        seed: r.u64()?,
        word_weight: r.f32()?,
        concept_weight: r.f32()?,
        trigram_weight: r.f32()?,
    };
    let n_concepts = r.count(5)?;
    let mut concepts = Vec::with_capacity(n_concepts);
    for _ in 0..n_concepts {
        let id = r.str()?.to_string();
        let n_alts = r.count(4)?;
        let mut alts = Vec::with_capacity(n_alts);
        for _ in 0..n_alts {
            let n_words = r.count(4)?;
            let mut words = Vec::with_capacity(n_words);
            for _ in 0..n_words {
                words.push(r.str()?.to_string());
            }
            alts.push(words);
        }
        concepts.push(Concept { id, alts });
    }
    let n_known = r.count(8)?;
    let mut known = Vec::with_capacity(n_known);
    for _ in 0..n_known {
        known.push((r.u32()?, r.u32()?));
    }
    let n_phrases = r.count(12)?;
    let mut phrases = Vec::with_capacity(n_phrases);
    for _ in 0..n_phrases {
        phrases.push(PhraseRow {
            phrase: r.str()?.to_string(),
            concept: r.u32()?,
            alt: r.u32()?,
        });
    }
    if !r.is_empty() {
        return Err(SnapshotError::malformed(format!(
            "embedder section has {} trailing bytes",
            r.remaining()
        )));
    }
    TextEmbedder::from_parts(EmbedderParts {
        config,
        lexicon: Lexicon::from_concepts(concepts),
        known,
        phrases,
    })
    .map_err(|e| SnapshotError::malformed(format!("embedder: {e}")))
}

fn decode_strings(payload: &[u8]) -> Result<Vec<Arc<str>>, SnapshotError> {
    let mut r = Reader::new(payload, "strings");
    let n = r.count(4)?;
    let mut out: Vec<Arc<str>> = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Arc::from(r.str()?));
    }
    if !r.is_empty() {
        return Err(SnapshotError::malformed(format!(
            "strings section has {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(out)
}

fn decode_entries(payload: &[u8], strings: &[Arc<str>]) -> Result<Vec<LibEntry>, SnapshotError> {
    let mut r = Reader::new(payload, "entries");
    let n = r.count(20)?;
    let mut out = Vec::with_capacity(n);
    let fetch = |id: u32| -> Result<Arc<str>, SnapshotError> {
        strings.get(id as usize).cloned().ok_or_else(|| {
            SnapshotError::malformed(format!(
                "entry references string {id}, table has {}",
                strings.len()
            ))
        })
    };
    for _ in 0..n {
        let db = r.u32()? as usize;
        out.push(LibEntry {
            db,
            db_id: fetch(r.u32()?)?,
            schema_text: fetch(r.u32()?)?,
            nlq: fetch(r.u32()?)?,
            dvq: fetch(r.u32()?)?,
        });
    }
    if !r.is_empty() {
        return Err(SnapshotError::malformed(format!(
            "entries section has {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(out)
}

fn decode_index(payload: &[u8], name: &'static str) -> Result<VectorIndex, SnapshotError> {
    let mut r = Reader::new(payload, name);
    let dims = r.u32()? as usize;
    let rows = r.u64()? as usize;
    let elems = rows.checked_mul(dims).ok_or_else(|| {
        SnapshotError::malformed(format!("{name}: {rows} rows × {dims} dims overflows"))
    })?;
    let data = r.f32s(elems)?;
    if !r.is_empty() {
        return Err(SnapshotError::malformed(format!(
            "{name} section has {} trailing bytes",
            r.remaining()
        )));
    }
    VectorIndex::from_parts(dims, data)
        .map_err(|e| SnapshotError::malformed(format!("{name}: {e}")))
}

fn decode_ann(payload: &[u8], name: &'static str) -> Result<IvfIndex, SnapshotError> {
    let mut r = Reader::new(payload, name);
    let dims = r.u32()? as usize;
    let nprobe = r.u32()? as usize;
    let quantized = r.u32()? != 0;
    let _reserved = r.u32()?;
    let cells = r.u64()? as usize;
    let rows = r.u64()? as usize;
    let centroid_elems = cells.checked_mul(dims).ok_or_else(|| {
        SnapshotError::malformed(format!("{name}: {cells} cells × {dims} dims overflows"))
    })?;
    let centroids = r.f32s(centroid_elems)?;
    let cell_offsets = r.u32s(
        cells
            .checked_add(1)
            .ok_or_else(|| SnapshotError::malformed(format!("{name}: cell count overflows")))?,
    )?;
    let ids = r.u32s(rows)?;
    let (codes, scales) = if quantized {
        let code_elems = rows.checked_mul(dims).ok_or_else(|| {
            SnapshotError::malformed(format!("{name}: {rows} rows × {dims} dims overflows"))
        })?;
        (r.i8s(code_elems)?, r.f32s(rows)?)
    } else {
        (Vec::new(), Vec::new())
    };
    if !r.is_empty() {
        return Err(SnapshotError::malformed(format!(
            "{name} section has {} trailing bytes",
            r.remaining()
        )));
    }
    IvfIndex::from_parts(IvfParts {
        dims,
        nprobe,
        quantized,
        centroids,
        cell_offsets,
        ids,
        codes,
        scales,
    })
    .map_err(|e| SnapshotError::malformed(format!("{name}: {e}")))
}

/// Decode a complete snapshot: framing + checksums, then payloads, then
/// cross-section consistency.
pub fn decode(bytes: &[u8]) -> Result<LoadedSnapshot, SnapshotError> {
    let manifest = inspect_bytes(bytes)?;
    let embedder = decode_embedder(section(bytes, &manifest, SectionKind::Embedder))?;
    let strings = decode_strings(section(bytes, &manifest, SectionKind::Strings))?;
    let entries = decode_entries(section(bytes, &manifest, SectionKind::Entries), &strings)?;
    let nlq_index = decode_index(
        section(bytes, &manifest, SectionKind::NlqIndex),
        "nlq_index",
    )?;
    let dvq_index = decode_index(
        section(bytes, &manifest, SectionKind::DvqIndex),
        "dvq_index",
    )?;

    if entries.len() as u64 != manifest.entries {
        return Err(SnapshotError::malformed(format!(
            "header claims {} entries, entry table has {}",
            manifest.entries,
            entries.len()
        )));
    }
    if embedder.dims() as u32 != manifest.dims {
        return Err(SnapshotError::malformed(format!(
            "header claims {} dims, embedder has {}",
            manifest.dims,
            embedder.dims()
        )));
    }
    if !entries.is_empty() && nlq_index.dims() != embedder.dims() {
        return Err(SnapshotError::malformed(format!(
            "index stride {} disagrees with embedder dims {}",
            nlq_index.dims(),
            embedder.dims()
        )));
    }
    let library = EmbeddingLibrary::from_parts(entries, nlq_index, dvq_index)
        .map_err(SnapshotError::malformed)?;
    if manifest.format_version == FORMAT_VERSION_ANN {
        let nlq = decode_ann(section(bytes, &manifest, SectionKind::AnnNlq), "ann_nlq")?;
        let dvq = decode_ann(section(bytes, &manifest, SectionKind::AnnDvq), "ann_dvq")?;
        // attach_ann cross-checks the ANN shapes against the flat stores, so
        // a snapshot whose sections disagree fails here, not at query time.
        library
            .attach_ann(AnnPair { nlq, dvq })
            .map_err(SnapshotError::malformed)?;
    }
    Ok(LoadedSnapshot {
        embedder,
        library,
        manifest,
    })
}

// ---------------------------------------------------------------------------
// filesystem entry points
// ---------------------------------------------------------------------------

fn io_err(path: &Path, source: std::io::Error) -> SnapshotError {
    SnapshotError::Io {
        path: path.display().to_string(),
        source,
    }
}

/// Write a snapshot atomically: a *uniquely named* temp file + rename, so
/// a crashed writer never leaves a half-written artifact behind the real
/// name, and concurrent saves to the same path (two admin requests, or an
/// admin save racing write-through) each stage their own bytes instead of
/// interleaving in a shared `.tmp` — last rename wins with a complete file.
pub fn save(
    path: impl AsRef<Path>,
    library: &EmbeddingLibrary,
    embedder: &TextEmbedder,
) -> Result<Manifest, SnapshotError> {
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let path = path.as_ref();
    let bytes = encode(library, embedder);
    let manifest = inspect_bytes(&bytes).expect("freshly encoded snapshots are valid");
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let tmp = path.with_file_name(format!(
        "{file_name}.{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
    ));
    std::fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, e))?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(io_err(path, e));
    }
    Ok(manifest)
}

/// Read + fully decode a snapshot file.
pub fn load(path: impl AsRef<Path>) -> Result<LoadedSnapshot, SnapshotError> {
    let path = path.as_ref();
    let mut bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    // Chaos hook: a fired `snapshot.corrupt` flips one payload byte, which
    // the checksum below must turn into a structured error — exactly what a
    // torn disk write would look like.
    if let Some(t2v_fault::FaultAction::Corrupt) =
        t2v_fault::fire(t2v_fault::FaultPoint::SnapshotCorrupt)
    {
        let mid = bytes.len() / 2;
        if let Some(b) = bytes.get_mut(mid) {
            *b ^= 0xff;
        }
    }
    decode(&bytes)
}

/// Framing + checksum validation only (no payload reconstruction).
pub fn inspect(path: impl AsRef<Path>) -> Result<Manifest, SnapshotError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    inspect_bytes(&bytes)
}

/// Full verification: decode everything and re-derive both fingerprints
/// from the reconstructed state, proving the header's claims — not just
/// the bytes — are intact.
pub fn verify(path: impl AsRef<Path>) -> Result<Manifest, SnapshotError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let loaded = decode(&bytes)?;
    let lib_fp = library_fingerprint(&loaded.library);
    if lib_fp != loaded.manifest.corpus_fingerprint {
        return Err(SnapshotError::FingerprintMismatch {
            which: "corpus",
            expected: loaded.manifest.corpus_fingerprint,
            found: lib_fp,
        });
    }
    let emb_fp = embedder_fingerprint(&loaded.embedder);
    if emb_fp != loaded.manifest.embedder_fingerprint {
        return Err(SnapshotError::FingerprintMismatch {
            which: "embedder",
            expected: loaded.manifest.embedder_fingerprint,
            found: emb_fp,
        });
    }
    Ok(loaded.manifest)
}
