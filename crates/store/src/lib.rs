//! # t2v-store — the persistent artifact store
//!
//! GRED's embedding library is the dominant cost of every cold start: two
//! embeddings per training example, re-derived from the synthetic corpus on
//! each process launch. This crate turns the built artifact — the
//! pre-normalised [`t2v_embed::VectorIndex`] pair, the `Arc<str>`-interned
//! [`t2v_gred::LibEntry`] table, and the embedder's lexicon/coverage/
//! stemmed-phrase tables — into a durable, versioned, checksummed on-disk
//! snapshot, so a restart costs one file read instead of an O(corpus)
//! rebuild.
//!
//! * [`format`] — the wire format: magic + version + fingerprints + section
//!   table + FNV-64 checksums, with an alignment-safe loader that
//!   reconstructs the library without re-embedding anything.
//! * [`fingerprint`] — provenance: corpus and embedder fingerprints that
//!   pin a snapshot to exactly what the consumer would have built.
//! * [`source`] — the [`LibrarySource`] seam (`Build` | `Snapshot` |
//!   `SnapshotOrBuild`) every consumer resolves instead of calling
//!   `EmbeddingLibrary::build` directly, plus the [`EmbedderPool`] that
//!   dedups shared embedder tables across tenants by fingerprint.
//! * [`scan`] — directory scanning for snapshot catalogs: every
//!   `*.t2vsnap` under a directory with its inspected manifest.
//! * [`error`] — the structured failure taxonomy; corrupt or foreign bytes
//!   can never panic the loader.
//!
//! The correctness bar (conformance-tested): a `Gred` assembled from a
//! loaded snapshot translates **byte-identically** to one assembled from a
//! fresh build.
//!
//! ```no_run
//! use t2v_corpus::{generate, CorpusConfig};
//! use t2v_embed::EmbedConfig;
//! use t2v_store::{save, LibrarySource};
//!
//! let corpus = generate(&CorpusConfig::tiny(7));
//! let built = LibrarySource::Build
//!     .resolve(&corpus, &EmbedConfig::default())
//!     .unwrap();
//! save("library.t2vsnap", &built.library, &built.embedder).unwrap();
//! // Next start: O(file read) instead of O(corpus).
//! let warm = LibrarySource::Snapshot { path: "library.t2vsnap".into() }
//!     .resolve(&corpus, &EmbedConfig::default())
//!     .unwrap();
//! assert_eq!(warm.corpus_fingerprint, built.corpus_fingerprint);
//! ```

pub mod error;
pub mod fingerprint;
pub mod format;
pub mod scan;
pub mod source;
mod wire;

pub use error::SnapshotError;
pub use fingerprint::{
    corpus_fingerprint, embedder_fingerprint, expected_embedder_fingerprint, library_fingerprint,
};
pub use format::{
    decode, encode, inspect, inspect_bytes, load, save, verify, AnnSummary, LoadedSnapshot,
    Manifest, SectionInfo, SectionKind, FORMAT_VERSION, FORMAT_VERSION_ANN, MAGIC,
};
pub use scan::{scan_snapshots, ScanEntry, SNAPSHOT_EXT};
pub use source::{EmbedderPool, LibrarySource, Provenance, ResolvedLibrary};
/// The format's section/trailer checksum (exposed so tests and tooling can
/// re-seal deliberately corrupted snapshots).
pub use wire::checksum64;
