//! The provenance seam: where a consumer's `EmbeddingLibrary` comes from.
//!
//! Everything that used to call `EmbeddingLibrary::build` directly —
//! `t2v-serve`, the bench binaries, the snapshot CLI — now resolves a
//! [`LibrarySource`] instead, so each consumer *declares* whether its
//! library is built from the corpus or restored from a snapshot, and the
//! result always arrives with verified provenance (fingerprints checked
//! against the corpus and embedder config actually in use).

use crate::error::SnapshotError;
use crate::fingerprint::{corpus_fingerprint, embedder_fingerprint};
use crate::format;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use t2v_corpus::lexicon::Lexicon;
use t2v_corpus::Corpus;
use t2v_embed::{EmbedConfig, TextEmbedder};
use t2v_gred::EmbeddingLibrary;

/// Where to obtain the embedding library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibrarySource {
    /// Build from the corpus's training split (the original cold path).
    Build,
    /// Load the snapshot at `path`. A missing file, corrupt bytes, or a
    /// fingerprint that does not match the consumer's corpus/embedder all
    /// fail loudly with a structured [`SnapshotError`].
    Snapshot { path: PathBuf },
    /// Load `path` when it exists, otherwise build. Existing-but-broken
    /// snapshots still fail loudly: silent fallback would mask corruption
    /// and quietly re-eat the build cost every restart.
    SnapshotOrBuild { path: PathBuf },
}

/// How a resolved library actually materialised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    Built,
    Snapshot { path: PathBuf },
}

impl Provenance {
    /// Stable label for metrics and API surfaces.
    pub fn label(&self) -> &'static str {
        match self {
            Provenance::Built => "built",
            Provenance::Snapshot { .. } => "snapshot",
        }
    }
}

/// A library with verified provenance, ready for `Gred::from_parts`.
pub struct ResolvedLibrary {
    pub embedder: Arc<TextEmbedder>,
    pub library: Arc<EmbeddingLibrary>,
    pub provenance: Provenance,
    /// Fingerprint of the training split the library covers.
    pub corpus_fingerprint: u64,
    /// Fingerprint of the embedding model the vectors came from.
    pub embedder_fingerprint: u64,
}

impl std::fmt::Debug for ResolvedLibrary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolvedLibrary")
            .field("entries", &self.library.len())
            .field("provenance", &self.provenance)
            .field("corpus_fingerprint", &self.corpus_fingerprint)
            .field("embedder_fingerprint", &self.embedder_fingerprint)
            .finish()
    }
}

/// Deduplicates shared embedder tables across resolved libraries, keyed by
/// embedder fingerprint. Multi-tenant servers resolve one library per
/// tenant, but tenants overwhelmingly share one embedding model (same
/// lexicon, same config); holding T copies of the lexicon / coverage /
/// stemmed-phrase tables would waste memory linearly in tenant count. The
/// fingerprint covers config, lexicon, and a coverage sample, so equal
/// fingerprints mean behaviourally identical embedders — sharing one `Arc`
/// is invisible to translation bytes.
///
/// The pool holds `Weak` references: it never keeps an embedder alive by
/// itself, so when the last consumer (e.g. a detached tenant) drops its
/// `Arc`, the table is freed — attach/detach churn cannot accumulate
/// tables of long-gone tenants.
#[derive(Default)]
pub struct EmbedderPool {
    by_fingerprint: std::collections::HashMap<u64, std::sync::Weak<TextEmbedder>>,
}

impl EmbedderPool {
    pub fn new() -> Self {
        EmbedderPool::default()
    }

    /// Fold `resolved` into the pool: if a live embedder with the same
    /// fingerprint is already pooled, `resolved` is rewritten to share that
    /// `Arc` (returns `true`); otherwise its embedder becomes the pooled
    /// table for the fingerprint (returns `false`).
    pub fn adopt(&mut self, resolved: &mut ResolvedLibrary) -> bool {
        match self.by_fingerprint.entry(resolved.embedder_fingerprint) {
            std::collections::hash_map::Entry::Occupied(mut pooled) => {
                if let Some(live) = pooled.get().upgrade() {
                    resolved.embedder = live;
                    return true;
                }
                // Every previous holder is gone; this embedder becomes the
                // pooled table.
                pooled.insert(Arc::downgrade(&resolved.embedder));
                false
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Arc::downgrade(&resolved.embedder));
                false
            }
        }
    }

    /// Distinct embedder tables currently pooled and still alive.
    pub fn len(&self) -> usize {
        self.by_fingerprint
            .values()
            .filter(|w| w.strong_count() > 0)
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl LibrarySource {
    /// Resolve against the corpus the consumer serves and the embedder
    /// configuration it would otherwise build with (over the builtin
    /// lexicon). Snapshot paths are verified: both fingerprints must match
    /// what `Build` would have produced, so a resolved library is
    /// interchangeable with a built one no matter where it came from.
    pub fn resolve(
        &self,
        corpus: &Corpus,
        embed_config: &EmbedConfig,
    ) -> Result<ResolvedLibrary, SnapshotError> {
        match self {
            LibrarySource::Build => Ok(build(corpus, embed_config)),
            LibrarySource::Snapshot { path } => load_verified(path, corpus, embed_config),
            LibrarySource::SnapshotOrBuild { path } => {
                if path.exists() {
                    load_verified(path, corpus, embed_config)
                } else {
                    Ok(build(corpus, embed_config))
                }
            }
        }
    }
}

fn build(corpus: &Corpus, embed_config: &EmbedConfig) -> ResolvedLibrary {
    let embedder = TextEmbedder::new(Lexicon::builtin(), embed_config.clone());
    let library = EmbeddingLibrary::build(corpus, &embedder);
    ResolvedLibrary {
        corpus_fingerprint: corpus_fingerprint(corpus),
        embedder_fingerprint: embedder_fingerprint(&embedder),
        embedder: Arc::new(embedder),
        library: Arc::new(library),
        provenance: Provenance::Built,
    }
}

fn load_verified(
    path: &Path,
    corpus: &Corpus,
    embed_config: &EmbedConfig,
) -> Result<ResolvedLibrary, SnapshotError> {
    let loaded = format::load(path)?;
    let expected_corpus = corpus_fingerprint(corpus);
    if loaded.manifest.corpus_fingerprint != expected_corpus {
        return Err(SnapshotError::FingerprintMismatch {
            which: "corpus",
            expected: expected_corpus,
            found: loaded.manifest.corpus_fingerprint,
        });
    }
    // Verify the *reconstructed* embedder without building a reference one
    // (constructing a throwaway `TextEmbedder` per warm boot would re-pay a
    // chunk of the cold start the snapshot exists to skip): the loaded
    // config and lexicon must equal what this process would build with, and
    // the header's fingerprint must match the reconstructed state. The
    // coverage sample is covered by that fingerprint and is a deterministic
    // function of (seed, coverage, lexicon), so equal inputs ⇒ equal
    // embedders. Only the error path affords the full reference build, for
    // an exact expected-vs-found diagnostic.
    let found_embedder = embedder_fingerprint(&loaded.embedder);
    if loaded.manifest.embedder_fingerprint != found_embedder
        || loaded.embedder.config() != embed_config
        || loaded.embedder.lexicon().concepts != Lexicon::builtin().concepts
    {
        return Err(SnapshotError::FingerprintMismatch {
            which: "embedder",
            expected: crate::fingerprint::expected_embedder_fingerprint(embed_config),
            found: loaded.manifest.embedder_fingerprint,
        });
    }
    Ok(ResolvedLibrary {
        corpus_fingerprint: loaded.manifest.corpus_fingerprint,
        embedder_fingerprint: found_embedder,
        embedder: Arc::new(loaded.embedder),
        library: Arc::new(loaded.library),
        provenance: Provenance::Snapshot {
            path: path.to_path_buf(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2v_corpus::generate;

    #[test]
    fn embedder_pool_dedups_live_tables_and_releases_dead_ones() {
        let corpus = generate(&t2v_corpus::CorpusConfig::tiny(7));
        let mut pool = EmbedderPool::new();
        let mut first = LibrarySource::Build
            .resolve(&corpus, &EmbedConfig::default())
            .unwrap();
        assert!(!pool.adopt(&mut first), "first adoption seeds the pool");
        assert_eq!(pool.len(), 1);

        // A second resolve over the same config dedups onto the first Arc.
        let mut second = LibrarySource::Build
            .resolve(&corpus, &EmbedConfig::default())
            .unwrap();
        assert!(pool.adopt(&mut second));
        assert!(Arc::ptr_eq(&first.embedder, &second.embedder));
        assert_eq!(pool.len(), 1);

        // The pool holds only Weak refs: once every consumer is gone the
        // table dies, and a later adoption re-seeds instead of upgrading.
        drop(first);
        drop(second);
        assert_eq!(pool.len(), 0, "pool must not keep embedders alive");
        let mut third = LibrarySource::Build
            .resolve(&corpus, &EmbedConfig::default())
            .unwrap();
        assert!(
            !pool.adopt(&mut third),
            "dead entry is replaced, not shared"
        );
        assert_eq!(pool.len(), 1);
    }
}
