//! The snapshot store's acceptance suite.
//!
//! * **Roundtrip**: build → encode → decode reproduces the library bytes
//!   (entries, interning, raw index stores), top-k results, and — the bar
//!   that matters — byte-identical GRED translations.
//! * **Corruption**: truncation at every boundary class, flipped bytes at
//!   sampled offsets, wrong magic/version, and foreign fingerprints all
//!   yield structured errors; nothing panics, nothing is silently accepted.

use proptest::prelude::*;
use std::sync::Arc;
use t2v_corpus::{generate, CorpusConfig};
use t2v_embed::{EmbedConfig, TextEmbedder, VectorIndex};
use t2v_gred::{EmbeddingLibrary, Gred, GredConfig, LibEntry};
use t2v_llm::{LlmConfig, SimulatedChatModel};
use t2v_store::{
    corpus_fingerprint, decode, encode, inspect_bytes, LibrarySource, Provenance, SnapshotError,
};

fn fixture() -> (t2v_corpus::Corpus, TextEmbedder, EmbeddingLibrary) {
    let corpus = generate(&CorpusConfig::tiny(7));
    let embedder = TextEmbedder::default_model();
    let library = EmbeddingLibrary::build(&corpus, &embedder);
    (corpus, embedder, library)
}

#[test]
fn roundtrip_reproduces_library_bytes_and_interning() {
    let (corpus, embedder, library) = fixture();
    let bytes = encode(&library, &embedder);
    let loaded = decode(&bytes).expect("fresh snapshot decodes");

    assert_eq!(loaded.manifest.entries as usize, library.len());
    assert_eq!(loaded.manifest.dims as usize, embedder.dims());
    assert_eq!(
        loaded.manifest.corpus_fingerprint,
        corpus_fingerprint(&corpus)
    );

    // Entries: field-for-field equal…
    assert_eq!(loaded.library.len(), library.len());
    for (a, b) in loaded.library.entries.iter().zip(&library.entries) {
        assert_eq!(a.db, b.db);
        assert_eq!(a.db_id, b.db_id);
        assert_eq!(a.schema_text, b.schema_text);
        assert_eq!(a.nlq, b.nlq);
        assert_eq!(a.dvq, b.dvq);
    }
    // …with Arc interning reconstructed: entries of one database share one
    // schema allocation, exactly like a built library.
    for (a, b) in loaded
        .library
        .entries
        .iter()
        .zip(loaded.library.entries.iter().skip(1))
    {
        if a.db == b.db {
            assert!(Arc::ptr_eq(&a.schema_text, &b.schema_text));
            assert!(Arc::ptr_eq(&a.db_id, &b.db_id));
        }
    }

    // Index stores: bit-identical raw rows, so retrieval is bit-identical.
    assert_eq!(
        loaded.library.nlq_index.raw_rows().1,
        library.nlq_index.raw_rows().1
    );
    assert_eq!(
        loaded.library.dvq_index.raw_rows().1,
        library.dvq_index.raw_rows().1
    );
    for ex in corpus.dev.iter().take(10) {
        let q = embedder.embed(&ex.nlq);
        assert_eq!(
            loaded.library.nlq_index.top_k_prenormalized(&q, 10),
            library.nlq_index.top_k_prenormalized(&q, 10)
        );
    }

    // The embedder reconstructs behaviourally identical.
    for ex in corpus.dev.iter().take(5) {
        assert_eq!(loaded.embedder.embed(&ex.nlq), embedder.embed(&ex.nlq));
    }
}

#[test]
fn snapshot_loaded_gred_translates_byte_identically() {
    // The acceptance bar from the issue: a snapshot-loaded Gred must be
    // byte-identical to a freshly built one across the conformance set.
    let (corpus, embedder, library) = fixture();
    let bytes = encode(&library, &embedder);
    let loaded = decode(&bytes).unwrap();

    let model = SimulatedChatModel::new(LlmConfig::default());
    let built = Gred::from_parts(
        Arc::new(embedder),
        Arc::new(library),
        model.clone(),
        GredConfig::default(),
    );
    let warm = Gred::from_parts(
        Arc::new(loaded.embedder),
        Arc::new(loaded.library),
        model,
        GredConfig::default(),
    );
    for ex in corpus.dev.iter().take(20) {
        let db = &corpus.databases[ex.db];
        let a = built.translate(&ex.nlq, db);
        let b = warm.translate(&ex.nlq, db);
        assert_eq!(a, b, "snapshot-loaded GRED diverged on {:?}", ex.nlq);
        let dvq = b.final_dvq().expect("pipeline output");
        t2v_dvq::parse(dvq).expect("loaded library yields parseable DVQs");
    }
}

#[test]
fn library_source_resolves_and_verifies_provenance() {
    let corpus = generate(&CorpusConfig::tiny(7));
    let cfg = EmbedConfig::default();
    let dir = std::env::temp_dir().join(format!("t2vsnap-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lib.t2vsnap");

    // Missing file: SnapshotOrBuild falls back to building…
    let fallback = LibrarySource::SnapshotOrBuild { path: path.clone() }
        .resolve(&corpus, &cfg)
        .unwrap();
    assert_eq!(fallback.provenance, Provenance::Built);
    // …while the strict Snapshot source fails loudly.
    let err = LibrarySource::Snapshot { path: path.clone() }
        .resolve(&corpus, &cfg)
        .unwrap_err();
    assert_eq!(err.code(), "io");

    // Written back, both sources load with snapshot provenance.
    t2v_store::save(&path, &fallback.library, &fallback.embedder).unwrap();
    t2v_store::verify(&path).expect("fresh snapshot verifies");
    for source in [
        LibrarySource::Snapshot { path: path.clone() },
        LibrarySource::SnapshotOrBuild { path: path.clone() },
    ] {
        let warm = source.resolve(&corpus, &cfg).unwrap();
        assert_eq!(warm.provenance, Provenance::Snapshot { path: path.clone() });
        assert_eq!(warm.corpus_fingerprint, fallback.corpus_fingerprint);
        assert_eq!(warm.embedder_fingerprint, fallback.embedder_fingerprint);
        assert_eq!(warm.library.len(), fallback.library.len());
    }

    // A different corpus rejects the snapshot: corpus fingerprint mismatch.
    let other = generate(&CorpusConfig::tiny(8));
    let err = LibrarySource::Snapshot { path: path.clone() }
        .resolve(&other, &cfg)
        .unwrap_err();
    assert!(
        matches!(
            err,
            SnapshotError::FingerprintMismatch {
                which: "corpus",
                ..
            }
        ),
        "got {err}"
    );

    // A different embedder config rejects it too.
    let narrow = EmbedConfig {
        lexicon_coverage: 0.5,
        ..EmbedConfig::default()
    };
    let err = LibrarySource::Snapshot { path: path.clone() }
        .resolve(&corpus, &narrow)
        .unwrap_err();
    assert!(matches!(
        err,
        SnapshotError::FingerprintMismatch {
            which: "embedder",
            ..
        }
    ));

    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// corruption
// ---------------------------------------------------------------------------

#[test]
fn wrong_magic_and_wrong_version_are_structured_errors() {
    let (_, embedder, library) = fixture();
    let good = encode(&library, &embedder);

    let mut bad = good.clone();
    bad[0] = b'X';
    assert!(matches!(
        decode(&bad).unwrap_err(),
        SnapshotError::BadMagic { .. }
    ));

    let mut bad = good.clone();
    bad[8] = 0xEE; // format version little-endian low byte
    assert!(matches!(
        decode(&bad).unwrap_err(),
        SnapshotError::UnsupportedVersion { found, .. } if found != t2v_store::FORMAT_VERSION
    ));

    // Not a snapshot at all.
    assert!(decode(b"").is_err());
    assert!(decode(b"short").is_err());
    assert!(decode(&[0u8; 64]).is_err());
}

#[test]
fn truncation_at_every_length_class_is_rejected() {
    let (_, embedder, library) = fixture();
    let good = encode(&library, &embedder);
    // Cut inside the header, the table, each payload region, and just
    // before the trailer — all must fail with a structured error.
    let cuts = [
        4,
        20,
        47,
        100,
        good.len() / 4,
        good.len() / 2,
        good.len() - 9,
        good.len() - 1,
    ];
    for cut in cuts {
        let err = decode(&good[..cut]).expect_err(&format!("cut at {cut} accepted"));
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
            ),
            "cut {cut}: unexpected error {err}"
        );
    }
}

#[test]
fn every_sampled_bit_flip_is_caught() {
    let (_, embedder, library) = fixture();
    let good = encode(&library, &embedder);
    // Flipping any byte breaks the whole-file checksum (or an earlier
    // framing check). Sample densely in the framing region and sparsely in
    // the payloads — exhaustive flipping would hash ~1 GB in CI.
    let mut offsets: Vec<usize> = (0..good.len().min(300)).collect();
    offsets.extend((300..good.len()).step_by(211));
    offsets.push(good.len() - 1); // the trailer itself
    for off in offsets {
        let mut bad = good.clone();
        bad[off] ^= 0x40;
        assert!(
            decode(&bad).is_err(),
            "flip at {off}/{} was silently accepted",
            good.len()
        );
    }
}

#[test]
fn internally_inconsistent_snapshots_are_malformed() {
    // A hand-built library whose string references are valid but whose
    // index shape disagrees with the entry table: the loader must reject
    // it after decode, not trust the checksums alone.
    let embedder = TextEmbedder::default_model();
    let mut nlq_index = VectorIndex::new();
    let mut dvq_index = VectorIndex::new();
    nlq_index.add(embedder.embed("only one row"));
    dvq_index.add(embedder.embed("Visualize BAR"));
    let entry = |s: &str| -> Arc<str> { Arc::from(s) };
    let lib = EmbeddingLibrary::from_parts(
        vec![LibEntry {
            db: 0,
            db_id: entry("db"),
            schema_text: entry("schema"),
            nlq: entry("only one row"),
            dvq: entry("Visualize BAR"),
        }],
        nlq_index,
        dvq_index,
    )
    .unwrap();
    let mut bytes = encode(&lib, &embedder);
    // Mutate the header's entry count and re-seal the trailer checksum the
    // way a buggy writer with full file access could.
    bytes[32..40].copy_from_slice(&2u64.to_le_bytes());
    let trailer_at = bytes.len() - 8;
    let reseal = t2v_store::checksum64(&bytes[..trailer_at]);
    bytes[trailer_at..].copy_from_slice(&reseal.to_le_bytes());
    let err = decode(&bytes).unwrap_err();
    assert!(matches!(err, SnapshotError::Malformed { .. }), "got {err}");
}

#[test]
fn ann_snapshots_roundtrip_as_v2_and_plain_stay_v1() {
    let (corpus, embedder, library) = fixture();

    // No ANN attached → byte-identical format v1, no ann summary.
    let plain = encode(&library, &embedder);
    let plain_manifest = inspect_bytes(&plain).unwrap();
    assert_eq!(plain_manifest.format_version, t2v_store::FORMAT_VERSION);
    assert_eq!(plain_manifest.sections.len(), 5);
    assert!(plain_manifest.ann.is_none());

    // Train + attach (forced — the tiny corpus is below the auto threshold),
    // re-encode → v2 with both ANN sections checksummed in the table.
    assert!(library.train_ann(&t2v_ann::IvfConfig {
        min_rows: 1,
        ..t2v_ann::IvfConfig::default()
    }));
    let with_ann = encode(&library, &embedder);
    let manifest = inspect_bytes(&with_ann).unwrap();
    assert_eq!(manifest.format_version, t2v_store::FORMAT_VERSION_ANN);
    assert_eq!(manifest.sections.len(), 7);
    let summary = manifest.ann.as_ref().expect("v2 carries an ann summary");
    let pair = library.ann().unwrap();
    assert_eq!(summary.cells as usize, pair.nlq.cells());
    assert_eq!(summary.nprobe as usize, pair.nlq.default_nprobe());
    assert_eq!(summary.quantized, pair.nlq.quantized());
    assert!(summary.bytes > 0);

    // The v1 prefix of the payload set is unchanged by the ANN sections.
    let loaded = decode(&with_ann).expect("v2 decodes");
    assert_eq!(loaded.library.len(), library.len());
    let loaded_pair = loaded.library.ann().expect("ann pair reattached on load");
    assert_eq!(loaded_pair.nlq.kind(), pair.nlq.kind());
    assert_eq!(loaded_pair.dvq.kind(), pair.dvq.kind());
    for ex in corpus.dev.iter().take(10) {
        let q = embedder.embed(&ex.nlq);
        assert_eq!(
            loaded_pair.nlq.search(&loaded.library.nlq_index, &q, 10, 0),
            pair.nlq.search(&library.nlq_index, &q, 10, 0),
            "reloaded ann diverged on {:?}",
            ex.nlq
        );
    }

    // Bit flips inside the ANN sections are caught like any other section.
    let ann_off = manifest
        .sections
        .iter()
        .find(|s| s.kind == t2v_store::SectionKind::AnnNlq)
        .unwrap()
        .offset as usize;
    let mut bad = with_ann.clone();
    bad[ann_off + 16] ^= 0x20;
    assert!(decode(&bad).is_err(), "ann corruption silently accepted");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary synthetic libraries roundtrip exactly: encode → decode →
    /// re-encode yields byte-identical snapshots (canonical form), and the
    /// decoded library matches field-for-field.
    #[test]
    fn synthetic_library_roundtrips(
        texts in prop::collection::vec("[a-z ]{1,30}", 1..12),
        dbs in 1usize..4,
    ) {
        let embedder = TextEmbedder::default_model();
        let mut nlq_index = VectorIndex::new();
        let mut dvq_index = VectorIndex::new();
        let db_ids: Vec<Arc<str>> = (0..dbs).map(|i| Arc::from(format!("db_{i}").as_str())).collect();
        let schemas: Vec<Arc<str>> = (0..dbs).map(|i| Arc::from(format!("Table t{i}(a, b)").as_str())).collect();
        let mut entries = Vec::new();
        for (i, text) in texts.iter().enumerate() {
            let db = i % dbs;
            nlq_index.add(embedder.embed(text));
            dvq_index.add(embedder.embed(&format!("Visualize BAR {text}")));
            entries.push(LibEntry {
                db,
                db_id: Arc::clone(&db_ids[db]),
                schema_text: Arc::clone(&schemas[db]),
                nlq: Arc::from(text.as_str()),
                dvq: Arc::from(format!("Visualize BAR {text}").as_str()),
            });
        }
        let lib = EmbeddingLibrary::from_parts(entries, nlq_index, dvq_index).unwrap();
        let bytes = encode(&lib, &embedder);
        let manifest = inspect_bytes(&bytes).expect("valid framing");
        prop_assert_eq!(manifest.entries as usize, lib.len());
        let loaded = decode(&bytes).expect("roundtrip decodes");
        prop_assert_eq!(loaded.library.len(), lib.len());
        for (a, b) in loaded.library.entries.iter().zip(&lib.entries) {
            prop_assert_eq!(&a.db_id, &b.db_id);
            prop_assert_eq!(&a.nlq, &b.nlq);
            prop_assert_eq!(&a.dvq, &b.dvq);
            prop_assert_eq!(&a.schema_text, &b.schema_text);
        }
        prop_assert_eq!(loaded.library.nlq_index.raw_rows().1, lib.nlq_index.raw_rows().1);
        prop_assert_eq!(loaded.library.dvq_index.raw_rows().1, lib.dvq_index.raw_rows().1);
        // Canonical: re-encoding the decoded state reproduces the bytes.
        let again = encode(&loaded.library, &loaded.embedder);
        prop_assert_eq!(again, bytes);
    }

    /// Arbitrary byte soup never panics the loader and never decodes.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode(&bytes);
        let _ = inspect_bytes(&bytes);
    }

    /// Arbitrary mutations of a real snapshot never decode successfully
    /// into different content (checksums catch them) and never panic.
    #[test]
    fn mutated_real_snapshots_never_decode(
        off_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let embedder = TextEmbedder::default_model();
        let mut nlq = VectorIndex::new();
        let mut dvq = VectorIndex::new();
        nlq.add(embedder.embed("q"));
        dvq.add(embedder.embed("v"));
        let lib = EmbeddingLibrary::from_parts(
            vec![LibEntry {
                db: 0,
                db_id: Arc::from("d"),
                schema_text: Arc::from("s"),
                nlq: Arc::from("q"),
                dvq: Arc::from("v"),
            }],
            nlq,
            dvq,
        ).unwrap();
        let good = encode(&lib, &embedder);
        let off = ((good.len() - 1) as f64 * off_frac) as usize;
        let mut bad = good.clone();
        bad[off] ^= mask;
        prop_assert!(decode(&bad).is_err(), "mutation at {} accepted", off);
    }
}
