//! Property: over arbitrary bucket fills, `histogram_quantile`'s estimate
//! must land within the bucket bounds that contain the *true* quantile of
//! a brute-force reconstruction of the samples.
//!
//! The oracle materializes every observation at its bucket's upper bound
//! (any in-bucket position gives the same containing bucket), takes the
//! rank-`ceil(q*n)` element, and checks the estimator's answer falls in
//! `[lower_bound, upper_bound]` of that element's bucket.

use proptest::prelude::*;
use t2v_obs::histogram_quantile;

/// The serving layer's latency bucket bounds, in seconds.
const BOUNDS: [f64; 12] = [
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 1.0,
];

/// Brute-force oracle: which bucket (index into `per_bucket`, where index
/// `BOUNDS.len()` is the +Inf bucket) holds the rank-`ceil(q*n)` element?
/// The vendored proptest shim has no `prop_assume`, so empty histograms
/// are repaired into the smallest non-empty one instead of discarded.
fn ensure_nonempty(mut per_bucket: Vec<u64>) -> Vec<u64> {
    if per_bucket.iter().all(|&n| n == 0) {
        per_bucket[0] = 1;
    }
    per_bucket
}

fn oracle_bucket(q: f64, per_bucket: &[u64]) -> usize {
    let total: u64 = per_bucket.iter().sum();
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &n) in per_bucket.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return i;
        }
    }
    per_bucket.len() - 1
}

proptest! {
    #[test]
    fn estimate_lands_in_the_true_quantiles_bucket(
        per_bucket in prop::collection::vec(0u64..10_000, BOUNDS.len() + 1)
            .prop_map(ensure_nonempty),
        q_millis in 0u32..=1000,
    ) {
        let q = q_millis as f64 / 1000.0;

        // Build the cumulative layout the estimator consumes.
        let mut cumulative = Vec::with_capacity(per_bucket.len());
        let mut run = 0u64;
        for &n in &per_bucket {
            run += n;
            cumulative.push(run);
        }

        let est = histogram_quantile(q, &BOUNDS, &cumulative)
            .expect("non-empty histogram must estimate");

        let bucket = oracle_bucket(q, &per_bucket);
        if bucket >= BOUNDS.len() {
            // True quantile sits in the +Inf bucket: the estimator clamps
            // to the last finite bound — the best defensible answer.
            prop_assert_eq!(est, *BOUNDS.last().unwrap());
        } else {
            let lower = if bucket == 0 { 0.0 } else { BOUNDS[bucket - 1] };
            let upper = BOUNDS[bucket];
            prop_assert!(
                est >= lower && est <= upper,
                "q={} est={} outside bucket {} [{}, {}] fills={:?}",
                q, est, bucket, lower, upper, per_bucket
            );
        }
    }

    #[test]
    fn estimate_is_monotone_in_q(
        per_bucket in prop::collection::vec(0u64..1_000, BOUNDS.len() + 1)
            .prop_map(ensure_nonempty),
        q_lo in 0u32..=1000,
        q_hi in 0u32..=1000,
    ) {
        let (lo, hi) = (q_lo.min(q_hi), q_lo.max(q_hi));
        let mut cumulative = Vec::new();
        let mut run = 0u64;
        for &n in &per_bucket {
            run += n;
            cumulative.push(run);
        }
        let e_lo = histogram_quantile(lo as f64 / 1000.0, &BOUNDS, &cumulative).unwrap();
        let e_hi = histogram_quantile(hi as f64 / 1000.0, &BOUNDS, &cumulative).unwrap();
        prop_assert!(e_lo <= e_hi, "q monotonicity: {e_lo} > {e_hi}");
    }
}
