//! Histogram-quantile estimation over cumulative bucket counts.
//!
//! The same estimator Prometheus' `histogram_quantile()` uses: find the
//! bucket the requested rank falls in, then interpolate linearly between
//! the bucket's bounds. The estimate is therefore always inside the true
//! quantile's bucket — the property the oracle test in
//! `tests/quantile_prop.rs` checks.

/// Estimate quantile `q` (in `[0, 1]`) from a cumulative histogram.
///
/// `bounds` are the finite upper bounds, ascending; `cumulative` has one
/// count per bound **plus** the `+Inf` count as its final element, so
/// `cumulative.len() == bounds.len() + 1`. Returns `None` for an empty
/// histogram, malformed inputs, or a `q` outside `[0, 1]`.
///
/// Ranks that only the `+Inf` bucket reaches clamp to the last finite
/// bound — there is no upper edge to interpolate toward.
pub fn histogram_quantile(q: f64, bounds: &[f64], cumulative: &[u64]) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) || cumulative.len() != bounds.len() + 1 {
        return None;
    }
    let total = *cumulative.last()?;
    if total == 0 {
        return None;
    }
    // Rank of the target observation, 1-based.
    let rank = (q * total as f64).ceil().max(1.0);
    let idx = cumulative
        .iter()
        .position(|&c| c as f64 >= rank)
        .expect("last cumulative count is the total");
    if idx >= bounds.len() {
        // Only the +Inf bucket reaches the rank.
        return bounds.last().copied();
    }
    let lower = if idx == 0 { 0.0 } else { bounds[idx - 1] };
    let upper = bounds[idx];
    let below = if idx == 0 { 0 } else { cumulative[idx - 1] };
    let in_bucket = cumulative[idx] - below;
    if in_bucket == 0 {
        return Some(upper);
    }
    let frac = (rank - below as f64) / in_bucket as f64;
    Some(lower + (upper - lower) * frac)
}

/// Interpolated count of observations at or below `threshold`, from the
/// same cumulative layout as [`histogram_quantile`]. Observations past the
/// last finite bound are treated as above any threshold — conservative
/// for "fraction faster than X" SLO math.
pub fn cumulative_at(threshold: f64, bounds: &[f64], cumulative: &[u64]) -> Option<f64> {
    if cumulative.len() != bounds.len() + 1 {
        return None;
    }
    if threshold < 0.0 {
        return Some(0.0);
    }
    match bounds.iter().position(|&b| b >= threshold) {
        None => Some(
            bounds
                .last()
                .map_or(0.0, |_| cumulative[bounds.len() - 1] as f64),
        ),
        Some(idx) => {
            let lower = if idx == 0 { 0.0 } else { bounds[idx - 1] };
            let below = if idx == 0 {
                0.0
            } else {
                cumulative[idx - 1] as f64
            };
            let in_bucket = cumulative[idx] as f64 - below;
            let width = bounds[idx] - lower;
            if width <= 0.0 {
                return Some(cumulative[idx] as f64);
            }
            Some(below + in_bucket * (threshold - lower) / width)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUNDS: [f64; 4] = [0.001, 0.005, 0.025, 0.1];

    #[test]
    fn quantile_interpolates_within_bucket() {
        // 100 observations: 50 in (0, 1ms], 30 in (1ms, 5ms], 20 in (5ms, 25ms].
        let cum = [50, 80, 100, 100, 100];
        // p50: rank 50 is exactly the last of bucket 0 → upper edge of it.
        let p50 = histogram_quantile(0.5, &BOUNDS, &cum).unwrap();
        assert!((p50 - 0.001).abs() < 1e-12, "p50={p50}");
        // p90: rank 90 is 10 into bucket 2's 20 → halfway through (5ms, 25ms].
        let p90 = histogram_quantile(0.9, &BOUNDS, &cum).unwrap();
        assert!((p90 - 0.015).abs() < 1e-12, "p90={p90}");
    }

    #[test]
    fn quantile_clamps_to_last_finite_bound_for_overflow_mass() {
        let cum = [0, 0, 0, 0, 10]; // everything slower than 100ms
        assert_eq!(histogram_quantile(0.5, &BOUNDS, &cum), Some(0.1));
    }

    #[test]
    fn quantile_rejects_bad_inputs() {
        assert_eq!(histogram_quantile(0.5, &BOUNDS, &[0, 0, 0, 0, 0]), None);
        assert_eq!(histogram_quantile(1.5, &BOUNDS, &[1, 1, 1, 1, 1]), None);
        assert_eq!(histogram_quantile(0.5, &BOUNDS, &[1, 1]), None);
    }

    #[test]
    fn cumulative_at_interpolates_and_handles_edges() {
        let cum = [50, 80, 100, 100, 100];
        // Exactly on a bound → exact cumulative count.
        assert_eq!(cumulative_at(0.001, &BOUNDS, &cum), Some(50.0));
        // Halfway through bucket 1 ((1ms, 5ms], 30 obs): 50 + 30 * (3-1)/(5-1).
        let at_3ms = cumulative_at(0.003, &BOUNDS, &cum).unwrap();
        assert!((at_3ms - 65.0).abs() < 1e-9, "at_3ms={at_3ms}");
        // Past the last bound: only finite-bucket mass counts.
        assert_eq!(cumulative_at(1.0, &BOUNDS, &cum), Some(100.0));
        assert_eq!(cumulative_at(-1.0, &BOUNDS, &cum), Some(0.0));
    }
}
