//! `t2v-obs` — a self-contained, std-only observability engine.
//!
//! Serving millions of users without an external metrics stack means the
//! process must be able to answer "is it healthy, and where is the time
//! going?" by itself. This crate provides the four pillars (DESIGN.md §15):
//!
//! * [`Tsdb`] — a ring-buffer time-series store a sampler thread fills by
//!   snapshotting the `AtomicU64` metrics registry every `obs_sample_ms`.
//! * [`SloEngine`] — Google-SRE multi-window burn-rate evaluation of
//!   `slo=` objectives against the TSDB.
//! * [`histogram_quantile`] — in-process quantile estimation over the
//!   sampled histogram bucket series.
//! * [`ProfileStore`] — stage-occupancy aggregation fed by a ~97 Hz
//!   sampler walking `t2v_trace`'s exported per-thread stage stacks.
//!
//! [`ObsEngine`] owns the stores plus the two background threads. The
//! embedding server hands it a *collector* closure (how to read the
//! metrics registry) and an optional *transition sink* (where SLO state
//! flips go — the access log); the engine never depends on `t2v-serve`.

mod profile;
mod quantile;
mod slo;
mod tsdb;

pub use profile::ProfileStore;
pub use quantile::{cumulative_at, histogram_quantile};
pub use slo::{
    parse_slos, BurnWindows, SloEngine, SloKind, SloSources, SloSpec, SloStatus, SloTransition,
};
pub use tsdb::Tsdb;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Snapshot of the metrics registry: `(series name, raw value)` pairs.
pub type Collector = Box<dyn Fn() -> Vec<(String, u64)> + Send + Sync>;

/// Called once per SLO firing-state flip, from the sampler thread.
pub type TransitionSink = Box<dyn Fn(&SloTransition) + Send + Sync>;

/// Everything `ObsEngine::new` needs, mirroring the config knobs.
pub struct ObsConfig {
    /// Sampler cadence; `0` disables the sampler (and with it the TSDB
    /// and SLO evaluation).
    pub sample_ms: u64,
    /// TSDB ring retention in seconds.
    pub retention_s: u64,
    /// Profiler cadence; `0` disables the stage-occupancy profiler.
    pub profile_hz: u32,
    /// Parsed SLO objectives (empty = no SLO engine).
    pub slos: Vec<SloSpec>,
    pub sources: SloSources,
    pub windows: BurnWindows,
}

/// The ops plane: stores plus sampler/profiler threads.
pub struct ObsEngine {
    tsdb: Arc<Tsdb>,
    slo: Option<Arc<SloEngine>>,
    profile: Arc<ProfileStore>,
    sample_ms: u64,
    profile_hz: u32,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ObsEngine {
    pub fn new(cfg: ObsConfig) -> ObsEngine {
        let slo = if cfg.slos.is_empty() {
            None
        } else {
            Some(Arc::new(SloEngine::new(cfg.slos, cfg.sources, cfg.windows)))
        };
        ObsEngine {
            tsdb: Arc::new(Tsdb::new(cfg.sample_ms.max(1), cfg.retention_s)),
            slo,
            profile: Arc::new(ProfileStore::new(cfg.retention_s.max(1))),
            sample_ms: cfg.sample_ms,
            profile_hz: cfg.profile_hz,
            stop: Arc::new(AtomicBool::new(false)),
            threads: Mutex::new(Vec::new()),
        }
    }

    pub fn tsdb(&self) -> &Arc<Tsdb> {
        &self.tsdb
    }

    pub fn slo(&self) -> Option<&Arc<SloEngine>> {
        self.slo.as_ref()
    }

    pub fn profile(&self) -> &Arc<ProfileStore> {
        &self.profile
    }

    pub fn sample_ms(&self) -> u64 {
        self.sample_ms
    }

    pub fn profile_hz(&self) -> u32 {
        self.profile_hz
    }

    /// Start the background threads. The sampler sweeps `collector` into
    /// the TSDB every `sample_ms` and evaluates SLOs; the profiler walks
    /// exported stage stacks at `profile_hz`. Either is skipped when its
    /// cadence knob is zero. Call at most once.
    pub fn start(&self, collector: Collector, on_transition: Option<TransitionSink>) {
        let mut threads = lock(&self.threads);
        if self.sample_ms > 0 {
            let tsdb = Arc::clone(&self.tsdb);
            let slo = self.slo.clone();
            let stop = Arc::clone(&self.stop);
            let sample_ms = self.sample_ms;
            let handle = std::thread::Builder::new()
                .name("t2v-obs-sampler".to_string())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let now = unix_ms();
                        tsdb.record(now, &collector());
                        if let Some(slo) = &slo {
                            let (_, transitions) = slo.evaluate(&tsdb, now);
                            if let Some(sink) = &on_transition {
                                for t in &transitions {
                                    sink(t);
                                }
                            }
                        }
                        sleep_until_stop(&stop, sample_ms);
                    }
                })
                .expect("spawn obs sampler");
            threads.push(handle);
        }
        if self.profile_hz > 0 {
            let profile = Arc::clone(&self.profile);
            let stop = Arc::clone(&self.stop);
            let period = Duration::from_nanos(1_000_000_000 / self.profile_hz as u64);
            t2v_trace::set_stack_export(true);
            let handle = std::thread::Builder::new()
                .name("t2v-obs-profiler".to_string())
                .spawn(move || {
                    let mut folded = String::with_capacity(128);
                    while !stop.load(Ordering::Relaxed) {
                        let now = unix_ms();
                        for stack in t2v_trace::sample_stacks() {
                            folded.clear();
                            for (i, stage) in stack.stages.iter().enumerate() {
                                if i > 0 {
                                    folded.push(';');
                                }
                                folded.push_str(stage.name());
                            }
                            profile.record(now, &folded);
                        }
                        std::thread::sleep(period);
                    }
                    t2v_trace::set_stack_export(false);
                })
                .expect("spawn obs profiler");
            threads.push(handle);
        }
    }

    /// Stop and join the background threads. Idempotent.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let handles: Vec<JoinHandle<()>> = lock(&self.threads).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ObsEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Sleep `ms`, waking early (within ~25 ms) if the stop flag flips so
/// shutdown never waits out a full sampling interval.
fn sleep_until_stop(stop: &AtomicBool, ms: u64) {
    let mut remaining = ms;
    while remaining > 0 && !stop.load(Ordering::Relaxed) {
        let chunk = remaining.min(25);
        std::thread::sleep(Duration::from_millis(chunk));
        remaining -= chunk;
    }
}

/// Wall-clock milliseconds since the Unix epoch (same clock the trace
/// layer stamps spans with).
pub fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sampler_thread_sweeps_collector_and_fires_transition_sink() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let engine = ObsEngine::new(ObsConfig {
            sample_ms: 10,
            retention_s: 60,
            profile_hz: 0,
            slos: parse_slos("availability:0.999").unwrap(),
            sources: SloSources::default(),
            windows: BurnWindows {
                fast_ms: 500,
                slow_ms: 1_000,
                threshold: 14.4,
            },
        });
        let transitions = Arc::new(Mutex::new(Vec::new()));
        let t2 = Arc::clone(&transitions);
        engine.start(
            Box::new(move || {
                let n = c2.fetch_add(100, Ordering::Relaxed) + 100;
                vec![
                    ("http.requests".to_string(), n),
                    ("http.requests_5xx".to_string(), n), // every request fails
                ]
            }),
            Some(Box::new(move |t: &SloTransition| {
                lock(&t2).push(t.clone());
            })),
        );
        // Wait for the alert to fire (needs >= 2 samples per window).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let last = engine.slo().unwrap().last();
            if last.first().is_some_and(|s| s.firing) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "alert never fired: {last:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        engine.stop();
        let tr = lock(&transitions);
        assert!(!tr.is_empty());
        assert!(tr[0].firing);
        assert!(engine.tsdb().latest("http.requests").is_some());
    }

    #[test]
    fn profiler_thread_folds_exported_stacks() {
        let engine = ObsEngine::new(ObsConfig {
            sample_ms: 0,
            retention_s: 60,
            profile_hz: 200,
            slos: Vec::new(),
            sources: SloSources::default(),
            windows: BurnWindows::default(),
        });
        engine.start(Box::new(Vec::new), None);
        // A worker thread holding an Embed span under a recorded trace.
        let stop = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let trace = t2v_trace::Trace::start(0xABCD, true);
            let _scope = trace.scope();
            let _span = t2v_trace::span(t2v_trace::Stage::Embed);
            while !s2.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let text = engine.profile().render(10, unix_ms());
            if text.contains("request;embed") {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no embed stack sampled; got: {text:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
        worker.join().unwrap();
        engine.stop();
        assert!(!t2v_trace::stack_export_enabled(), "export off after stop");
    }
}
