//! SLO declarations and multi-window burn-rate evaluation.
//!
//! Objectives come from the `slo=` config knob with the grammar
//! `availability:0.999;latency:p99<5ms;cache_hit:0.7` — malformed specs
//! are boot-time errors, same contract as `fault_plan=`. Evaluation
//! follows the Google SRE multi-window multi-burn-rate recipe: an alert
//! fires only while **both** a fast window (default 5m, catches the page)
//! and a slow window (default 1h, suppresses blips) burn error budget
//! faster than the threshold.

use crate::quantile::cumulative_at;
use crate::tsdb::Tsdb;
use std::sync::Mutex;

/// What an objective measures and its target.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// Fraction of responses that must not be 5xx; budget `1 - target`.
    Availability { target: f64 },
    /// `quantile` of request latency must stay below `threshold_s`;
    /// budget `1 - quantile` of requests may be slower.
    Latency { quantile: f64, threshold_s: f64 },
    /// Cache hit rate must stay at or above `target`; budget `1 - target`
    /// of lookups may miss.
    CacheHit { target: f64 },
}

/// One parsed objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    pub name: String,
    pub kind: SloKind,
    /// Allowed error fraction: burn rate = observed error fraction / budget.
    pub budget: f64,
}

/// Which TSDB series feed each objective. The server wires these to its
/// collector names; tests use their own.
#[derive(Debug, Clone)]
pub struct SloSources {
    pub requests_total: String,
    pub requests_5xx: String,
    pub cache_hits: String,
    pub cache_misses: String,
    /// Latency bucket series are `{prefix}:{i}` for each finite bound and
    /// `{prefix}:inf` for the total count.
    pub latency_bucket_prefix: String,
    /// Finite bucket upper bounds, in seconds, ascending.
    pub latency_bounds_s: Vec<f64>,
}

impl Default for SloSources {
    fn default() -> SloSources {
        SloSources {
            requests_total: "http.requests".to_string(),
            requests_5xx: "http.requests_5xx".to_string(),
            cache_hits: "cache.hits".to_string(),
            cache_misses: "cache.misses".to_string(),
            latency_bucket_prefix: "request_seconds.bucket".to_string(),
            latency_bounds_s: Vec::new(),
        }
    }
}

/// Evaluation windows and the firing threshold.
#[derive(Debug, Clone, Copy)]
pub struct BurnWindows {
    pub fast_ms: u64,
    pub slow_ms: u64,
    /// Burn-rate multiple both windows must exceed to fire. 14.4 is the
    /// classic "2% of a 30-day budget in one hour" page threshold.
    pub threshold: f64,
}

impl Default for BurnWindows {
    fn default() -> BurnWindows {
        BurnWindows {
            fast_ms: 5 * 60 * 1000,
            slow_ms: 60 * 60 * 1000,
            threshold: 14.4,
        }
    }
}

/// Snapshot of one objective after an evaluation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    pub name: String,
    pub firing: bool,
    /// Error-fraction / budget over each window; 0 when the window has
    /// too little data to judge.
    pub fast_burn: f64,
    pub slow_burn: f64,
    /// `1 - slow_burn`: fraction of the error budget left at the current
    /// slow-window error rate. Negative while burning past the budget.
    pub budget_remaining: f64,
    pub target: f64,
}

/// A firing-state flip produced by an evaluation sweep, for the access
/// log's `slo-transition` lines.
#[derive(Debug, Clone, PartialEq)]
pub struct SloTransition {
    pub slo: String,
    pub firing: bool,
    pub fast_burn: f64,
    pub slow_burn: f64,
}

/// Parse the `slo=` config value. Empty input means no objectives.
pub fn parse_slos(spec: &str) -> Result<Vec<SloSpec>, String> {
    let mut out: Vec<SloSpec> = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, value) = part
            .split_once(':')
            .ok_or_else(|| format!("slo objective '{part}' is missing ':'"))?;
        let (name, value) = (name.trim(), value.trim());
        if out.iter().any(|s| s.name == name) {
            return Err(format!("slo objective '{name}' declared twice"));
        }
        let spec = match name {
            "availability" => {
                let target = parse_target(name, value)?;
                SloSpec {
                    name: name.to_string(),
                    kind: SloKind::Availability { target },
                    budget: 1.0 - target,
                }
            }
            "cache_hit" => {
                let target = parse_target(name, value)?;
                SloSpec {
                    name: name.to_string(),
                    kind: SloKind::CacheHit { target },
                    budget: 1.0 - target,
                }
            }
            "latency" => {
                let (quantile, threshold_s) = parse_latency(value)?;
                SloSpec {
                    name: name.to_string(),
                    kind: SloKind::Latency {
                        quantile,
                        threshold_s,
                    },
                    budget: 1.0 - quantile,
                }
            }
            other => {
                return Err(format!(
                    "unknown slo objective '{other}' \
                     (expected availability, latency, or cache_hit)"
                ))
            }
        };
        out.push(spec);
    }
    Ok(out)
}

fn parse_target(name: &str, value: &str) -> Result<f64, String> {
    let target: f64 = value
        .parse()
        .map_err(|_| format!("slo {name} target '{value}' is not a number"))?;
    if !(target > 0.0 && target < 1.0) {
        return Err(format!(
            "slo {name} target must be in (0, 1), got '{value}'"
        ));
    }
    Ok(target)
}

/// Parse `p99<5ms` into `(0.99, 0.005)`.
fn parse_latency(value: &str) -> Result<(f64, f64), String> {
    let (q, threshold) = value
        .split_once('<')
        .ok_or_else(|| format!("slo latency '{value}' must look like p99<5ms"))?;
    let q = q.trim();
    let digits = q
        .strip_prefix('p')
        .ok_or_else(|| format!("slo latency quantile '{q}' must start with 'p'"))?;
    let pct: f64 = digits
        .parse()
        .map_err(|_| format!("slo latency quantile '{q}' is not a number"))?;
    if !(pct > 0.0 && pct < 100.0) {
        return Err(format!("slo latency quantile '{q}' must be in (p0, p100)"));
    }
    let quantile = pct / 100.0;
    let threshold = threshold.trim();
    let (num, scale) = if let Some(v) = threshold.strip_suffix("ms") {
        (v, 1e-3)
    } else if let Some(v) = threshold.strip_suffix("us") {
        (v, 1e-6)
    } else if let Some(v) = threshold.strip_suffix('s') {
        (v, 1.0)
    } else {
        return Err(format!(
            "slo latency threshold '{threshold}' needs a unit (us, ms, or s)"
        ));
    };
    let num: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("slo latency threshold '{threshold}' is not a number"))?;
    if num <= 0.0 {
        return Err(format!("slo latency threshold '{threshold}' must be > 0"));
    }
    Ok((quantile, num * scale))
}

/// Evaluates parsed objectives against the TSDB and tracks firing state.
/// Time is always injected (`now_ms`) so window math is testable under
/// synthetic clocks.
pub struct SloEngine {
    specs: Vec<SloSpec>,
    sources: SloSources,
    windows: BurnWindows,
    state: Mutex<State>,
}

struct State {
    firing: Vec<bool>,
    last: Vec<SloStatus>,
}

impl SloEngine {
    pub fn new(specs: Vec<SloSpec>, sources: SloSources, windows: BurnWindows) -> SloEngine {
        let n = specs.len();
        SloEngine {
            specs,
            sources,
            windows,
            state: Mutex::new(State {
                firing: vec![false; n],
                last: Vec::new(),
            }),
        }
    }

    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    pub fn windows(&self) -> BurnWindows {
        self.windows
    }

    /// Re-evaluate every objective at `now_ms`. Returns the fresh
    /// statuses plus any firing-state transitions since the last sweep.
    pub fn evaluate(&self, tsdb: &Tsdb, now_ms: u64) -> (Vec<SloStatus>, Vec<SloTransition>) {
        let mut statuses = Vec::with_capacity(self.specs.len());
        let mut transitions = Vec::new();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        for (i, spec) in self.specs.iter().enumerate() {
            let fast = self.error_fraction(tsdb, spec, self.windows.fast_ms, now_ms);
            let slow = self.error_fraction(tsdb, spec, self.windows.slow_ms, now_ms);
            let fast_burn = fast.map_or(0.0, |f| f / spec.budget);
            let slow_burn = slow.map_or(0.0, |f| f / spec.budget);
            let firing = fast_burn > self.windows.threshold && slow_burn > self.windows.threshold;
            if firing != state.firing[i] {
                state.firing[i] = firing;
                transitions.push(SloTransition {
                    slo: spec.name.clone(),
                    firing,
                    fast_burn,
                    slow_burn,
                });
            }
            statuses.push(SloStatus {
                name: spec.name.clone(),
                firing,
                fast_burn,
                slow_burn,
                budget_remaining: 1.0 - slow_burn,
                target: match spec.kind {
                    SloKind::Availability { target } | SloKind::CacheHit { target } => target,
                    SloKind::Latency { quantile, .. } => quantile,
                },
            });
        }
        state.last = statuses.clone();
        (statuses, transitions)
    }

    /// Statuses cached from the most recent `evaluate` sweep, for readers
    /// (`/v1/admin/alerts`, `/metrics` gauges) that must not re-run
    /// window math per request.
    pub fn last(&self) -> Vec<SloStatus> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .last
            .clone()
    }

    /// Observed error fraction for one objective over one window. `None`
    /// when the window lacks enough samples to judge — insufficient data
    /// never fires an alert.
    fn error_fraction(
        &self,
        tsdb: &Tsdb,
        spec: &SloSpec,
        window_ms: u64,
        now_ms: u64,
    ) -> Option<f64> {
        match &spec.kind {
            SloKind::Availability { .. } => {
                let total = tsdb.delta(&self.sources.requests_total, window_ms, now_ms)?;
                if total == 0 {
                    return None;
                }
                let bad = tsdb
                    .delta(&self.sources.requests_5xx, window_ms, now_ms)
                    .unwrap_or(0);
                Some(bad as f64 / total as f64)
            }
            SloKind::CacheHit { .. } => {
                let hits = tsdb.delta(&self.sources.cache_hits, window_ms, now_ms)?;
                let misses = tsdb.delta(&self.sources.cache_misses, window_ms, now_ms)?;
                let total = hits + misses;
                if total == 0 {
                    return None;
                }
                Some(misses as f64 / total as f64)
            }
            SloKind::Latency { threshold_s, .. } => {
                let bounds = &self.sources.latency_bounds_s;
                if bounds.is_empty() {
                    return None;
                }
                let prefix = &self.sources.latency_bucket_prefix;
                let mut cumulative = Vec::with_capacity(bounds.len() + 1);
                for i in 0..bounds.len() {
                    cumulative.push(tsdb.delta(&format!("{prefix}:{i}"), window_ms, now_ms)?);
                }
                let total = tsdb.delta(&format!("{prefix}:inf"), window_ms, now_ms)?;
                cumulative.push(total);
                if total == 0 {
                    return None;
                }
                let fast = cumulative_at(*threshold_s, bounds, &cumulative)?;
                Some(((total as f64 - fast) / total as f64).max(0.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_canonical_spec() {
        let specs = parse_slos("availability:0.999;latency:p99<5ms;cache_hit:0.7").unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].kind, SloKind::Availability { target: 0.999 });
        assert!((specs[0].budget - 0.001).abs() < 1e-12);
        assert_eq!(
            specs[1].kind,
            SloKind::Latency {
                quantile: 0.99,
                threshold_s: 0.005
            }
        );
        assert_eq!(specs[2].kind, SloKind::CacheHit { target: 0.7 });
        assert!(parse_slos("").unwrap().is_empty());
        assert!(parse_slos("latency:p99.9<250us").is_ok());
    }

    #[test]
    fn rejects_malformed_specs_at_parse_time() {
        for bad in [
            "availability",
            "availability:1.5",
            "availability:0",
            "uptime:0.9",
            "latency:p99",
            "latency:p99<5",
            "latency:p0<5ms",
            "latency:q99<5ms",
            "latency:p99<-5ms",
            "availability:0.9;availability:0.99",
        ] {
            assert!(parse_slos(bad).is_err(), "'{bad}' should be rejected");
        }
    }

    fn availability_engine(fast_ms: u64, slow_ms: u64) -> SloEngine {
        SloEngine::new(
            parse_slos("availability:0.999").unwrap(),
            SloSources::default(),
            BurnWindows {
                fast_ms,
                slow_ms,
                threshold: 14.4,
            },
        )
    }

    fn feed(tsdb: &Tsdb, t: u64, total: u64, bad: u64) {
        tsdb.record(
            t,
            &[
                ("http.requests".to_string(), total),
                ("http.requests_5xx".to_string(), bad),
            ],
        );
    }

    #[test]
    fn fires_only_when_both_windows_burn_and_clears_when_fast_recovers() {
        let tsdb = Tsdb::new(1000, 600);
        let engine = availability_engine(5_000, 20_000);
        // 20 s of clean traffic: 100 req/s, no errors.
        for s in 0..=20u64 {
            feed(&tsdb, s * 1000, s * 100, 0);
        }
        let (st, tr) = engine.evaluate(&tsdb, 20_000);
        assert!(!st[0].firing);
        assert!(tr.is_empty());
        assert_eq!(st[0].fast_burn, 0.0);

        // Error storm: every request 5xx for 6 s. Fast window saturates
        // at error fraction 1.0 → burn 1000 against a 0.001 budget; the
        // slow window blends clean + storm traffic but still far exceeds
        // 14.4 (6 s of 100% errors over 20 s ≈ 0.23 fraction → burn 230).
        let mut total = 2000;
        let mut bad = 0;
        for s in 21..=26u64 {
            total += 100;
            bad += 100;
            feed(&tsdb, s * 1000, total, bad);
        }
        let (st, tr) = engine.evaluate(&tsdb, 26_000);
        assert!(st[0].firing, "storm should fire: {:?}", st[0]);
        assert_eq!(
            tr,
            vec![SloTransition {
                slo: "availability".to_string(),
                firing: true,
                fast_burn: st[0].fast_burn,
                slow_burn: st[0].slow_burn,
            }]
        );
        assert!((st[0].fast_burn - 1000.0).abs() < 1.0, "{:?}", st[0]);
        assert!(st[0].budget_remaining < 0.0);

        // Recovery: clean traffic pushes the fast window back under
        // threshold even while the slow window still remembers the storm.
        for s in 27..=40u64 {
            total += 100;
            feed(&tsdb, s * 1000, total, bad);
        }
        let (st, tr) = engine.evaluate(&tsdb, 40_000);
        assert!(!st[0].firing, "recovered: {:?}", st[0]);
        assert_eq!(tr.len(), 1);
        assert!(!tr[0].firing);
        assert_eq!(st[0].fast_burn, 0.0);
        assert!(st[0].slow_burn > 14.4, "slow window still burning");
    }

    #[test]
    fn insufficient_data_never_fires() {
        let tsdb = Tsdb::new(1000, 600);
        let engine = availability_engine(5_000, 20_000);
        // A single sample: no delta, no verdict.
        feed(&tsdb, 1_000, 100, 100);
        let (st, tr) = engine.evaluate(&tsdb, 1_000);
        assert!(!st[0].firing);
        assert!(tr.is_empty());
        assert_eq!(st[0].fast_burn, 0.0);
    }

    #[test]
    fn latency_objective_burns_on_slow_tail() {
        let bounds = vec![0.001, 0.005, 0.025];
        let sources = SloSources {
            latency_bounds_s: bounds,
            ..SloSources::default()
        };
        let engine = SloEngine::new(
            parse_slos("latency:p99<5ms").unwrap(),
            sources,
            BurnWindows {
                fast_ms: 5_000,
                slow_ms: 5_000,
                threshold: 14.4,
            },
        );
        let tsdb = Tsdb::new(1000, 600);
        // t=0: empty. t=5s: 1000 requests, 400 slower than 5ms — error
        // fraction 0.4 against a 0.01 budget → burn 40.
        let zeros: Vec<(String, u64)> = (0..3)
            .map(|i| (format!("request_seconds.bucket:{i}"), 0))
            .chain([("request_seconds.bucket:inf".to_string(), 0)])
            .collect();
        tsdb.record(0, &zeros);
        tsdb.record(
            5_000,
            &[
                ("request_seconds.bucket:0".to_string(), 100),
                ("request_seconds.bucket:1".to_string(), 600),
                ("request_seconds.bucket:2".to_string(), 950),
                ("request_seconds.bucket:inf".to_string(), 1000),
            ],
        );
        let (st, _) = engine.evaluate(&tsdb, 5_000);
        assert!(st[0].firing, "{:?}", st[0]);
        assert!((st[0].fast_burn - 40.0).abs() < 1e-9, "{:?}", st[0]);
    }

    #[test]
    fn cache_hit_objective_burns_on_miss_rate() {
        let engine = SloEngine::new(
            parse_slos("cache_hit:0.7").unwrap(),
            SloSources::default(),
            BurnWindows {
                fast_ms: 5_000,
                slow_ms: 5_000,
                threshold: 2.0,
            },
        );
        let tsdb = Tsdb::new(1000, 600);
        let feed = |t: u64, hits: u64, misses: u64| {
            tsdb.record(
                t,
                &[
                    ("cache.hits".to_string(), hits),
                    ("cache.misses".to_string(), misses),
                ],
            );
        };
        feed(0, 0, 0);
        feed(5_000, 100, 900); // 90% miss rate vs 30% budget → burn 3.0
        let (st, _) = engine.evaluate(&tsdb, 5_000);
        assert!(st[0].firing, "{:?}", st[0]);
        assert!((st[0].fast_burn - 3.0).abs() < 1e-9);
    }
}
