//! Stage-occupancy profile aggregation.
//!
//! The profiler thread samples every live thread's current stage stack
//! (via `t2v_trace::sample_stacks`) and feeds folded stack strings here.
//! Counts are bucketed per wall-clock second so `/v1/admin/profile?seconds=N`
//! can merge exactly the trailing N seconds into flamegraph-compatible
//! folded text (`stage;stage;stage count` lines).

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

struct SecondBucket {
    sec: u64,
    counts: HashMap<String, u64>,
}

pub struct ProfileStore {
    retention_s: u64,
    inner: Mutex<VecDeque<SecondBucket>>,
}

impl ProfileStore {
    pub fn new(retention_s: u64) -> ProfileStore {
        ProfileStore {
            retention_s: retention_s.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Count one sample of `folded` (e.g. `"request;backend.translate;embed"`)
    /// at `now_ms`. Buckets older than the retention horizon are dropped
    /// on the way in, so memory stays bounded by retention × distinct
    /// stacks (and distinct stage stacks are few — stages are an enum).
    pub fn record(&self, now_ms: u64, folded: &str) {
        let sec = now_ms / 1000;
        let mut buckets = lock(&self.inner);
        match buckets.back_mut() {
            Some(b) if b.sec == sec => {
                *b.counts.entry(folded.to_string()).or_insert(0) += 1;
            }
            _ => {
                let mut counts = HashMap::new();
                counts.insert(folded.to_string(), 1);
                buckets.push_back(SecondBucket { sec, counts });
            }
        }
        let horizon = sec.saturating_sub(self.retention_s);
        while buckets.front().is_some_and(|b| b.sec < horizon) {
            buckets.pop_front();
        }
    }

    /// Total samples currently retained (all buckets).
    pub fn total_samples(&self) -> u64 {
        lock(&self.inner)
            .iter()
            .flat_map(|b| b.counts.values())
            .sum()
    }

    /// Merge the trailing `seconds` of buckets into folded text, heaviest
    /// stacks first (ties break alphabetically for stable output).
    pub fn render(&self, seconds: u64, now_ms: u64) -> String {
        let from_sec = (now_ms / 1000).saturating_sub(seconds.max(1).saturating_sub(1));
        let mut merged: HashMap<String, u64> = HashMap::new();
        for bucket in lock(&self.inner).iter() {
            if bucket.sec < from_sec {
                continue;
            }
            for (stack, n) in &bucket.counts {
                *merged.entry(stack.clone()).or_insert(0) += n;
            }
        }
        let mut rows: Vec<(String, u64)> = merged.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut out = String::new();
        for (stack, n) in rows {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&n.to_string());
            out.push('\n');
        }
        out
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_merges_window_and_sorts_by_weight() {
        let store = ProfileStore::new(60);
        for _ in 0..5 {
            store.record(1_000, "request;backend.translate;embed");
        }
        store.record(1_500, "request;cache.lookup");
        store.record(2_200, "request;backend.translate;embed");
        let text = store.render(5, 2_500);
        assert_eq!(
            text,
            "request;backend.translate;embed 6\nrequest;cache.lookup 1\n"
        );
        assert_eq!(store.total_samples(), 7);
    }

    #[test]
    fn render_excludes_samples_outside_the_window() {
        let store = ProfileStore::new(600);
        store.record(1_000, "request;old");
        store.record(10_000, "request;new");
        // seconds=1 at t=10s → only the bucket for second 10.
        assert_eq!(store.render(1, 10_000), "request;new 1\n");
        // Wide window picks up both.
        let wide = store.render(60, 10_000);
        assert!(wide.contains("request;old 1"));
        assert!(wide.contains("request;new 1"));
    }

    #[test]
    fn retention_prunes_old_buckets() {
        let store = ProfileStore::new(2);
        store.record(1_000, "request;a");
        store.record(2_000, "request;a");
        store.record(10_000, "request;b");
        assert_eq!(store.total_samples(), 1, "old buckets pruned on insert");
        assert_eq!(store.render(60, 10_000), "request;b 1\n");
    }
}
