//! In-process ring-buffer time-series store.
//!
//! One fixed-size ring per series of `(timestamp_ms, value)` pairs, where
//! the value is the *raw* cumulative counter (or gauge level) as sampled
//! from the metrics registry. Deltas and rates are computed at query time
//! from pairs of samples, so the store never needs to know which series
//! are counters — and a ring of N samples bounds memory per series at
//! exactly N `(u64, u64)` pairs regardless of uptime.

use std::collections::HashMap;
use std::sync::Mutex;

/// One series' fixed-capacity ring. `head` is the next write slot; once
/// full, new samples overwrite the oldest.
struct Ring {
    t_ms: Vec<u64>,
    vals: Vec<u64>,
    head: usize,
    len: usize,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            t_ms: vec![0; capacity],
            vals: vec![0; capacity],
            head: 0,
            len: 0,
        }
    }

    fn push(&mut self, t_ms: u64, val: u64) {
        let cap = self.t_ms.len();
        self.t_ms[self.head] = t_ms;
        self.vals[self.head] = val;
        self.head = (self.head + 1) % cap;
        self.len = (self.len + 1).min(cap);
    }

    /// Samples at or after `from_ms`, oldest first.
    fn window(&self, from_ms: u64) -> Vec<(u64, u64)> {
        let cap = self.t_ms.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len)
            .map(|i| {
                let idx = (start + i) % cap;
                (self.t_ms[idx], self.vals[idx])
            })
            .filter(|&(t, _)| t >= from_ms)
            .collect()
    }

    fn latest(&self) -> Option<(u64, u64)> {
        if self.len == 0 {
            return None;
        }
        let cap = self.t_ms.len();
        let idx = (self.head + cap - 1) % cap;
        Some((self.t_ms[idx], self.vals[idx]))
    }
}

/// The store: a map of named rings behind one mutex. The only writer is
/// the sampler thread (one lock per sweep); readers are admin queries and
/// SLO evaluations, far off any request hot path.
pub struct Tsdb {
    sample_ms: u64,
    retention_s: u64,
    capacity: usize,
    series: Mutex<HashMap<String, Ring>>,
}

impl Tsdb {
    /// `sample_ms` is the sweep cadence the sampler will use; `retention_s`
    /// sizes each ring so it holds that much history at that cadence.
    pub fn new(sample_ms: u64, retention_s: u64) -> Tsdb {
        let sample_ms = sample_ms.max(1);
        let capacity = (retention_s.saturating_mul(1000) / sample_ms).clamp(2, 1 << 20) as usize;
        Tsdb {
            sample_ms,
            retention_s,
            capacity,
            series: Mutex::new(HashMap::new()),
        }
    }

    pub fn sample_ms(&self) -> u64 {
        self.sample_ms
    }

    pub fn retention_s(&self) -> u64 {
        self.retention_s
    }

    /// Ring capacity per series (samples retained).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one sweep: every `(name, value)` gets a sample stamped
    /// `now_ms`. Unknown names create their ring on first sight.
    pub fn record(&self, now_ms: u64, samples: &[(String, u64)]) {
        let mut series = lock(&self.series);
        for (name, val) in samples {
            series
                .entry(name.clone())
                .or_insert_with(|| Ring::new(self.capacity))
                .push(now_ms, *val);
        }
    }

    /// Every series name, sorted (the `/v1/admin/tsdb` index).
    pub fn series_names(&self) -> Vec<String> {
        let mut names: Vec<String> = lock(&self.series).keys().cloned().collect();
        names.sort();
        names
    }

    /// Raw samples of `name` within the trailing window, oldest first,
    /// thinned so consecutive points are at least `step_ms` apart (the
    /// last sample is always kept).
    pub fn points(&self, name: &str, window_ms: u64, step_ms: u64, now_ms: u64) -> Vec<(u64, u64)> {
        let from = now_ms.saturating_sub(window_ms);
        let all = match lock(&self.series).get(name) {
            Some(ring) => ring.window(from),
            None => return Vec::new(),
        };
        if step_ms <= self.sample_ms || all.len() < 2 {
            return all;
        }
        let mut out: Vec<(u64, u64)> = Vec::new();
        let last = *all.last().expect("len >= 2");
        for p in all {
            match out.last() {
                Some(&(t, _)) if p.0 < t.saturating_add(step_ms) => {}
                _ => out.push(p),
            }
        }
        if out.last() != Some(&last) {
            out.push(last);
        }
        out
    }

    /// Counter increase over the trailing window: newest minus oldest
    /// sample in range. `None` without at least two samples. Saturating —
    /// in-process counters never reset, but a gauge queried as a delta
    /// must not underflow.
    pub fn delta(&self, name: &str, window_ms: u64, now_ms: u64) -> Option<u64> {
        let from = now_ms.saturating_sub(window_ms);
        let series = lock(&self.series);
        let pts = series.get(name)?.window(from);
        let (_, first) = *pts.first()?;
        let (_, last) = *pts.last()?;
        if pts.len() < 2 {
            return None;
        }
        Some(last.saturating_sub(first))
    }

    /// Per-second rate over the trailing window (counter semantics).
    pub fn rate(&self, name: &str, window_ms: u64, now_ms: u64) -> Option<f64> {
        let from = now_ms.saturating_sub(window_ms);
        let series = lock(&self.series);
        let pts = series.get(name)?.window(from);
        let (t0, v0) = *pts.first()?;
        let (t1, v1) = *pts.last()?;
        if pts.len() < 2 || t1 <= t0 {
            return None;
        }
        Some(v1.saturating_sub(v0) as f64 / ((t1 - t0) as f64 / 1000.0))
    }

    /// The newest sample of `name` (gauge read).
    pub fn latest(&self, name: &str) -> Option<(u64, u64)> {
        lock(&self.series).get(name)?.latest()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(tsdb: &Tsdb, name: &str, samples: &[(u64, u64)]) {
        for &(t, v) in samples {
            tsdb.record(t, &[(name.to_string(), v)]);
        }
    }

    #[test]
    fn capacity_derives_from_cadence_and_retention() {
        assert_eq!(Tsdb::new(1000, 900).capacity(), 900);
        assert_eq!(Tsdb::new(250, 60).capacity(), 240);
        assert_eq!(Tsdb::new(1000, 0).capacity(), 2, "floor of two samples");
    }

    #[test]
    fn delta_and_rate_use_window_endpoints() {
        let tsdb = Tsdb::new(1000, 60);
        fill(
            &tsdb,
            "reqs",
            &[(1_000, 10), (2_000, 30), (3_000, 60), (4_000, 100)],
        );
        // Full window: 100 - 10 over 3 s.
        assert_eq!(tsdb.delta("reqs", 60_000, 4_000), Some(90));
        assert_eq!(tsdb.rate("reqs", 60_000, 4_000), Some(30.0));
        // Trailing 2 s window sees only the last three samples.
        assert_eq!(tsdb.delta("reqs", 2_000, 4_000), Some(70));
        // One sample in range is not a delta.
        assert_eq!(tsdb.delta("reqs", 0, 4_000), None);
        assert_eq!(tsdb.delta("missing", 60_000, 4_000), None);
    }

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        let tsdb = Tsdb::new(1000, 3); // capacity 3
        fill(
            &tsdb,
            "c",
            &[(1_000, 1), (2_000, 2), (3_000, 3), (4_000, 4)],
        );
        let pts = tsdb.points("c", 60_000, 0, 4_000);
        assert_eq!(pts, vec![(2_000, 2), (3_000, 3), (4_000, 4)]);
        assert_eq!(tsdb.latest("c"), Some((4_000, 4)));
    }

    #[test]
    fn points_thin_to_step_and_keep_the_newest() {
        let tsdb = Tsdb::new(100, 60);
        let samples: Vec<(u64, u64)> = (0..10).map(|i| (i * 100, i)).collect();
        fill(&tsdb, "s", &samples);
        let pts = tsdb.points("s", 10_000, 300, 900);
        // Thinned to >= 300 ms apart, newest sample always present.
        assert_eq!(pts.first(), Some(&(0, 0)));
        assert_eq!(pts.last(), Some(&(900, 9)));
        for pair in pts.windows(2) {
            assert!(pair[1].0 - pair[0].0 >= 300 || pair[1] == (900, 9));
        }
    }

    #[test]
    fn gauge_delta_saturates_instead_of_underflowing() {
        let tsdb = Tsdb::new(1000, 60);
        fill(&tsdb, "g", &[(1_000, 50), (2_000, 10)]);
        assert_eq!(tsdb.delta("g", 60_000, 2_000), Some(0));
    }
}
