//! Paper-style table rendering and CSV output for experiment results.

use crate::harness::EvalRun;
use crate::metrics::Accuracies;
use std::fmt::Write as _;
use std::path::Path;

/// Render one of the paper's Tables 1-3: rows = models, columns = the four
/// metrics, with an optional `paper=` reference column for comparison.
pub fn render_table(title: &str, runs: &[&EvalRun], paper_reference: &[(&str, f64)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== {title} ==");
    let _ = writeln!(
        s,
        "{:<24} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "Model", "Vis Acc.", "Data Acc.", "Axis Acc.", "Acc.", "paper Acc."
    );
    for run in runs {
        let a = run.accuracies;
        let paper = paper_reference
            .iter()
            .find(|(m, _)| *m == run.model)
            .map(|(_, v)| format!("{v:>10.2}%"))
            .unwrap_or_else(|| format!("{:>11}", "-"));
        let _ = writeln!(
            s,
            "{:<24} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}% {}",
            run.model,
            a.vis * 100.0,
            a.data * 100.0,
            a.axis * 100.0,
            a.overall * 100.0,
            paper
        );
    }
    s
}

/// One row of an overall-accuracy table: label, per-column accuracies, and
/// optional paper reference values.
pub type OverallRow<'a> = (&'a str, Vec<Accuracies>, Option<Vec<f64>>);

/// Render an overall-accuracy-only table (the paper's Table 4 / Figure 3).
pub fn render_overall_table(title: &str, columns: &[&str], rows: &[OverallRow<'_>]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== {title} ==");
    let _ = write!(s, "{:<24}", "Model");
    for c in columns {
        let _ = write!(s, " {c:>24}");
    }
    let _ = writeln!(s);
    for (name, accs, paper) in rows {
        let _ = write!(s, "{name:<24}");
        for (i, a) in accs.iter().enumerate() {
            let p = paper
                .as_ref()
                .and_then(|p| p.get(i))
                .map(|v| format!(" (paper {v:.2})"))
                .unwrap_or_default();
            let cell = format!("{:.2}%{}", a.overall * 100.0, p);
            let _ = write!(s, " {cell:>24}");
        }
        let _ = writeln!(s);
    }
    s
}

/// Append rows to a CSV file under `results/` (creating the directory).
pub fn write_csv(path: &Path, header: &str, rows: &[String]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut body = String::from(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    std::fs::write(path, body)
}

/// CSV row for one evaluation run.
pub fn csv_row(run: &EvalRun) -> String {
    let a = run.accuracies;
    format!(
        "{},{},{},{:.4},{:.4},{:.4},{:.4}",
        run.model,
        run.variant.label().replace(',', "+"),
        a.n,
        a.vis,
        a.data,
        a.axis,
        a.overall
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2v_perturb::RobVariant;

    fn fake_run(model: &str, overall: f64) -> EvalRun {
        EvalRun {
            model: model.into(),
            variant: RobVariant::Both,
            accuracies: Accuracies {
                n: 10,
                vis: 0.9,
                data: overall,
                axis: overall,
                overall,
            },
            records: vec![],
        }
    }

    #[test]
    fn table_includes_paper_reference() {
        let a = fake_run("GRED", 0.55);
        let b = fake_run("RGVisNet", 0.25);
        let out = render_table(
            "nvBench-Rob(nlq,schema)",
            &[&b, &a],
            &[("GRED", 54.85), ("RGVisNet", 24.81)],
        );
        assert!(out.contains("GRED"));
        assert!(out.contains("54.85"));
        assert!(out.contains("55.00%"));
    }

    #[test]
    fn csv_row_is_well_formed() {
        let run = fake_run("GRED", 0.5);
        let row = csv_row(&run);
        assert_eq!(row.split(',').count(), 7);
        assert!(row.starts_with("GRED,"));
    }

    #[test]
    fn csv_file_roundtrip() {
        let dir = std::env::temp_dir().join("t2v_eval_test");
        let path = dir.join("out.csv");
        write_csv(&path, "a,b", &["1,2".into(), "3,4".into()]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overall_table_renders_columns() {
        let accs = vec![
            Accuracies {
                n: 5,
                vis: 1.0,
                data: 0.5,
                axis: 0.5,
                overall: 0.5,
            },
            Accuracies {
                n: 5,
                vis: 1.0,
                data: 0.4,
                axis: 0.4,
                overall: 0.4,
            },
        ];
        let out = render_overall_table(
            "Ablation",
            &["set-a", "set-b"],
            &[("GRED", accs, Some(vec![59.98, 61.93]))],
        );
        assert!(out.contains("set-a"));
        assert!(out.contains("50.00%"));
        assert!(out.contains("(paper 59.98)"));
    }
}
