//! Error analysis: accuracy broken down by query hardness and chart type.
//!
//! The paper reports aggregate numbers; this module supports the standard
//! follow-up analysis (which difficulty bucket / chart family drives the
//! collapse?) used by the `run_all` experiment notes in EXPERIMENTS.md.

use crate::metrics::{Accuracies, Tally};
use std::collections::BTreeMap;
use t2v_corpus::Corpus;
use t2v_dvq::ast::ChartType;
use t2v_dvq::hardness::Hardness;
use t2v_perturb::RobExample;

/// Accuracy per group key.
#[derive(Debug, Clone)]
pub struct Breakdown<K> {
    pub groups: Vec<(K, Accuracies)>,
}

impl<K: std::fmt::Debug> Breakdown<K> {
    pub fn render(&self, title: &str) -> String {
        let mut s = format!("-- {title} --\n");
        for (k, a) in &self.groups {
            s.push_str(&format!(
                "{:<20} n={:<5} overall {:>6.2}%  data {:>6.2}%\n",
                format!("{k:?}"),
                a.n,
                a.overall * 100.0,
                a.data * 100.0
            ));
        }
        s
    }
}

/// Group predictions by the hardness of the *source* dev example.
pub fn by_hardness(
    corpus: &Corpus,
    set: &[RobExample],
    predictions: &[Option<String>],
) -> Breakdown<Hardness> {
    let mut tallies: BTreeMap<Hardness, Tally> = BTreeMap::new();
    for (ex, p) in set.iter().zip(predictions.iter()) {
        let h = corpus.dev[ex.base].hardness;
        tallies
            .entry(h)
            .or_default()
            .add_text(p.as_deref(), &ex.target);
    }
    Breakdown {
        groups: tallies
            .into_iter()
            .map(|(k, t)| (k, t.accuracies()))
            .collect(),
    }
}

/// Group predictions by the target chart type.
pub fn by_chart(set: &[RobExample], predictions: &[Option<String>]) -> Breakdown<ChartType> {
    let mut tallies: BTreeMap<ChartType, Tally> = BTreeMap::new();
    for (ex, p) in set.iter().zip(predictions.iter()) {
        tallies
            .entry(ex.target.chart)
            .or_default()
            .add_text(p.as_deref(), &ex.target);
    }
    Breakdown {
        groups: tallies
            .into_iter()
            .map(|(k, t)| (k, t.accuracies()))
            .collect(),
    }
}

/// Classify what went wrong for each miss: which component broke first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ErrorProfile {
    pub total: usize,
    pub exact: usize,
    pub no_output: usize,
    pub unparseable: usize,
    pub vis_wrong: usize,
    pub axis_wrong: usize,
    pub data_wrong: usize,
    /// Components all matched but the style key differed.
    pub style_only: usize,
}

/// Build an [`ErrorProfile`] over one prediction set.
pub fn error_profile(set: &[RobExample], predictions: &[Option<String>]) -> ErrorProfile {
    let mut p = ErrorProfile::default();
    for (ex, pred) in set.iter().zip(predictions.iter()) {
        p.total += 1;
        let Some(text) = pred else {
            p.no_output += 1;
            continue;
        };
        let Ok(q) = t2v_dvq::parse(text) else {
            p.unparseable += 1;
            continue;
        };
        let m = t2v_dvq::components::ComponentMatch::grade(&q, &ex.target);
        if m.overall {
            p.exact += 1;
        } else if !m.vis {
            p.vis_wrong += 1;
        } else if !m.axis {
            p.axis_wrong += 1;
        } else if !m.data {
            p.data_wrong += 1;
        } else {
            p.style_only += 1;
        }
    }
    p
}

impl ErrorProfile {
    pub fn render(&self) -> String {
        format!(
            "n={} exact={} no-output={} unparseable={} vis={} axis={} data={} style-only={}",
            self.total,
            self.exact,
            self.no_output,
            self.unparseable,
            self.vis_wrong,
            self.axis_wrong,
            self.data_wrong,
            self.style_only
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2v_corpus::{generate, CorpusConfig};
    use t2v_perturb::build_rob;

    #[test]
    fn breakdowns_partition_the_set() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let rob = build_rob(&corpus, 1);
        let preds: Vec<Option<String>> = rob
            .original
            .iter()
            .map(|e| Some(e.target_text.clone()))
            .collect();
        let h = by_hardness(&corpus, &rob.original, &preds);
        let c = by_chart(&rob.original, &preds);
        let hn: usize = h.groups.iter().map(|(_, a)| a.n).sum();
        let cn: usize = c.groups.iter().map(|(_, a)| a.n).sum();
        assert_eq!(hn, rob.original.len());
        assert_eq!(cn, rob.original.len());
        assert!(h.groups.iter().all(|(_, a)| a.overall == 1.0));
    }

    #[test]
    fn error_profile_classifies_misses() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let rob = build_rob(&corpus, 1);
        let set = &rob.original[..4];
        let preds = vec![
            Some(set[0].target_text.clone()),                      // exact
            None,                                                  // no output
            Some("garbage".to_string()),                           // unparseable
            Some("Visualize PIE SELECT a , b FROM t".to_string()), // structural miss
        ];
        let p = error_profile(set, &preds);
        assert_eq!(p.total, 4);
        assert_eq!(p.exact, 1);
        assert_eq!(p.no_output, 1);
        assert_eq!(p.unparseable, 1);
        assert_eq!(p.exact + p.no_output + p.unparseable, 3);
        assert!(p.render().contains("n=4"));
    }

    #[test]
    fn render_is_humane() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let rob = build_rob(&corpus, 1);
        let preds: Vec<Option<String>> = rob.original.iter().map(|_| None).collect();
        let h = by_hardness(&corpus, &rob.original, &preds);
        let out = h.render("by hardness");
        assert!(out.contains("by hardness"));
        assert!(out.contains("0.00%"));
    }
}
