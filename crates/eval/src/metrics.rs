//! The four accuracy metrics of the paper (Appendix A): Vis, Data, Axis and
//! Overall accuracy.

use t2v_dvq::components::ComponentMatch;
use t2v_dvq::Dvq;

/// Aggregated accuracies over one test set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Accuracies {
    pub n: usize,
    pub vis: f64,
    pub data: f64,
    pub axis: f64,
    pub overall: f64,
}

impl Accuracies {
    /// Format like the paper's table cells.
    pub fn row(&self) -> String {
        format!(
            "{:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}%",
            self.vis * 100.0,
            self.data * 100.0,
            self.axis * 100.0,
            self.overall * 100.0
        )
    }
}

/// Running tally of component matches.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tally {
    pub n: usize,
    pub vis: usize,
    pub data: usize,
    pub axis: usize,
    pub overall: usize,
}

impl Tally {
    /// Grade one prediction. `None` (no output / unparseable) counts as a
    /// miss on every component, matching how the paper scores failures.
    pub fn add(&mut self, predicted: Option<&Dvq>, target: &Dvq) {
        self.n += 1;
        if let Some(p) = predicted {
            let m = ComponentMatch::grade(p, target);
            self.vis += m.vis as usize;
            self.data += m.data as usize;
            self.axis += m.axis as usize;
            self.overall += m.overall as usize;
        }
    }

    /// Grade a textual prediction (parse first).
    pub fn add_text(&mut self, predicted: Option<&str>, target: &Dvq) {
        let parsed = predicted.and_then(|t| t2v_dvq::parse(t).ok());
        self.add(parsed.as_ref(), target);
    }

    pub fn merge(&mut self, other: &Tally) {
        self.n += other.n;
        self.vis += other.vis;
        self.data += other.data;
        self.axis += other.axis;
        self.overall += other.overall;
    }

    pub fn accuracies(&self) -> Accuracies {
        let d = self.n.max(1) as f64;
        Accuracies {
            n: self.n,
            vis: self.vis as f64 / d,
            data: self.data as f64 / d,
            axis: self.axis as f64 / d,
            overall: self.overall as f64 / d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2v_dvq::parse;

    #[test]
    fn perfect_predictions_score_one() {
        let t = parse("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a").unwrap();
        let mut tally = Tally::default();
        tally.add(Some(&t), &t);
        let acc = tally.accuracies();
        assert_eq!(acc.overall, 1.0);
        assert_eq!(acc.vis, 1.0);
    }

    #[test]
    fn missing_prediction_scores_zero_everywhere() {
        let t = parse("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a").unwrap();
        let mut tally = Tally::default();
        tally.add(None, &t);
        let acc = tally.accuracies();
        assert_eq!(acc.overall, 0.0);
        assert_eq!(acc.vis, 0.0);
        assert_eq!(acc.n, 1);
    }

    #[test]
    fn component_credit_is_partial() {
        let t = parse("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a").unwrap();
        let p = parse("Visualize PIE SELECT a , COUNT(a) FROM t GROUP BY a").unwrap();
        let mut tally = Tally::default();
        tally.add(Some(&p), &t);
        let acc = tally.accuracies();
        assert_eq!(acc.vis, 0.0);
        assert_eq!(acc.axis, 1.0);
        assert_eq!(acc.data, 1.0);
        assert_eq!(acc.overall, 0.0);
    }

    #[test]
    fn add_text_parses_or_misses() {
        let t = parse("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a").unwrap();
        let mut tally = Tally::default();
        tally.add_text(Some("not a dvq"), &t);
        tally.add_text(
            Some("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a"),
            &t,
        );
        let acc = tally.accuracies();
        assert_eq!(acc.n, 2);
        assert_eq!(acc.overall, 0.5);
    }

    #[test]
    fn merge_combines_counts() {
        let t = parse("Visualize BAR SELECT a , b FROM t").unwrap();
        let mut a = Tally::default();
        a.add(Some(&t), &t);
        let mut b = Tally::default();
        b.add(None, &t);
        a.merge(&b);
        assert_eq!(a.n, 2);
        assert_eq!(a.accuracies().overall, 0.5);
    }

    #[test]
    fn row_formats_percentages() {
        let t = parse("Visualize BAR SELECT a , b FROM t").unwrap();
        let mut tally = Tally::default();
        tally.add(Some(&t), &t);
        assert!(tally.accuracies().row().contains("100.00%"));
    }
}
