//! Evaluation harness: run any text-to-vis model over an nvBench-Rob test
//! set and compute the paper's metrics.

use crate::metrics::{Accuracies, Tally};
use std::fmt;
use t2v_core::Translator;
use t2v_corpus::Corpus;
use t2v_perturb::{NvBenchRob, RobExample, RobVariant};

/// Per-example record kept for case studies and error analysis.
#[derive(Debug, Clone)]
pub struct PredictionRecord {
    pub base: usize,
    pub nlq: String,
    pub predicted: Option<String>,
    pub target: String,
    pub overall_match: bool,
}

/// Result of one (model, test set) evaluation.
#[derive(Debug, Clone)]
pub struct EvalRun {
    pub model: String,
    pub variant: RobVariant,
    pub accuracies: Accuracies,
    pub records: Vec<PredictionRecord>,
}

/// Recoverable evaluation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A cached prediction file did not line up with the test set (e.g. a
    /// truncated run left fewer rows than targets).
    LengthMismatch { predictions: usize, targets: usize },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::LengthMismatch {
                predictions,
                targets,
            } => write!(
                f,
                "prediction/target length mismatch: {predictions} predictions vs {targets} targets"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// Grade one prediction against its gold example.
fn grade(predicted: Option<String>, ex: &RobExample) -> (Option<t2v_dvq::Dvq>, PredictionRecord) {
    let parsed = predicted.as_deref().and_then(|t| t2v_dvq::parse(t).ok());
    let overall = parsed
        .as_ref()
        .map(|p| t2v_dvq::components::ComponentMatch::grade(p, &ex.target).overall)
        .unwrap_or(false);
    let record = PredictionRecord {
        base: ex.base,
        nlq: ex.nlq.clone(),
        predicted,
        target: ex.target_text.clone(),
        overall_match: overall,
    };
    (parsed, record)
}

/// Fold graded examples into an [`EvalRun`] (input order preserved).
fn collect_run(
    model: String,
    variant: RobVariant,
    graded: Vec<(Option<t2v_dvq::Dvq>, PredictionRecord)>,
    set: &[RobExample],
) -> EvalRun {
    let mut tally = Tally::default();
    let mut records = Vec::with_capacity(graded.len());
    for ((parsed, record), ex) in graded.into_iter().zip(set) {
        tally.add(parsed.as_ref(), &ex.target);
        records.push(record);
    }
    EvalRun {
        model,
        variant,
        accuracies: tally.accuracies(),
        records,
    }
}

/// Evaluate a backend on one variant's test set.
///
/// Any [`Translator`] works — `Gred`, a baseline, or an ad-hoc
/// [`t2v_core::FnBackend`]; predictions are the final DVQ of a successful
/// translation (`None` on any [`t2v_core::TranslateError`]).
pub fn evaluate_set(
    model: &dyn Translator,
    corpus: &Corpus,
    rob: &NvBenchRob,
    variant: RobVariant,
    limit: Option<usize>,
) -> EvalRun {
    let set = rob.set(variant);
    let n = limit.unwrap_or(set.len()).min(set.len());
    let graded = set[..n]
        .iter()
        .map(|ex| grade(model.predict(&ex.nlq, rob.database(corpus, ex)), ex))
        .collect();
    collect_run(model.info().name, variant, graded, &set[..n])
}

/// [`evaluate_set`] with predictions fanned across threads.
///
/// Records and tallies are produced in test-set order regardless of thread
/// scheduling, so the result is identical to the sequential harness for any
/// deterministic model. ([`Translator`] is `Send + Sync` by contract, so
/// any backend fans out.)
pub fn evaluate_set_parallel(
    model: &dyn Translator,
    corpus: &Corpus,
    rob: &NvBenchRob,
    variant: RobVariant,
    limit: Option<usize>,
) -> EvalRun {
    let set = rob.set(variant);
    let n = limit.unwrap_or(set.len()).min(set.len());
    let graded = t2v_parallel::par_map(&set[..n], |ex| {
        grade(model.predict(&ex.nlq, rob.database(corpus, ex)), ex)
    });
    collect_run(model.info().name, variant, graded, &set[..n])
}

/// Evaluate a model from pre-computed predictions (used when predictions are
/// cached on disk between experiment binaries).
///
/// Returns [`EvalError::LengthMismatch`] instead of panicking when a cached
/// prediction file has been truncated or padded relative to the test set.
pub fn evaluate_predictions(
    model_name: &str,
    variant: RobVariant,
    predictions: &[Option<String>],
    set: &[RobExample],
) -> Result<EvalRun, EvalError> {
    if predictions.len() != set.len() {
        return Err(EvalError::LengthMismatch {
            predictions: predictions.len(),
            targets: set.len(),
        });
    }
    let graded = predictions
        .iter()
        .zip(set)
        .map(|(p, ex)| grade(p.clone(), ex))
        .collect();
    Ok(collect_run(model_name.to_string(), variant, graded, set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2v_core::FnBackend;
    use t2v_corpus::{generate, CorpusConfig, Database};
    use t2v_perturb::build_rob;

    /// An oracle that always answers with the gold DVQ.
    fn oracle(rob: &NvBenchRob, variant: RobVariant) -> impl Translator + '_ {
        FnBackend::new("oracle", move |nlq: &str, _db: &Database| {
            rob.set(variant)
                .iter()
                .find(|e| e.nlq == nlq)
                .map(|e| e.target_text.clone())
        })
    }

    /// A model that always fails.
    fn mute() -> impl Translator {
        FnBackend::new("mute", |_: &str, _: &Database| None)
    }

    #[test]
    fn oracle_scores_hundred_percent() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let rob = build_rob(&corpus, 1);
        let oracle = oracle(&rob, RobVariant::Both);
        let run = evaluate_set(&oracle, &corpus, &rob, RobVariant::Both, Some(25));
        assert_eq!(run.accuracies.overall, 1.0);
        assert_eq!(run.accuracies.n, 25);
    }

    #[test]
    fn mute_scores_zero() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let rob = build_rob(&corpus, 1);
        let run = evaluate_set(&mute(), &corpus, &rob, RobVariant::Nlq, Some(10));
        assert_eq!(run.accuracies.overall, 0.0);
        assert_eq!(run.records.len(), 10);
        assert!(run.records.iter().all(|r| !r.overall_match));
    }

    #[test]
    fn cached_predictions_match_live_run() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let rob = build_rob(&corpus, 1);
        let set = &rob.set(RobVariant::Schema)[..10];
        let preds: Vec<Option<String>> = set.iter().map(|e| Some(e.target_text.clone())).collect();
        let run = evaluate_predictions("cached", RobVariant::Schema, &preds, set).unwrap();
        assert_eq!(run.accuracies.overall, 1.0);
    }

    #[test]
    fn truncated_prediction_file_fails_gracefully() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let rob = build_rob(&corpus, 1);
        let set = &rob.set(RobVariant::Schema)[..10];
        let preds: Vec<Option<String>> = set
            .iter()
            .take(6)
            .map(|e| Some(e.target_text.clone()))
            .collect();
        let err = evaluate_predictions("cached", RobVariant::Schema, &preds, set).unwrap_err();
        assert_eq!(
            err,
            EvalError::LengthMismatch {
                predictions: 6,
                targets: 10
            }
        );
        assert!(err.to_string().contains("length mismatch"));
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let rob = build_rob(&corpus, 1);
        let oracle = oracle(&rob, RobVariant::Nlq);
        let seq = evaluate_set(&oracle, &corpus, &rob, RobVariant::Nlq, Some(30));
        let par = evaluate_set_parallel(&oracle, &corpus, &rob, RobVariant::Nlq, Some(30));
        assert_eq!(seq.accuracies, par.accuracies);
        assert_eq!(seq.records.len(), par.records.len());
        for (a, b) in seq.records.iter().zip(&par.records) {
            assert_eq!(a.base, b.base);
            assert_eq!(a.predicted, b.predicted);
            assert_eq!(a.overall_match, b.overall_match);
        }
    }
}
