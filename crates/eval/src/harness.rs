//! Evaluation harness: run any text-to-vis model over an nvBench-Rob test
//! set and compute the paper's metrics.

use crate::metrics::{Accuracies, Tally};
use t2v_corpus::{Corpus, Database};
use t2v_perturb::{NvBenchRob, RobExample, RobVariant};

/// A text-to-vis system under evaluation: NLQ + database → DVQ text.
pub trait Text2VisModel {
    fn name(&self) -> &str;

    /// Translate; `None` means the model produced no usable output.
    fn predict(&self, nlq: &str, db: &Database) -> Option<String>;
}

/// Per-example record kept for case studies and error analysis.
#[derive(Debug, Clone)]
pub struct PredictionRecord {
    pub base: usize,
    pub nlq: String,
    pub predicted: Option<String>,
    pub target: String,
    pub overall_match: bool,
}

/// Result of one (model, test set) evaluation.
#[derive(Debug, Clone)]
pub struct EvalRun {
    pub model: String,
    pub variant: RobVariant,
    pub accuracies: Accuracies,
    pub records: Vec<PredictionRecord>,
}

/// Evaluate `model` on one variant's test set.
pub fn evaluate_set(
    model: &dyn Text2VisModel,
    corpus: &Corpus,
    rob: &NvBenchRob,
    variant: RobVariant,
    limit: Option<usize>,
) -> EvalRun {
    let set = rob.set(variant);
    let n = limit.unwrap_or(set.len()).min(set.len());
    let mut tally = Tally::default();
    let mut records = Vec::with_capacity(n);
    for ex in &set[..n] {
        let db = rob.database(corpus, ex);
        let predicted = model.predict(&ex.nlq, db);
        let parsed = predicted.as_deref().and_then(|t| t2v_dvq::parse(t).ok());
        let overall = parsed
            .as_ref()
            .map(|p| t2v_dvq::components::ComponentMatch::grade(p, &ex.target).overall)
            .unwrap_or(false);
        tally.add(parsed.as_ref(), &ex.target);
        records.push(PredictionRecord {
            base: ex.base,
            nlq: ex.nlq.clone(),
            predicted,
            target: ex.target_text.clone(),
            overall_match: overall,
        });
    }
    EvalRun {
        model: model.name().to_string(),
        variant,
        accuracies: tally.accuracies(),
        records,
    }
}

/// Evaluate a model from pre-computed predictions (used when predictions are
/// cached on disk between experiment binaries).
pub fn evaluate_predictions(
    model_name: &str,
    variant: RobVariant,
    predictions: &[Option<String>],
    set: &[RobExample],
) -> EvalRun {
    assert_eq!(predictions.len(), set.len(), "prediction/target length mismatch");
    let mut tally = Tally::default();
    let mut records = Vec::with_capacity(set.len());
    for (p, ex) in predictions.iter().zip(set.iter()) {
        let parsed = p.as_deref().and_then(|t| t2v_dvq::parse(t).ok());
        let overall = parsed
            .as_ref()
            .map(|q| t2v_dvq::components::ComponentMatch::grade(q, &ex.target).overall)
            .unwrap_or(false);
        tally.add(parsed.as_ref(), &ex.target);
        records.push(PredictionRecord {
            base: ex.base,
            nlq: ex.nlq.clone(),
            predicted: p.clone(),
            target: ex.target_text.clone(),
            overall_match: overall,
        });
    }
    EvalRun {
        model: model_name.to_string(),
        variant,
        accuracies: tally.accuracies(),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2v_corpus::{generate, CorpusConfig};
    use t2v_perturb::build_rob;

    /// An oracle that always answers with the gold DVQ.
    struct Oracle<'a> {
        rob: &'a NvBenchRob,
        variant: RobVariant,
    }

    impl<'a> Text2VisModel for Oracle<'a> {
        fn name(&self) -> &str {
            "oracle"
        }
        fn predict(&self, nlq: &str, _db: &Database) -> Option<String> {
            self.rob
                .set(self.variant)
                .iter()
                .find(|e| e.nlq == nlq)
                .map(|e| e.target_text.clone())
        }
    }

    /// A model that always fails.
    struct Mute;

    impl Text2VisModel for Mute {
        fn name(&self) -> &str {
            "mute"
        }
        fn predict(&self, _nlq: &str, _db: &Database) -> Option<String> {
            None
        }
    }

    #[test]
    fn oracle_scores_hundred_percent() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let rob = build_rob(&corpus, 1);
        let oracle = Oracle {
            rob: &rob,
            variant: RobVariant::Both,
        };
        let run = evaluate_set(&oracle, &corpus, &rob, RobVariant::Both, Some(25));
        assert_eq!(run.accuracies.overall, 1.0);
        assert_eq!(run.accuracies.n, 25);
    }

    #[test]
    fn mute_scores_zero() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let rob = build_rob(&corpus, 1);
        let run = evaluate_set(&Mute, &corpus, &rob, RobVariant::Nlq, Some(10));
        assert_eq!(run.accuracies.overall, 0.0);
        assert_eq!(run.records.len(), 10);
        assert!(run.records.iter().all(|r| !r.overall_match));
    }

    #[test]
    fn cached_predictions_match_live_run() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let rob = build_rob(&corpus, 1);
        let set = &rob.set(RobVariant::Schema)[..10];
        let preds: Vec<Option<String>> = set.iter().map(|e| Some(e.target_text.clone())).collect();
        let run = evaluate_predictions("cached", RobVariant::Schema, &preds, set);
        assert_eq!(run.accuracies.overall, 1.0);
    }
}
