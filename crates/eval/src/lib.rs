//! # t2v-eval — metrics and evaluation harness
//!
//! Implements the paper's four metrics (Appendix A): **Vis Accuracy** (chart
//! type), **Axis Accuracy** (x/y expressions + axis sorting), **Data
//! Accuracy** (tables, joins, filters, grouping, binning, limits — style
//! sensitive) and **Overall Accuracy** (exact match). Every evaluated
//! system implements the [`t2v_core::Translator`] backend trait (the former
//! eval-only `Text2VisModel` trait is retired in its favour); the harness
//! consumes `&dyn Translator`, so the same backend objects serve traffic,
//! run benches, and get graded. Plus paper-style table/CSV reporting.

pub mod breakdown;
pub mod harness;
pub mod metrics;
pub mod report;

pub use breakdown::{by_chart, by_hardness, error_profile, Breakdown, ErrorProfile};
pub use harness::{
    evaluate_predictions, evaluate_set, evaluate_set_parallel, EvalError, EvalRun, PredictionRecord,
};
// Re-exported so downstream crates can name the backend API through eval.
pub use metrics::{Accuracies, Tally};
pub use report::{csv_row, render_overall_table, render_table, write_csv};
pub use t2v_core::{TranslateRequest, TranslateResponse, Translator};
