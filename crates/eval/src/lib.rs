//! # t2v-eval — metrics and evaluation harness
//!
//! Implements the paper's four metrics (Appendix A): **Vis Accuracy** (chart
//! type), **Axis Accuracy** (x/y expressions + axis sorting), **Data
//! Accuracy** (tables, joins, filters, grouping, binning, limits — style
//! sensitive) and **Overall Accuracy** (exact match). Plus the
//! [`harness::Text2VisModel`] trait every evaluated system implements, and
//! paper-style table/CSV reporting.

pub mod breakdown;
pub mod harness;
pub mod metrics;
pub mod report;

pub use breakdown::{by_chart, by_hardness, error_profile, Breakdown, ErrorProfile};
pub use harness::{
    evaluate_predictions, evaluate_set, evaluate_set_parallel, EvalError, EvalRun,
    PredictionRecord, Text2VisModel,
};
pub use metrics::{Accuracies, Tally};
pub use report::{csv_row, render_overall_table, render_table, write_csv};
