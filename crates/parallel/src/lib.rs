//! # t2v-parallel — deterministic data-parallel primitives
//!
//! The workspace cannot fetch rayon offline, so the hot paths that want
//! fan-out (library build, batch retrieval, parallel evaluation, index scans)
//! use this small substitute built on `std::thread::scope`.
//!
//! Guarantees:
//!
//! * **Deterministic output order** — results are returned in input order
//!   regardless of thread scheduling, so parallel and sequential runs are
//!   byte-identical for pure `f`.
//! * **Contiguous chunking** — each worker owns one contiguous slice of the
//!   input, which keeps per-item overhead at one index addition and plays
//!   well with prefetching.
//! * **No pool** — threads are spawned per call and joined before return.
//!   Fan-out is only worth it for coarse work; callers gate on input size
//!   (see `PAR_THRESHOLD` constants at the call sites).

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Number of worker threads to use: `available_parallelism`, overridable with
/// the `T2V_THREADS` environment variable (0 or unset ⇒ auto). Resolved once
/// per process — this sits on the retrieval hot path, and the override is a
/// launch-time knob.
pub fn thread_count() -> usize {
    static COUNT: OnceLock<usize> = OnceLock::new();
    *COUNT.get_or_init(|| {
        if let Ok(v) = std::env::var("T2V_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Parallel map over a slice, preserving input order.
///
/// Spawns at most `thread_count()` workers, each mapping one contiguous chunk.
/// Falls back to a plain sequential map when the input is small or only one
/// worker is available.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// [`par_map`] with an explicit worker count. Output is a pure function of
/// `(items, f)` — never of `threads` — so callers needing bit-identical
/// results at any parallelism (deterministic k-means, tests) use this with
/// order-sensitive folding on their side.
pub fn par_map_in<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed_in(threads, items, |_, item| f(item))
}

/// Like [`par_map`], but the mapper also receives the item's input index.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_in(thread_count(), items, f)
}

/// [`par_map_indexed`] with an explicit worker count.
pub fn par_map_indexed_in<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len().max(1));
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let chunk = items.len().div_ceil(threads);
    let mut results: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let f = &f;
                scope.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(i, x)| f(ci * chunk + i, x))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut out = Vec::with_capacity(items.len());
    for part in results.iter_mut() {
        out.append(part);
    }
    out
}

/// Parallel map-reduce over contiguous chunks of `items`.
///
/// `map` runs once per chunk (receiving the chunk's start offset and slice);
/// `reduce` folds the per-chunk results **in chunk order**, so any
/// order-sensitive reduction (e.g. tie-breaking by index) stays deterministic.
///
/// Every chunk boundary falls on a multiple of `granularity` — callers
/// slicing a flat row-major buffer pass their row stride so no row is ever
/// split across workers. (The final chunk's *length* is only a multiple of
/// `granularity` if `items.len()` is, which holds for stride-aligned data.)
pub fn par_chunk_reduce<T, A, M, R>(
    items: &[T],
    min_chunk: usize,
    granularity: usize,
    map: M,
    reduce: R,
) -> Option<A>
where
    T: Sync,
    A: Send,
    M: Fn(usize, &[T]) -> A + Sync,
    R: Fn(A, A) -> A,
{
    par_chunk_reduce_in(thread_count(), items, min_chunk, granularity, map, reduce)
}

/// [`par_chunk_reduce`] with an explicit worker count (exposed so tests can
/// exercise multi-threaded chunking regardless of the host's CPU count).
pub fn par_chunk_reduce_in<T, A, M, R>(
    threads: usize,
    items: &[T],
    min_chunk: usize,
    granularity: usize,
    map: M,
    reduce: R,
) -> Option<A>
where
    T: Sync,
    A: Send,
    M: Fn(usize, &[T]) -> A + Sync,
    R: Fn(A, A) -> A,
{
    if items.is_empty() {
        return None;
    }
    let g = granularity.max(1);
    let chunk = items
        .len()
        .div_ceil(threads.max(1))
        .max(min_chunk.max(1))
        .div_ceil(g)
        * g;
    if chunk >= items.len() {
        return Some(map(0, items));
    }

    let parts: Vec<A> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let map = &map;
                scope.spawn(move || map(ci * chunk, slice))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    parts.into_iter().reduce(reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..10_000).collect();
        let out = par_map(&items, |&x| x * 3);
        assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_indexed_passes_true_indices() {
        let items = vec![7u64; 5_000];
        let out = par_map_indexed(&items, |i, &x| i as u64 + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 + 7);
        }
    }

    #[test]
    fn par_map_handles_tiny_inputs() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn chunk_reduce_matches_sequential_sum() {
        let items: Vec<u64> = (0..100_000).collect();
        let total = par_chunk_reduce(
            &items,
            1024,
            1,
            |_, chunk| chunk.iter().sum::<u64>(),
            |a, b| a + b,
        )
        .unwrap();
        assert_eq!(total, items.iter().sum::<u64>());
    }

    #[test]
    fn chunk_reduce_offsets_are_global() {
        let items = vec![1u64; 50_000];
        // Reconstruct "index of last item" via offsets to prove they're global.
        let max_idx = par_chunk_reduce(
            &items,
            100,
            1,
            |start, chunk| start + chunk.len() - 1,
            std::cmp::max,
        )
        .unwrap();
        assert_eq!(max_idx, items.len() - 1);
    }

    #[test]
    fn chunk_reduce_empty_is_none() {
        let out = par_chunk_reduce(&[] as &[u8], 1, 1, |_, _| 0u8, |a, _| a);
        assert!(out.is_none());
    }

    #[test]
    fn chunk_boundaries_respect_granularity() {
        // Row-major layout: 1000 rows of stride 12, 3 workers. Without
        // granularity rounding the chunk size (4000) is not a multiple of 12
        // and rows would be split across workers.
        let dims = 12usize;
        let rows = 1000usize;
        let items: Vec<u64> = (0..rows * dims).map(|i| i as u64).collect();
        let row_sums = par_chunk_reduce_in(
            3,
            &items,
            1,
            dims,
            |offset, chunk| {
                assert_eq!(offset % dims, 0, "chunk must start on a row boundary");
                assert_eq!(chunk.len() % dims, 0, "chunk must hold whole rows");
                chunk
                    .chunks_exact(dims)
                    .enumerate()
                    .map(|(r, row)| (offset / dims + r, row.iter().sum::<u64>()))
                    .collect::<Vec<_>>()
            },
            |mut a, b| {
                a.extend(b);
                a
            },
        )
        .unwrap();
        assert_eq!(row_sums.len(), rows);
        for (r, (id, sum)) in row_sums.iter().enumerate() {
            assert_eq!(*id, r, "row ids must be global and in order");
            let expect: u64 = ((r * dims)..(r + 1) * dims).map(|i| i as u64).sum();
            assert_eq!(*sum, expect);
        }
    }

    #[test]
    fn par_map_in_is_thread_count_independent() {
        let items: Vec<f64> = (0..10_001).map(|i| (i as f64).sin()).collect();
        let base = par_map_in(1, &items, |&x| x * 1.000001 + 0.5);
        for threads in [2, 3, 8, 64] {
            assert_eq!(
                par_map_in(threads, &items, |&x| x * 1.000001 + 0.5),
                base,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn chunk_reduce_in_matches_any_thread_count() {
        let items: Vec<u64> = (0..12_345).collect();
        let expect: u64 = items.iter().sum();
        for threads in [1, 2, 3, 7, 16] {
            let total = par_chunk_reduce_in(
                threads,
                &items,
                1,
                1,
                |_, chunk| chunk.iter().sum::<u64>(),
                |a, b| a + b,
            )
            .unwrap();
            assert_eq!(total, expect, "threads={threads}");
        }
    }
}
