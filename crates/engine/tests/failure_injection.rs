//! Failure-injection tests: the executor must fail *gracefully* (typed
//! errors, no panics) on every malformed query we can construct — this is
//! the "no chart" behaviour of the paper's Figure 1, and it must be a
//! recoverable error, never a crash.

use t2v_corpus::{generate, CorpusConfig};
use t2v_engine::{execute, ExecError, Store};

fn fixture() -> (t2v_corpus::Corpus, Store) {
    let corpus = generate(&CorpusConfig::tiny(7));
    let store = Store::synthesize(&corpus.databases[0], 1, 20);
    (corpus, store)
}

#[test]
fn unknown_identifiers_yield_typed_errors() {
    let (corpus, store) = fixture();
    let table = corpus.databases[0].tables[0].name.clone();
    let cases = [
        (
            format!("Visualize BAR SELECT nope_col , COUNT(nope_col) FROM {table} GROUP BY nope_col"),
            "column",
        ),
        (
            "Visualize BAR SELECT a , b FROM totally_missing_table".to_string(),
            "table",
        ),
        (
            format!("Visualize BAR SELECT ghost , COUNT(ghost) FROM {table} WHERE ghost > 1 GROUP BY ghost"),
            "column",
        ),
    ];
    for (text, kind) in cases {
        let q = t2v_dvq::parse(&text).unwrap();
        match execute(&q, &store) {
            Err(ExecError::UnknownColumn(_)) => assert_eq!(kind, "column", "{text}"),
            Err(ExecError::UnknownTable(_)) => assert_eq!(kind, "table", "{text}"),
            other => panic!("expected typed failure for {text}, got {other:?}"),
        }
    }
}

#[test]
fn perturbed_stale_queries_fail_like_the_paper() {
    // The canonical paper failure: run the ORIGINAL target against the
    // RENAMED database. If the rename touched its columns it must produce
    // UnknownColumn/UnknownTable — never a panic, never silent success with
    // wrong data.
    let corpus = generate(&CorpusConfig::tiny(7));
    let rob = t2v_perturb::build_rob(&corpus, 5);
    let mut failed = 0;
    let mut total = 0;
    for (o, s) in rob.original.iter().zip(rob.schema.iter()).take(60) {
        if o.target_text == s.target_text {
            continue; // rename did not touch this query
        }
        total += 1;
        let renamed_db = &rob.renamed[s.db];
        let store = Store::synthesize(renamed_db, 1, 10);
        match execute(&o.target, &store) {
            Err(ExecError::UnknownColumn(_)) | Err(ExecError::UnknownTable(_)) => failed += 1,
            Ok(_) => {} // possible when only *other* tables were renamed
            Err(e) => panic!("unexpected error class: {e}"),
        }
    }
    assert!(
        failed * 10 >= total * 8,
        "stale queries should mostly fail on renamed schemas: {failed}/{total}"
    );
}

#[test]
fn empty_store_is_not_an_error() {
    let (corpus, _) = fixture();
    let db = &corpus.databases[0];
    let empty = Store::synthesize(db, 1, 0);
    let table = &db.tables[0];
    let col = &table.columns[1].name;
    let q = t2v_dvq::parse(&format!(
        "Visualize BAR SELECT {col} , COUNT({col}) FROM {} GROUP BY {col}",
        table.name
    ))
    .unwrap();
    let rs = execute(&q, &empty).unwrap();
    assert!(rs.points.is_empty());
}

#[test]
fn scalar_subquery_with_no_match_is_a_typed_error() {
    let (corpus, store) = fixture();
    let db = &corpus.databases[0];
    // Find an FK to build a syntactically valid subquery with an impossible
    // filter value.
    let Some(fk) = db.foreign_keys.first() else {
        return;
    };
    let from = &db.tables[fk.from_table];
    let to = &db.tables[fk.to_table];
    let text_col = to
        .columns
        .iter()
        .find(|c| c.ctype == t2v_corpus::ColType::Text);
    let Some(text_col) = text_col else { return };
    let q = t2v_dvq::parse(&format!(
        "Visualize BAR SELECT {c} , COUNT({c}) FROM {f} WHERE {fkc} = \
         (SELECT {key} FROM {t} WHERE {tc} = 'no_such_value_anywhere') GROUP BY {c}",
        c = from.columns[1].name,
        f = from.name,
        fkc = from.columns[fk.from_column].name,
        key = to.columns[fk.to_column].name,
        t = to.name,
        tc = text_col.name,
    ))
    .unwrap();
    match execute(&q, &store) {
        Err(ExecError::EmptySubquery(_)) => {}
        other => panic!("expected EmptySubquery, got {other:?}"),
    }
}

#[test]
fn every_generated_query_never_panics_even_on_wrong_store() {
    // Cross-execute queries against a *different* database's store: any
    // result is acceptable except a panic or a non-typed error.
    let corpus = generate(&CorpusConfig::tiny(7));
    let store = Store::synthesize(&corpus.databases[1], 2, 12);
    for ex in corpus.dev.iter().take(60) {
        let _ = execute(&ex.dvq, &store);
    }
}
