//! Minimal JSON value, writer, and parser (avoids pulling `serde_json`
//! through the offline mirror). The writer feeds Vega-Lite spec emission;
//! the parser feeds the serving layer (`t2v-serve` request bodies) and the
//! bench tooling that merges sections into `BENCH_perf.json`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use a `BTreeMap` so output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serialise with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Serialise without whitespace — the wire format for service responses.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact_into(&mut out);
        out
    }

    /// Append the compact serialisation to `out`.
    pub fn write_compact_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Strict on structure (one top-level value, no
    /// trailing garbage, RFC 8259 numbers, nesting capped at
    /// [`MAX_PARSE_DEPTH`] so network input can't blow the stack), tolerant
    /// on whitespace. Errors carry the byte offset so the server can report
    /// *where* a request body broke.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// In-place object field insertion; turns non-objects into objects.
    /// Used by the bench tooling to merge a section into an existing report.
    pub fn set(&mut self, key: &str, value: Json) {
        if !matches!(self, Json::Obj(_)) {
            *self = Json::Obj(BTreeMap::new());
        }
        if let Json::Obj(map) = self {
            map.insert(key.to_string(), value);
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

/// Parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Nesting limit for [`Json::parse`]: the parser recurses once per level,
/// and parse input includes network request bodies, so depth is bounded to
/// keep a pathological `[[[[…` from overflowing the thread stack.
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::object),
            Some(b'[') => self.nested(Parser::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn nested(&mut self, f: fn(&mut Self) -> Result<Json, JsonError>) -> Result<Json, JsonError> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        let out = f(self);
        self.depth -= 1;
        out
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` holding the low half.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so boundaries
                    // are valid; step to the next char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    /// RFC 8259 number grammar, enforced here rather than delegated to
    /// `f64::from_str` (which is laxer: it accepts `01`, `1.`, `.5`).
    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // int = "0" / digit1-9 *DIGIT
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        // frac = "." 1*DIGIT
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !self.digits() {
                return Err(self.err("invalid number: digits required after '.'"));
            }
        }
        // exp = ("e"/"E") ["+"/"-"] 1*DIGIT
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.digits() {
                return Err(self.err("invalid number: digits required in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    /// Consume a run of digits; `true` if at least one was present.
    fn digits(&mut self) -> bool {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos > start
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj([
            ("mark", Json::str("bar")),
            (
                "encoding",
                Json::obj([("x", Json::obj([("field", Json::str("HIRE_DATE"))]))]),
            ),
        ]);
        let s = j.pretty();
        assert!(s.contains("\"mark\": \"bar\""));
        assert!(s.contains("\"field\": \"HIRE_DATE\""));
    }

    #[test]
    fn escapes_special_characters() {
        let s = Json::str("a\"b\\c\nd").pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn numbers_render_integers_cleanly() {
        assert_eq!(Json::Num(40.0).pretty(), "40");
        assert_eq!(Json::Num(1.25).pretty(), "1.25");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(Default::default()).pretty(), "{}");
    }

    #[test]
    fn parses_nested_document() {
        let j = Json::parse(
            r#"{"nlq": "show wages", "db": "hr_1", "vegalite": true,
                "k": 10, "weights": [1, -2.5, 3e2], "none": null}"#,
        )
        .unwrap();
        assert_eq!(j.get("nlq").and_then(Json::as_str), Some("show wages"));
        assert_eq!(j.get("vegalite").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("k").and_then(Json::as_f64), Some(10.0));
        let w = j.get("weights").and_then(Json::as_arr).unwrap();
        assert_eq!(w[2].as_f64(), Some(300.0));
        assert_eq!(j.get("none"), Some(&Json::Null));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn compact_output_parses_back_and_has_no_padding() {
        let j = Json::obj([
            ("a", Json::Arr(vec![Json::Num(1.0), Json::str("x y")])),
            ("b", Json::obj([("c", Json::Null)])),
        ]);
        let s = j.compact();
        assert_eq!(s, "{\"a\":[1,\"x y\"],\"b\":{\"c\":null}}");
        assert_eq!(Json::parse(&s).unwrap(), j);
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let j = Json::obj([
            ("mark", Json::str("bar\n\"quoted\" \\slash\\ ünïcode")),
            (
                "encoding",
                Json::obj([
                    ("x", Json::Arr(vec![Json::Num(1.5), Json::Bool(false)])),
                    ("y", Json::Null),
                ]),
            ),
        ]);
        assert_eq!(Json::parse(&j.pretty()).unwrap(), j);
    }

    #[test]
    fn parses_escapes_and_surrogate_pairs() {
        let j = Json::parse(r#""a\tA😀""#).unwrap();
        assert_eq!(j.as_str(), Some("a\tA😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} trailing",
            "\"unterminated",
            "nul",
            "01a",
            "{\"a\" 1}",
            r#""\ud800""#,
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_non_rfc8259_numbers() {
        for bad in ["01", "1.", ".5", "-", "1e", "1e+", "+1", "0x10", "[1.e5]"] {
            assert!(Json::parse(bad).is_err(), "should reject number {bad:?}");
        }
        for good in ["0", "-0", "0.5", "10.25", "1e9", "1E-3", "-2.5e+2"] {
            assert!(Json::parse(good).is_ok(), "should accept number {good:?}");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        // Well past any sane document, well under any thread's stack: the
        // depth cap must turn this into a parse error, not an abort.
        let hostile = "[".repeat(60_000);
        let err = Json::parse(&hostile).unwrap_err();
        assert!(err.message.contains("nesting too deep"), "{err}");
        // A document exactly at the cap still parses.
        let deep = format!("{}1{}", "[".repeat(128), "]".repeat(128));
        Json::parse(&deep).unwrap();
        let too_deep = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        assert!(Json::parse(&too_deep).is_err());
    }

    #[test]
    fn set_inserts_and_replaces_fields() {
        let mut j = Json::parse("{\"a\": 1}").unwrap();
        j.set("serving", Json::obj([("rps", Json::Num(1000.0))]));
        j.set("a", Json::Num(2.0));
        assert_eq!(j.get("a").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            j.get("serving")
                .and_then(|s| s.get("rps"))
                .and_then(Json::as_f64),
            Some(1000.0)
        );
    }
}
