//! Minimal JSON value + writer (avoids pulling `serde_json` through the
//! offline mirror for the one place JSON is emitted: Vega-Lite specs).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use a `BTreeMap` so output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serialise with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj([
            ("mark", Json::str("bar")),
            (
                "encoding",
                Json::obj([("x", Json::obj([("field", Json::str("HIRE_DATE"))]))]),
            ),
        ]);
        let s = j.pretty();
        assert!(s.contains("\"mark\": \"bar\""));
        assert!(s.contains("\"field\": \"HIRE_DATE\""));
    }

    #[test]
    fn escapes_special_characters() {
        let s = Json::str("a\"b\\c\nd").pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn numbers_render_integers_cleanly() {
        assert_eq!(Json::Num(40.0).pretty(), "40");
        assert_eq!(Json::Num(1.25).pretty(), "1.25");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(Default::default()).pretty(), "{}");
    }
}
