//! # t2v-engine — execution substrate
//!
//! The paper's Figure 1 pipeline ends by executing the generated DVQ against
//! the database and rendering a chart (or failing with "no chart" when the
//! DVQ references columns that do not exist). This crate supplies that
//! substrate:
//!
//! * [`store`] — an in-memory store with seeded synthetic rows per database;
//! * [`exec`] — a complete DVQ evaluator (joins, subqueries, binning,
//!   grouping, aggregates, ordering, limits);
//! * [`vegalite`] — Vega-Lite specification emission;
//! * [`chart`] — terminal chart rendering for the case-study binaries.

pub mod chart;
pub mod exec;
pub mod json;
pub mod store;
pub mod vegalite;

pub use exec::{execute, ExecError, Point, ResultSet};
pub use json::{Json, JsonError};
pub use store::{Cell, Date, Store, TableData};
pub use vegalite::to_vegalite;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use t2v_corpus::{gen_spec, generate, CorpusConfig};
    use t2v_dvq::ast::ChartType;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every DVQ the corpus generator can produce executes without
        /// schema errors against its own database, and COUNT outputs are
        /// non-negative integers.
        #[test]
        fn generated_dvqs_execute(seed in 0u64..500, chart_i in 0usize..7, budget in 0u32..4) {
            use rand::SeedableRng;
            let corpus = generate(&CorpusConfig::tiny(3));
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let db = &corpus.databases[(seed as usize) % corpus.databases.len()];
            if let Some(spec) = gen_spec(&mut rng, db, ChartType::ALL[chart_i], budget) {
                let dvq = spec.to_dvq(db);
                let store = Store::synthesize(db, seed, 30);
                let rs = execute(&dvq, &store).unwrap();
                for p in &rs.points {
                    prop_assert!(p.y.is_finite());
                    if dvq.y.aggregate() == Some(t2v_dvq::ast::AggFunc::Count) {
                        prop_assert!(p.y >= 0.0 && p.y.fract() == 0.0);
                    }
                }
                if let Some(n) = dvq.limit {
                    prop_assert!(rs.points.len() <= n as usize);
                }
            }
        }

        /// Grouped COUNT totals never exceed the row count.
        #[test]
        fn count_partition_bound(seed in 0u64..200) {
            let corpus = generate(&CorpusConfig::tiny(3));
            let db = &corpus.databases[(seed as usize) % corpus.databases.len()];
            let store = Store::synthesize(db, seed, 40);
            // Count rows of table 0 grouped by its last text column, if any.
            let table = &db.tables[0];
            if let Some(cat) = table.columns.iter().find(|c| c.ctype == t2v_corpus::ColType::Text) {
                let q = t2v_dvq::parse(&format!(
                    "Visualize BAR SELECT {c} , COUNT({c}) FROM {t} GROUP BY {c}",
                    c = cat.name, t = table.name
                )).unwrap();
                let rs = execute(&q, &store).unwrap();
                let total: f64 = rs.points.iter().map(|p| p.y).sum();
                prop_assert!(total <= 40.0);
            }
        }
    }
}
