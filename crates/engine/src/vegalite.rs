//! DVQ → Vega-Lite specification (the final DVL rendering step of Figure 1).

use crate::exec::ResultSet;
use crate::json::Json;
use std::collections::BTreeMap;
use t2v_dvq::ast::{ChartType, Dvq, SortDir};

/// Build the Vega-Lite spec for an executed query.
pub fn to_vegalite(q: &Dvq, rs: &ResultSet) -> Json {
    let mut values = Vec::with_capacity(rs.points.len());
    for p in &rs.points {
        let mut row = BTreeMap::new();
        row.insert(rs.x_label.clone(), cell_json(&p.x));
        row.insert(rs.y_label.clone(), Json::Num(p.y));
        if let (Some(label), Some(color)) = (&rs.color_label, &p.color) {
            row.insert(label.clone(), Json::str(color.clone()));
        }
        values.push(Json::Obj(row));
    }

    let mut x_enc = BTreeMap::new();
    x_enc.insert("field".to_string(), Json::str(rs.x_label.clone()));
    x_enc.insert("type".to_string(), Json::str(x_type(rs)));
    if let Some(o) = &q.order_by {
        let dir = match o.dir.unwrap_or(SortDir::Asc) {
            SortDir::Asc => "ascending",
            SortDir::Desc => "descending",
        };
        x_enc.insert("sort".to_string(), Json::str(dir));
    }

    let mut y_enc = BTreeMap::new();
    y_enc.insert("field".to_string(), Json::str(rs.y_label.clone()));
    y_enc.insert("type".to_string(), Json::str("quantitative"));
    if let Some(agg) = q.y.aggregate() {
        y_enc.insert("aggregate".to_string(), Json::str(agg.vegalite()));
    }

    let mut encoding = BTreeMap::new();
    match q.chart {
        ChartType::Pie => {
            encoding.insert("theta".to_string(), Json::Obj(y_enc));
            encoding.insert(
                "color".to_string(),
                Json::obj([
                    ("field", Json::str(rs.x_label.clone())),
                    ("type", Json::str("nominal")),
                ]),
            );
        }
        _ => {
            encoding.insert("x".to_string(), Json::Obj(x_enc));
            encoding.insert("y".to_string(), Json::Obj(y_enc));
            if let Some(color) = &rs.color_label {
                encoding.insert(
                    "color".to_string(),
                    Json::obj([
                        ("field", Json::str(color.clone())),
                        ("type", Json::str("nominal")),
                    ]),
                );
            }
        }
    }

    Json::obj([
        (
            "$schema",
            Json::str("https://vega.github.io/schema/vega-lite/v5.json"),
        ),
        ("data", Json::obj([("values", Json::Arr(values))])),
        ("mark", Json::str(q.chart.mark())),
        ("encoding", Json::Obj(encoding)),
    ])
}

fn x_type(rs: &ResultSet) -> &'static str {
    match rs.points.first().map(|p| &p.x) {
        Some(crate::store::Cell::Num(_)) => "quantitative",
        Some(crate::store::Cell::Date(_)) => "temporal",
        _ => "nominal",
    }
}

fn cell_json(c: &crate::store::Cell) -> Json {
    match c {
        crate::store::Cell::Num(n) => Json::Num(*n),
        crate::store::Cell::Text(s) => Json::str(s.clone()),
        crate::store::Cell::Date(d) => Json::str(d.to_string()),
        crate::store::Cell::Null => Json::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::store::{Cell, Store, TableData};
    use t2v_dvq::parse;

    fn store() -> Store {
        Store {
            db_id: "t".into(),
            tables: vec![TableData {
                name: "emp".into(),
                columns: vec!["city".into(), "salary".into()],
                rows: vec![
                    vec![Cell::Text("Oslo".into()), Cell::Num(10.0)],
                    vec![Cell::Text("Oslo".into()), Cell::Num(20.0)],
                    vec![Cell::Text("Rome".into()), Cell::Num(5.0)],
                ],
            }],
        }
    }

    #[test]
    fn bar_spec_has_mark_and_fields() {
        let q = parse(
            "Visualize BAR SELECT city , AVG(salary) FROM emp GROUP BY city ORDER BY city ASC",
        )
        .unwrap();
        let rs = execute(&q, &store()).unwrap();
        let spec = to_vegalite(&q, &rs).pretty();
        assert!(spec.contains("\"mark\": \"bar\""));
        assert!(spec.contains("\"aggregate\": \"average\""));
        assert!(spec.contains("\"sort\": \"ascending\""));
        assert!(spec.contains("\"city\": \"Oslo\""));
    }

    #[test]
    fn pie_uses_theta_channel() {
        let q = parse("Visualize PIE SELECT city , COUNT(city) FROM emp GROUP BY city").unwrap();
        let rs = execute(&q, &store()).unwrap();
        let spec = to_vegalite(&q, &rs).pretty();
        assert!(spec.contains("\"mark\": \"arc\""));
        assert!(spec.contains("\"theta\""));
    }
}
