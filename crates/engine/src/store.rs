//! In-memory column store with synthetic row generation.
//!
//! Rows are synthesised per database from the corpus value pools so that
//! generated filters are satisfiable, foreign keys reference real target
//! rows, and nullable numeric columns contain some NULLs (so `IS NOT NULL`
//! filters do something).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use t2v_corpus::schema::{ColType, Database};
use t2v_corpus::values;

/// A calendar date (no time component).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    pub year: i32,
    pub month: u32,
    pub day: u32,
}

impl Date {
    pub fn new(year: i32, month: u32, day: u32) -> Self {
        Date { year, month, day }
    }

    /// Day of week, 0 = Sunday (Sakamoto's method).
    pub fn weekday(&self) -> u32 {
        const T: [i32; 12] = [0, 3, 2, 5, 0, 3, 5, 1, 4, 6, 2, 4];
        let mut y = self.year;
        if self.month < 3 {
            y -= 1;
        }
        let w =
            (y + y / 4 - y / 100 + y / 400 + T[(self.month - 1) as usize] + self.day as i32) % 7;
        w.rem_euclid(7) as u32
    }

    pub fn weekday_name(&self) -> &'static str {
        ["Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"][self.weekday() as usize]
    }

    pub fn month_name(&self) -> &'static str {
        [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ][(self.month - 1) as usize]
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// One cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    Num(f64),
    Text(String),
    Date(Date),
    Null,
}

impl Cell {
    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Cell::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Render for chart labels / JSON.
    pub fn display(&self) -> String {
        match self {
            Cell::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Cell::Text(s) => s.clone(),
            Cell::Date(d) => d.to_string(),
            Cell::Null => "null".into(),
        }
    }
}

/// Rows for one table (row-major; the store is small by construction).
#[derive(Debug, Clone)]
pub struct TableData {
    pub name: String,
    /// Column names, aligned with the schema's column order.
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Cell>>,
}

impl TableData {
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }
}

/// All rows of one database.
#[derive(Debug, Clone)]
pub struct Store {
    pub db_id: String,
    pub tables: Vec<TableData>,
}

impl Store {
    pub fn table(&self, name: &str) -> Option<&TableData> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Synthesise `rows_per_table` rows for every table of `db`.
    ///
    /// Keys are `1..=n`; foreign-key columns draw from the target table's key
    /// range so joins always hit; ~12% of non-key numeric cells are NULL.
    pub fn synthesize(db: &Database, seed: u64, rows_per_table: usize) -> Store {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xda7a);
        let mut tables = Vec::with_capacity(db.tables.len());
        for (ti, t) in db.tables.iter().enumerate() {
            let mut rows = Vec::with_capacity(rows_per_table);
            for r in 0..rows_per_table {
                let mut row = Vec::with_capacity(t.columns.len());
                for (ci, c) in t.columns.iter().enumerate() {
                    let concept = c.head_concept().unwrap_or("value");
                    // FK columns point at a valid target key.
                    let is_fk = db
                        .foreign_keys
                        .iter()
                        .any(|fk| fk.from_table == ti && fk.from_column == ci);
                    let cell = if c.is_key {
                        Cell::Num((r + 1) as f64)
                    } else if is_fk {
                        Cell::Num(rng.gen_range(1..=rows_per_table) as f64)
                    } else {
                        match c.ctype {
                            ColType::Number => {
                                if rng.gen_bool(0.12) {
                                    Cell::Null
                                } else {
                                    let (lo, hi) = values::num_range(concept);
                                    Cell::Num(rng.gen_range(lo..=hi) as f64)
                                }
                            }
                            ColType::Text => {
                                // Cover the pool prefix deterministically so
                                // equality filters drawn from the same pool
                                // (values.rs) are satisfiable even in small
                                // stores; the tail stays random.
                                let pool = values::text_pool(concept);
                                let pick = if r < pool.len() {
                                    pool[r]
                                } else {
                                    pool[rng.gen_range(0..pool.len())]
                                };
                                Cell::Text(pick.to_string())
                            }
                            ColType::Date => {
                                let (ylo, yhi) = values::date_year_range(concept);
                                Cell::Date(Date::new(
                                    rng.gen_range(ylo..=yhi),
                                    rng.gen_range(1..=12),
                                    rng.gen_range(1..=28),
                                ))
                            }
                        }
                    };
                    row.push(cell);
                }
                rows.push(row);
            }
            tables.push(TableData {
                name: t.name.clone(),
                columns: t.columns.iter().map(|c| c.name.clone()).collect(),
                rows,
            });
        }
        Store {
            db_id: db.id.clone(),
            tables,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2v_corpus::{generate, CorpusConfig};

    #[test]
    fn weekday_is_correct_for_known_dates() {
        assert_eq!(Date::new(2024, 4, 11).weekday_name(), "Thu");
        assert_eq!(Date::new(2000, 1, 1).weekday_name(), "Sat");
        assert_eq!(Date::new(1970, 1, 1).weekday_name(), "Thu");
    }

    #[test]
    fn synthesize_respects_schema_shape() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let db = &corpus.databases[0];
        let store = Store::synthesize(db, 1, 25);
        assert_eq!(store.tables.len(), db.tables.len());
        for (t, s) in db.tables.iter().zip(store.tables.iter()) {
            assert_eq!(t.columns.len(), s.columns.len());
            assert_eq!(s.rows.len(), 25);
        }
    }

    #[test]
    fn keys_are_sequential_and_fks_hit_targets() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let db = &corpus.databases[0];
        let store = Store::synthesize(db, 2, 10);
        for fk in &db.foreign_keys {
            let from = &store.tables[fk.from_table];
            for row in &from.rows {
                let v = row[fk.from_column].as_num().unwrap();
                assert!((1.0..=10.0).contains(&v));
            }
        }
        // Key column of table 0 is 1..=10.
        let keys: Vec<f64> = store.tables[0]
            .rows
            .iter()
            .map(|r| r[0].as_num().unwrap())
            .collect();
        assert_eq!(keys, (1..=10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn some_numeric_nulls_exist() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let db = &corpus.databases[0];
        let store = Store::synthesize(db, 3, 200);
        let nulls = store
            .tables
            .iter()
            .flat_map(|t| t.rows.iter())
            .flat_map(|r| r.iter())
            .filter(|c| c.is_null())
            .count();
        assert!(nulls > 0);
    }

    #[test]
    fn cell_display_formats() {
        assert_eq!(Cell::Num(40.0).display(), "40");
        assert_eq!(Cell::Num(1.5).display(), "1.5");
        assert_eq!(Cell::Text("hi".into()).display(), "hi");
        assert_eq!(Cell::Date(Date::new(2020, 2, 3)).display(), "2020-02-03");
        assert_eq!(Cell::Null.display(), "null");
    }
}
