//! Terminal chart rendering for the case-study binaries (Table 5 / Figure 5
//! of the paper show the charts each model's DVQ produces — or the "no
//! chart" failure).

use crate::exec::ResultSet;
use t2v_dvq::ast::ChartType;

/// Render a result set as ASCII art. `width` bounds the bar area.
pub fn render(chart: ChartType, rs: &ResultSet, width: usize) -> String {
    if rs.points.is_empty() {
        return "(empty result)\n".to_string();
    }
    match chart {
        ChartType::Pie => render_pie(rs),
        ChartType::Scatter | ChartType::GroupingScatter => render_scatter(rs, width),
        _ => render_bars(rs, width),
    }
}

fn label_of(p: &crate::exec::Point) -> String {
    match &p.color {
        Some(c) => format!("{} [{}]", p.x.display(), c),
        None => p.x.display(),
    }
}

fn render_bars(rs: &ResultSet, width: usize) -> String {
    let max = rs
        .points
        .iter()
        .map(|p| p.y.abs())
        .fold(f64::MIN_POSITIVE, f64::max);
    let label_w = rs
        .points
        .iter()
        .map(|p| label_of(p).len())
        .max()
        .unwrap_or(4)
        .min(28);
    let mut out = String::new();
    out.push_str(&format!("{} vs {}\n", rs.y_label, rs.x_label));
    for p in &rs.points {
        let mut label = label_of(p);
        label.truncate(label_w);
        let bars = ((p.y.abs() / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$} | {} {}\n",
            "█".repeat(bars.max(1)),
            trim_num(p.y)
        ));
    }
    out
}

fn render_pie(rs: &ResultSet) -> String {
    let total: f64 = rs.points.iter().map(|p| p.y.max(0.0)).sum();
    let mut out = format!("{} share by {}\n", rs.y_label, rs.x_label);
    for p in &rs.points {
        let pct = if total > 0.0 {
            p.y / total * 100.0
        } else {
            0.0
        };
        let slices = (pct / 5.0).round() as usize;
        out.push_str(&format!(
            "{:<20} {:>5.1}% {}\n",
            p.x.display(),
            pct,
            "●".repeat(slices.max(1))
        ));
    }
    out
}

fn render_scatter(rs: &ResultSet, width: usize) -> String {
    let height = 12usize;
    let xs: Vec<f64> = rs
        .points
        .iter()
        .map(|p| p.x.as_num().unwrap_or(0.0))
        .collect();
    let ys: Vec<f64> = rs.points.iter().map(|p| p.y).collect();
    let (xmin, xmax) = bounds(&xs);
    let (ymin, ymax) = bounds(&ys);
    let mut grid = vec![vec![' '; width]; height];
    for (x, y) in xs.iter().zip(ys.iter()) {
        let cx = scale(*x, xmin, xmax, width - 1);
        let cy = height - 1 - scale(*y, ymin, ymax, height - 1);
        grid[cy][cx] = '•';
    }
    let mut out = format!("{} vs {}\n", rs.y_label, rs.x_label);
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out
}

fn bounds(v: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in v {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if lo == hi {
        hi = lo + 1.0;
    }
    (lo, hi)
}

fn scale(v: f64, lo: f64, hi: f64, max: usize) -> usize {
    (((v - lo) / (hi - lo)) * max as f64).round() as usize
}

fn trim_num(n: f64) -> String {
    if n.fract() == 0.0 {
        format!("{}", n as i64)
    } else {
        format!("{n:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Point;
    use crate::store::Cell;

    fn rs() -> ResultSet {
        ResultSet {
            x_label: "city".into(),
            y_label: "AVG(salary)".into(),
            color_label: None,
            points: vec![
                Point {
                    x: Cell::Text("Oslo".into()),
                    y: 15.0,
                    color: None,
                },
                Point {
                    x: Cell::Text("Rome".into()),
                    y: 5.0,
                    color: None,
                },
            ],
        }
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let out = render(ChartType::Bar, &rs(), 20);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].matches('█').count() > lines[2].matches('█').count());
    }

    #[test]
    fn pie_chart_shows_percentages() {
        let out = render(ChartType::Pie, &rs(), 20);
        assert!(out.contains("75.0%"));
        assert!(out.contains("25.0%"));
    }

    #[test]
    fn empty_result_is_flagged() {
        let empty = ResultSet {
            x_label: "x".into(),
            y_label: "y".into(),
            color_label: None,
            points: vec![],
        };
        assert_eq!(render(ChartType::Bar, &empty, 10), "(empty result)\n");
    }

    #[test]
    fn scatter_renders_grid() {
        let mut r = rs();
        r.points = vec![
            Point {
                x: Cell::Num(1.0),
                y: 1.0,
                color: None,
            },
            Point {
                x: Cell::Num(2.0),
                y: 2.0,
                color: None,
            },
        ];
        let out = render(ChartType::Scatter, &r, 20);
        assert_eq!(out.matches('•').count(), 2);
    }
}
