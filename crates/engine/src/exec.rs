//! DVQ evaluation against a [`Store`].
//!
//! The evaluator implements the full DVQ surface: scans, equi-joins, the
//! flat AND/OR predicate chain (AND binds tighter than OR), scalar and IN
//! subqueries, temporal binning, grouping, the five aggregates, ordering and
//! LIMIT. A DVQ that references a column absent from the schema fails with
//! [`ExecError::UnknownColumn`] — the "no chart" outcome of the paper's
//! Figure 1 and Table 5 case study.

use crate::store::{Cell, Store};
use std::collections::BTreeMap;
use std::fmt;
use t2v_dvq::ast::*;

/// Execution failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    UnknownTable(String),
    UnknownColumn(String),
    TypeMismatch(String),
    EmptySubquery(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table {t}"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            ExecError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            ExecError::EmptySubquery(s) => write!(f, "scalar subquery returned no rows: {s}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// One output point: x value, y value, optional colour series.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    pub x: Cell,
    pub y: f64,
    pub color: Option<String>,
}

/// Evaluated result of a DVQ.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub x_label: String,
    pub y_label: String,
    pub color_label: Option<String>,
    pub points: Vec<Point>,
}

/// A bound row: cells addressable by (binding, column) names.
struct Env<'a> {
    /// (binding name lowercased, table data index, row index)
    bindings: Vec<(String, usize, usize)>,
    store: &'a Store,
}

impl<'a> Env<'a> {
    fn lookup(&self, col: &ColumnRef) -> Result<&'a Cell, ExecError> {
        for (binding, ti, ri) in &self.bindings {
            if let Some(q) = &col.qualifier {
                if !q.eq_ignore_ascii_case(binding) {
                    continue;
                }
            }
            let table = &self.store.tables[*ti];
            if let Some(ci) = table.column_index(&col.column) {
                return Ok(&table.rows[*ri][ci]);
            }
            if col.qualifier.is_some() {
                return Err(ExecError::UnknownColumn(col.to_string()));
            }
        }
        Err(ExecError::UnknownColumn(col.to_string()))
    }
}

/// Evaluate `q` against `store`.
pub fn execute(q: &Dvq, store: &Store) -> Result<ResultSet, ExecError> {
    // Resolve tables.
    let base_ti = table_index(store, &q.from.name)?;
    let mut bindings = vec![(q.from.binding().to_ascii_lowercase(), base_ti)];
    let mut join_tis = Vec::new();
    for j in &q.joins {
        let ti = table_index(store, &j.table.name)?;
        bindings.push((j.table.binding().to_ascii_lowercase(), ti));
        join_tis.push(ti);
    }

    // Enumerate joined row tuples (nested-loop equi-join; stores are small).
    let mut tuples: Vec<Vec<usize>> = (0..store.tables[base_ti].rows.len())
        .map(|r| vec![r])
        .collect();
    for (ji, j) in q.joins.iter().enumerate() {
        let ti = join_tis[ji];
        let mut next = Vec::new();
        for tuple in &tuples {
            for r2 in 0..store.tables[ti].rows.len() {
                let mut t = tuple.clone();
                t.push(r2);
                let env = env_for(&bindings, &t, store);
                let l = env.lookup(&j.left)?;
                let r = env.lookup(&j.right)?;
                if cells_equal(l, r) {
                    next.push(t);
                }
            }
        }
        tuples = next;
    }

    // Filter.
    let mut kept = Vec::new();
    for tuple in tuples {
        let env = env_for(&bindings, &tuple, store);
        let pass = match &q.where_clause {
            Some(cond) => eval_condition(cond, &env, store)?,
            None => true,
        };
        if pass {
            kept.push(tuple);
        }
    }

    // Validate axis columns even if there are no rows.
    let x_label = axis_label(&q.x);
    let y_label = axis_label(&q.y);
    let color_col: Option<&ColumnRef> = if q.chart.is_grouped() {
        q.group_by.first()
    } else {
        None
    };

    // Build output points.
    let grouping = q.bin.is_some()
        || !q.group_by.is_empty()
        || (q.x.aggregate().is_none() && q.y.aggregate().is_some());
    let mut points: Vec<Point> = if grouping && q.y.aggregate().is_some() {
        // Group rows by (x key, colour key).
        let mut groups: BTreeMap<(String, Option<String>), Vec<&Vec<usize>>> = BTreeMap::new();
        let mut reprs: BTreeMap<(String, Option<String>), Cell> = BTreeMap::new();
        for tuple in &kept {
            let env = env_for(&bindings, tuple, store);
            let (key_cell, key) = x_key(q, &env)?;
            let color = match color_col {
                Some(c) => Some(env.lookup(c)?.display()),
                None => None,
            };
            groups
                .entry((key.clone(), color.clone()))
                .or_default()
                .push(tuple);
            reprs.entry((key, color)).or_insert(key_cell);
        }
        let mut out = Vec::with_capacity(groups.len());
        for ((key, color), members) in groups {
            let mut values = Vec::with_capacity(members.len());
            for tuple in &members {
                let env = env_for(&bindings, tuple, store);
                values.push(axis_value(&q.y, &env)?);
            }
            let y = aggregate(
                q.y.aggregate().expect("grouping requires aggregate"),
                &values,
            );
            out.push(Point {
                x: reprs.remove(&(key, color.clone())).expect("repr recorded"),
                y,
                color,
            });
        }
        out
    } else {
        // Row-per-point (scatter / plain bar).
        let mut out = Vec::with_capacity(kept.len());
        for tuple in &kept {
            let env = env_for(&bindings, tuple, store);
            let x = env.lookup(q.x.column())?.clone();
            let yv = axis_value(&q.y, &env)?;
            let y = match yv {
                Some(Cell::Num(n)) => n,
                Some(Cell::Null) | None => continue,
                Some(other) => {
                    return Err(ExecError::TypeMismatch(format!(
                        "y axis must be numeric, got {}",
                        other.display()
                    )))
                }
            };
            let color = match color_col {
                Some(c) => Some(env.lookup(c)?.display()),
                None => None,
            };
            out.push(Point { x, y, color });
        }
        out
    };

    // Ordering.
    if let Some(o) = &q.order_by {
        let dir = o.dir.unwrap_or(SortDir::Asc);
        let by_y = o.expr == q.y || o.expr.aggregate().is_some();
        points.sort_by(|a, b| {
            let ord = if by_y {
                a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal)
            } else {
                compare_cells(&a.x, &b.x)
            };
            if dir == SortDir::Desc {
                ord.reverse()
            } else {
                ord
            }
        });
    } else {
        // Deterministic default ordering by x.
        points.sort_by(|a, b| compare_cells(&a.x, &b.x));
    }

    if let Some(n) = q.limit {
        points.truncate(n as usize);
    }

    Ok(ResultSet {
        x_label,
        y_label,
        color_label: color_col.map(|c| c.to_string()),
        points,
    })
}

fn table_index(store: &Store, name: &str) -> Result<usize, ExecError> {
    store
        .tables
        .iter()
        .position(|t| t.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| ExecError::UnknownTable(name.to_string()))
}

fn env_for<'a>(bindings: &[(String, usize)], tuple: &[usize], store: &'a Store) -> Env<'a> {
    Env {
        bindings: bindings
            .iter()
            .zip(tuple.iter())
            .map(|((b, ti), ri)| (b.clone(), *ti, *ri))
            .collect(),
        store,
    }
}

fn axis_label(e: &SelectExpr) -> String {
    match e {
        SelectExpr::Column(c) => c.column.clone(),
        SelectExpr::Aggregate { func, arg, .. } => format!("{}({})", func.keyword(), arg.column),
    }
}

/// The x grouping key for one row (bin-aware).
fn x_key(q: &Dvq, env: &Env) -> Result<(Cell, String), ExecError> {
    if let Some(b) = &q.bin {
        let cell = env.lookup(&b.col)?;
        let binned = match cell {
            Cell::Date(d) => match b.unit {
                BinUnit::Year => Cell::Num(d.year as f64),
                BinUnit::Month => Cell::Text(d.month_name().to_string()),
                BinUnit::Day => Cell::Num(d.day as f64),
                BinUnit::Weekday => Cell::Text(d.weekday_name().to_string()),
            },
            Cell::Num(n) => Cell::Num(*n),
            Cell::Null => Cell::Null,
            Cell::Text(_) => {
                return Err(ExecError::TypeMismatch(format!(
                    "cannot bin text column {}",
                    b.col
                )))
            }
        };
        let key = sort_key(&binned);
        return Ok((binned, key));
    }
    let cell = env.lookup(q.x.column())?.clone();
    let key = sort_key(&cell);
    Ok((cell, key))
}

/// Sortable textual key for grouping (numbers padded for natural order).
fn sort_key(c: &Cell) -> String {
    match c {
        Cell::Num(n) => format!("n{:020.4}", n + 1e9),
        Cell::Text(s) => format!("t{s}"),
        Cell::Date(d) => format!("d{d}"),
        Cell::Null => "z".into(),
    }
}

fn compare_cells(a: &Cell, b: &Cell) -> std::cmp::Ordering {
    sort_key(a).cmp(&sort_key(b))
}

/// Evaluate the y expression for one row; `None` means COUNT-style presence.
fn axis_value(e: &SelectExpr, env: &Env) -> Result<Option<Cell>, ExecError> {
    Ok(Some(env.lookup(e.column())?.clone()))
}

fn aggregate(func: AggFunc, values: &[Option<Cell>]) -> f64 {
    let nums: Vec<f64> = values
        .iter()
        .filter_map(|v| v.as_ref().and_then(Cell::as_num))
        .collect();
    match func {
        AggFunc::Count => values
            .iter()
            .filter(|v| !matches!(v, Some(Cell::Null) | None))
            .count() as f64,
        AggFunc::Sum => nums.iter().sum(),
        AggFunc::Avg => {
            if nums.is_empty() {
                0.0
            } else {
                nums.iter().sum::<f64>() / nums.len() as f64
            }
        }
        AggFunc::Min => nums.iter().copied().fold(f64::INFINITY, f64::min),
        AggFunc::Max => nums.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

fn cells_equal(a: &Cell, b: &Cell) -> bool {
    match (a, b) {
        (Cell::Num(x), Cell::Num(y)) => (x - y).abs() < 1e-9,
        (Cell::Text(x), Cell::Text(y)) => x.eq_ignore_ascii_case(y),
        (Cell::Date(x), Cell::Date(y)) => x == y,
        _ => false,
    }
}

/// AND binds tighter than OR: split the flat chain on OR, conjoin within.
fn eval_condition(cond: &Condition, env: &Env, store: &Store) -> Result<bool, ExecError> {
    let mut or_result = false;
    let mut and_result = eval_predicate(&cond.first, env, store)?;
    for (op, p) in &cond.rest {
        match op {
            BoolOp::And => {
                let v = eval_predicate(p, env, store)?;
                and_result = and_result && v;
            }
            BoolOp::Or => {
                or_result = or_result || and_result;
                and_result = eval_predicate(p, env, store)?;
            }
        }
    }
    Ok(or_result || and_result)
}

fn eval_predicate(p: &Predicate, env: &Env, store: &Store) -> Result<bool, ExecError> {
    match p {
        Predicate::Compare { col, op, value } => {
            let cell = env.lookup(col)?;
            let rhs = resolve_value(value, store)?;
            Ok(compare(cell, *op, &rhs))
        }
        Predicate::Between { col, lo, hi } => {
            let cell = env.lookup(col)?;
            let lo = resolve_value(lo, store)?;
            let hi = resolve_value(hi, store)?;
            Ok(compare(cell, CompareOp::Ge, &lo) && compare(cell, CompareOp::Le, &hi))
        }
        Predicate::Like {
            col,
            negated,
            pattern,
        } => {
            let cell = env.lookup(col)?;
            let matched = match cell {
                Cell::Text(s) => like_match(s, pattern),
                _ => false,
            };
            Ok(matched != *negated)
        }
        Predicate::In {
            col,
            negated,
            subquery,
        } => {
            let cell = env.lookup(col)?;
            let values = eval_subquery(subquery, store)?;
            let found = values.iter().any(|v| cells_equal(cell, v));
            Ok(found != *negated)
        }
        Predicate::NullCheck { col, negated, .. } => {
            let is_null = env.lookup(col)?.is_null();
            Ok(is_null != *negated)
        }
    }
}

fn resolve_value(v: &Value, store: &Store) -> Result<Cell, ExecError> {
    match v {
        Value::Number(n) => n
            .parse::<f64>()
            .map(Cell::Num)
            .map_err(|_| ExecError::TypeMismatch(format!("bad number {n}"))),
        Value::Text { text, .. } => Ok(Cell::Text(text.clone())),
        Value::Subquery(sq) => {
            let values = eval_subquery(sq, store)?;
            values
                .into_iter()
                .next()
                .ok_or_else(|| ExecError::EmptySubquery(sq.from.clone()))
        }
    }
}

fn eval_subquery(sq: &SubQuery, store: &Store) -> Result<Vec<Cell>, ExecError> {
    let ti = table_index(store, &sq.from)?;
    let table = &store.tables[ti];
    let ci = table
        .column_index(&sq.select.column)
        .ok_or_else(|| ExecError::UnknownColumn(sq.select.to_string()))?;
    let bindings = vec![(sq.from.to_ascii_lowercase(), ti)];
    let mut out = Vec::new();
    for r in 0..table.rows.len() {
        let env = env_for(&bindings, &[r], store);
        let pass = match &sq.where_clause {
            Some(c) => eval_condition(c, &env, store)?,
            None => true,
        };
        if pass {
            out.push(table.rows[r][ci].clone());
        }
    }
    Ok(out)
}

fn compare(cell: &Cell, op: CompareOp, rhs: &Cell) -> bool {
    use std::cmp::Ordering::*;
    let ord = match (cell, rhs) {
        (Cell::Num(a), Cell::Num(b)) => a.partial_cmp(b),
        (Cell::Text(a), Cell::Text(b)) => Some(a.to_ascii_lowercase().cmp(&b.to_ascii_lowercase())),
        (Cell::Date(a), Cell::Date(b)) => Some(a.cmp(b)),
        _ => None,
    };
    let Some(ord) = ord else { return false };
    match op {
        CompareOp::Eq => ord == Equal,
        CompareOp::NotEq { .. } => ord != Equal,
        CompareOp::Lt => ord == Less,
        CompareOp::Le => ord != Greater,
        CompareOp::Gt => ord == Greater,
        CompareOp::Ge => ord != Less,
    }
}

/// SQL LIKE with `%` wildcards only (the corpus uses `%x%`, `x%`, `%x`).
fn like_match(s: &str, pattern: &str) -> bool {
    let s = s.to_ascii_lowercase();
    let p = pattern.to_ascii_lowercase();
    let starts = !p.starts_with('%');
    let ends = !p.ends_with('%');
    let core = p.trim_matches('%');
    if core.is_empty() {
        return true;
    }
    match (starts, ends) {
        (true, true) => s == core,
        (true, false) => s.starts_with(core),
        (false, true) => s.ends_with(core),
        (false, false) => s.contains(core),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Date, TableData};
    use t2v_dvq::parse;

    fn toy_store() -> Store {
        Store {
            db_id: "hr_1".into(),
            tables: vec![
                TableData {
                    name: "employees".into(),
                    columns: vec![
                        "id".into(),
                        "salary".into(),
                        "city".into(),
                        "hire_date".into(),
                        "dept_id".into(),
                    ],
                    rows: vec![
                        vec![
                            Cell::Num(1.0),
                            Cell::Num(9000.0),
                            Cell::Text("Paris".into()),
                            Cell::Date(Date::new(2018, 3, 5)),
                            Cell::Num(1.0),
                        ],
                        vec![
                            Cell::Num(2.0),
                            Cell::Num(11000.0),
                            Cell::Text("Paris".into()),
                            Cell::Date(Date::new(2018, 7, 1)),
                            Cell::Num(2.0),
                        ],
                        vec![
                            Cell::Num(3.0),
                            Cell::Num(5000.0),
                            Cell::Text("Oslo".into()),
                            Cell::Date(Date::new(2020, 1, 15)),
                            Cell::Num(1.0),
                        ],
                        vec![
                            Cell::Num(4.0),
                            Cell::Null,
                            Cell::Text("Oslo".into()),
                            Cell::Date(Date::new(2020, 9, 9)),
                            Cell::Num(2.0),
                        ],
                    ],
                },
                TableData {
                    name: "departments".into(),
                    columns: vec!["id".into(), "name".into()],
                    rows: vec![
                        vec![Cell::Num(1.0), Cell::Text("Finance".into())],
                        vec![Cell::Num(2.0), Cell::Text("Design".into())],
                    ],
                },
            ],
        }
    }

    fn run(q: &str) -> ResultSet {
        execute(&parse(q).unwrap(), &toy_store()).unwrap()
    }

    #[test]
    fn group_count_works() {
        let rs = run("Visualize BAR SELECT city , COUNT(city) FROM employees GROUP BY city");
        assert_eq!(rs.points.len(), 2);
        let oslo = rs
            .points
            .iter()
            .find(|p| p.x == Cell::Text("Oslo".into()))
            .unwrap();
        assert_eq!(oslo.y, 2.0);
    }

    #[test]
    fn avg_ignores_nulls() {
        let rs = run("Visualize BAR SELECT city , AVG(salary) FROM employees GROUP BY city");
        let oslo = rs
            .points
            .iter()
            .find(|p| p.x == Cell::Text("Oslo".into()))
            .unwrap();
        assert_eq!(oslo.y, 5000.0);
        let paris = rs
            .points
            .iter()
            .find(|p| p.x == Cell::Text("Paris".into()))
            .unwrap();
        assert_eq!(paris.y, 10000.0);
    }

    #[test]
    fn where_between_and_or_precedence() {
        // salary BETWEEN 8000 AND 12000 (2 rows) OR city = 'Oslo' (2 rows, one overlapping? no)
        let rs = run("Visualize BAR SELECT city , COUNT(city) FROM employees \
             WHERE salary BETWEEN 8000 AND 12000 OR city = 'Oslo' GROUP BY city");
        let total: f64 = rs.points.iter().map(|p| p.y).sum();
        assert_eq!(total, 4.0);
    }

    #[test]
    fn null_checks_filter() {
        let rs = run("Visualize BAR SELECT city , COUNT(city) FROM employees \
             WHERE salary != \"null\" GROUP BY city");
        let total: f64 = rs.points.iter().map(|p| p.y).sum();
        assert_eq!(total, 3.0);
    }

    #[test]
    fn bin_by_year_counts() {
        let rs = run(
            "Visualize LINE SELECT hire_date , COUNT(hire_date) FROM employees \
             BIN hire_date BY YEAR",
        );
        assert_eq!(rs.points.len(), 2);
        assert_eq!(rs.points[0].x, Cell::Num(2018.0));
        assert_eq!(rs.points[0].y, 2.0);
    }

    #[test]
    fn join_filters_via_dimension_table() {
        let rs = run(
            "Visualize BAR SELECT city , COUNT(city) FROM employees AS T1 \
             JOIN departments AS T2 ON T1.dept_id = T2.id \
             WHERE T2.name = 'Finance' GROUP BY city",
        );
        let total: f64 = rs.points.iter().map(|p| p.y).sum();
        assert_eq!(total, 2.0);
    }

    #[test]
    fn scalar_subquery_resolves() {
        let rs = run("Visualize BAR SELECT city , COUNT(city) FROM employees \
             WHERE dept_id = (SELECT id FROM departments WHERE name = 'Design') GROUP BY city");
        let total: f64 = rs.points.iter().map(|p| p.y).sum();
        assert_eq!(total, 2.0);
    }

    #[test]
    fn order_desc_and_limit() {
        let rs = run(
            "Visualize BAR SELECT city , AVG(salary) FROM employees GROUP BY city \
             ORDER BY AVG(salary) DESC LIMIT 1",
        );
        assert_eq!(rs.points.len(), 1);
        assert_eq!(rs.points[0].x, Cell::Text("Paris".into()));
    }

    #[test]
    fn unknown_column_fails_like_the_paper_case_study() {
        let err = execute(
            &parse("Visualize BAR SELECT wage , COUNT(wage) FROM employees GROUP BY wage").unwrap(),
            &toy_store(),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::UnknownColumn("wage".into()));
    }

    #[test]
    fn unknown_table_fails() {
        let err = execute(
            &parse("Visualize BAR SELECT a , COUNT(a) FROM nope GROUP BY a").unwrap(),
            &toy_store(),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::UnknownTable("nope".into()));
    }

    #[test]
    fn plain_bar_without_grouping_emits_rows() {
        let rs = run("Visualize BAR SELECT city , salary FROM employees ORDER BY salary DESC");
        // Null salary row is skipped.
        assert_eq!(rs.points.len(), 3);
        assert_eq!(rs.points[0].y, 11000.0);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("Paris", "%ari%"));
        assert!(like_match("Paris", "Par%"));
        assert!(like_match("Paris", "%ris"));
        assert!(!like_match("Paris", "%zz%"));
        assert!(like_match("anything", "%%"));
    }
}
