//! # text2vis — robust text-to-visualization translation
//!
//! Facade over the full reproduction of *"Towards Robustness of
//! Text-to-Visualization Translation against Lexical and Phrasal
//! Variability"* (ICDE 2025): the DVQ language, a synthetic nvBench corpus,
//! the nvBench-Rob perturbation suite, an execution engine, embedding and
//! LLM substrates, the neural baselines, the GRED framework, the unified
//! [`t2v_core::Translator`] backend API every model implements, the
//! evaluation harness, the multi-backend `t2v-serve` service, and the
//! `t2v-store` persistent artifact store (with the `t2v-snapshot` CLI).
//!
//! ```
//! use text2vis::prelude::*;
//!
//! let corpus = generate(&CorpusConfig::tiny(7));
//! let gred = default_gred(&corpus, GredConfig::default());
//! let ex = &corpus.dev[0];
//! let dvq = gred
//!     .translate_final(&ex.nlq, &corpus.databases[ex.db])
//!     .expect("a DVQ");
//! assert!(dvq.starts_with("Visualize"));
//! ```

pub use t2v_ann as ann;
pub use t2v_baselines as baselines;
pub use t2v_core as core;
pub use t2v_corpus as corpus;
pub use t2v_dvq as dvq;
pub use t2v_embed as embed;
pub use t2v_engine as engine;
pub use t2v_eval as eval;
pub use t2v_gred as gred;
pub use t2v_llm as llm;
pub use t2v_neural as neural;
pub use t2v_perturb as perturb;
pub use t2v_serve as serve;
pub use t2v_store as store;
pub use t2v_tenant as tenant;

/// The most common imports in one place.
pub mod prelude {
    pub use t2v_core::{
        BackendInfo, BackendRegistry, TranslateError, TranslateRequest, TranslateResponse,
        Translator,
    };
    pub use t2v_corpus::{generate, Corpus, CorpusConfig, Database};
    pub use t2v_dvq::{parse, Dvq, Printer};
    pub use t2v_engine::{execute, Store};
    pub use t2v_eval::evaluate_set;
    pub use t2v_gred::{default_gred, Gred, GredConfig};
    pub use t2v_perturb::{build_rob, NvBenchRob, RobVariant};
    pub use t2v_serve::{serve, ServeConfig, Server, ServerState};
    pub use t2v_store::{LibrarySource, Provenance, SnapshotError};
    pub use t2v_tenant::{CorpusSpec, TenantSpec};
}
