//! `t2v-snapshot` — build, inspect, and verify persistent library snapshots.
//!
//! ```text
//! t2v-snapshot build   [--corpus tiny:7|paper:N] [--out PATH] [--ann]
//! t2v-snapshot inspect PATH
//! t2v-snapshot verify  PATH [--corpus tiny:7|paper:N]
//! t2v-snapshot catalog DIR
//! ```
//!
//! * `build` generates the corpus, builds the embedding library, and writes
//!   the snapshot `t2v-serve` loads with `library_snapshot=PATH`. With
//!   `--ann` it also trains the IVF index pair at build time (regardless of
//!   corpus size — an explicit flag means the operator wants the index) and
//!   embeds it in the snapshot (format v2), so a warm boot with `ann=on`
//!   adopts it instead of re-training.
//! * `inspect` prints the manifest (version, fingerprints, section table
//!   with human-readable sizes) after validating framing and checksums —
//!   no payload reconstruction.
//! * `verify` fully decodes the snapshot and re-derives both fingerprints
//!   from the reconstructed state; with `--corpus` it additionally proves
//!   the snapshot matches that corpus. Exit status 0 only when everything
//!   holds.
//! * `catalog` scans a directory and lists every valid snapshot with its
//!   fingerprints — and, for files following the tenant naming convention
//!   (`{id}@{profile}-{seed}.t2vsnap`), the tenant they declare to a
//!   `tenant_dir=` boot of `t2v-serve`.
//!
//! Every failure is a one-line diagnostic + non-zero exit, never a panic.

use std::time::Instant;
use text2vis::corpus::generate;
use text2vis::embed::EmbedConfig;
use text2vis::store::{self, LibrarySource, Manifest};
use text2vis::tenant::parse_snapshot_filename;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return;
    }
    match args[0].as_str() {
        "build" => build(&args[1..]),
        "inspect" => inspect(&args[1..]),
        "verify" => verify(&args[1..]),
        "catalog" => catalog(&args[1..]),
        other => die(&format!(
            "unknown subcommand '{other}' (build|inspect|verify|catalog)"
        )),
    }
}

fn usage() {
    println!(
        "usage:\n  t2v-snapshot build   [--corpus tiny:7|paper:N] [--out PATH] [--ann]\n  \
         t2v-snapshot inspect PATH\n  t2v-snapshot verify  PATH [--corpus tiny:7|paper:N]\n  \
         t2v-snapshot catalog DIR"
    );
}

fn die(message: &str) -> ! {
    eprintln!("t2v-snapshot: {message}");
    std::process::exit(2)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .map(|i| match args.get(i + 1) {
            Some(v) => v.clone(),
            None => die(&format!("{name} needs a value")),
        })
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Parse `tiny:SEED` / `paper:SEED` using the serve config's parser so the
/// CLI and the server accept exactly the same spellings.
fn corpus_profile(spec: &str) -> text2vis::serve::CorpusProfile {
    let mut probe = text2vis::serve::ServeConfig::default();
    if let Err(e) = probe.set("corpus", spec) {
        die(&e.message);
    }
    probe.corpus
}

fn build(args: &[String]) {
    let spec = flag(args, "--corpus").unwrap_or_else(|| "tiny:7".to_string());
    let out = flag(args, "--out").unwrap_or_else(|| "library.t2vsnap".to_string());
    let profile = corpus_profile(&spec);

    eprintln!("t2v-snapshot: generating the {spec} corpus...");
    let corpus = generate(&profile.corpus_config());
    eprintln!(
        "t2v-snapshot: building the embedding library over {} training pairs...",
        corpus.train.len()
    );
    let t0 = Instant::now();
    let resolved = match LibrarySource::Build.resolve(&corpus, &EmbedConfig::default()) {
        Ok(r) => r,
        Err(e) => die(&e.to_string()),
    };
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    if has_flag(args, "--ann") {
        eprintln!("t2v-snapshot: training the IVF index pair...");
        let t1 = Instant::now();
        let trained = resolved.library.train_ann(&text2vis::ann::IvfConfig {
            min_rows: 1,
            ..Default::default()
        });
        if !trained {
            die("ANN training failed (is the library empty?)");
        }
        eprintln!(
            "t2v-snapshot: trained in {:.0} ms",
            t1.elapsed().as_secs_f64() * 1e3
        );
    }
    let manifest = match store::save(&out, &resolved.library, &resolved.embedder) {
        Ok(m) => m,
        Err(e) => die(&e.to_string()),
    };
    println!(
        "wrote {out}: {} entries, {} dims, {} bytes (library built in {build_ms:.0} ms)",
        manifest.entries, manifest.dims, manifest.file_len
    );
    print_manifest(&manifest);
}

fn inspect(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        die("inspect needs a snapshot path");
    };
    match store::inspect(path) {
        Ok(manifest) => print_manifest(&manifest),
        Err(e) => die(&e.to_string()),
    }
}

fn verify(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        die("verify needs a snapshot path");
    };
    let t0 = Instant::now();
    let manifest = match store::verify(path) {
        Ok(m) => m,
        Err(e) => die(&e.to_string()),
    };
    // Optional provenance check against a freshly generated corpus.
    if let Some(spec) = flag(args, "--corpus") {
        let corpus = generate(&corpus_profile(&spec).corpus_config());
        let expected = store::corpus_fingerprint(&corpus);
        if manifest.corpus_fingerprint != expected {
            die(&format!(
                "snapshot was not built from the {spec} corpus: expected {expected:#018x}, \
                 snapshot has {:#018x}",
                manifest.corpus_fingerprint
            ));
        }
        let expected_embedder = store::expected_embedder_fingerprint(&EmbedConfig::default());
        if manifest.embedder_fingerprint != expected_embedder {
            die(&format!(
                "snapshot embedder differs from the default model: expected \
                 {expected_embedder:#018x}, snapshot has {:#018x}",
                manifest.embedder_fingerprint
            ));
        }
    }
    println!(
        "ok: {path} verified in {:.0} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );
    print_manifest(&manifest);
}

/// `1234567` → `1.2 MiB` — section sizes are for humans; exact byte counts
/// stay in the `bytes` column.
fn human_size(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// One table: provenance rows (the library fingerprint first — it doubles
/// as the corpus fingerprint by construction) followed by the section
/// rows with human-readable sizes.
fn print_manifest(m: &Manifest) {
    println!(
        "format v{}, {} entries, {} dims, {} ({} bytes)",
        m.format_version,
        m.entries,
        m.dims,
        human_size(m.file_len),
        m.file_len
    );
    println!(
        "  {:<22} {:>10} {:>12}  {:>18}",
        "row", "offset", "size", "value/checksum"
    );
    println!(
        "  {:<22} {:>10} {:>12}  {:#018x}",
        "library fingerprint", "-", "-", m.corpus_fingerprint
    );
    println!(
        "  {:<22} {:>10} {:>12}  {:#018x}",
        "embedder fingerprint", "-", "-", m.embedder_fingerprint
    );
    for s in &m.sections {
        println!(
            "  {:<22} {:>10} {:>12}  {:#018x}",
            format!("section {}", s.kind.name()),
            s.offset,
            format!("{} ", human_size(s.len)),
            s.checksum
        );
    }
    if let Some(ann) = &m.ann {
        println!(
            "  ann index: {} cells, nprobe {}, {}, {}",
            ann.cells,
            ann.nprobe,
            if ann.quantized { "sq8+rescore" } else { "f32" },
            human_size(ann.bytes)
        );
    }
}

/// `catalog DIR` — list every snapshot under a directory: validity,
/// fingerprint, size, and (for conforming names) the tenant it declares.
fn catalog(args: &[String]) {
    let Some(dir) = args.first().filter(|a| !a.starts_with("--")) else {
        die("catalog needs a directory");
    };
    let entries = match store::scan_snapshots(dir) {
        Ok(e) => e,
        Err(e) => die(&format!("cannot scan {dir}: {e}")),
    };
    if entries.is_empty() {
        println!("no *.t2vsnap files under {dir}");
        return;
    }
    let mut invalid = 0usize;
    println!(
        "{:<34} {:>8} {:>10}  {:<18}  tenant",
        "snapshot", "entries", "size", "fingerprint"
    );
    for entry in &entries {
        let tenant = match parse_snapshot_filename(entry.file_name()) {
            Some(spec) => format!("{} ({})", spec.id, spec.corpus.label()),
            None => "-".to_string(),
        };
        match &entry.manifest {
            Ok(m) => println!(
                "{:<34} {:>8} {:>10}  {:#018x}  {tenant}",
                entry.file_name(),
                m.entries,
                human_size(m.file_len),
                m.corpus_fingerprint
            ),
            Err(e) => {
                invalid += 1;
                println!("{:<34} INVALID: {e}", entry.file_name());
            }
        }
    }
    println!(
        "{} snapshot(s), {} valid, {} invalid",
        entries.len(),
        entries.len() - invalid,
        invalid
    );
    if invalid > 0 {
        std::process::exit(1);
    }
}
