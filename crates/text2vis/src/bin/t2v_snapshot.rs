//! `t2v-snapshot` — build, inspect, and verify persistent library snapshots.
//!
//! ```text
//! t2v-snapshot build   [--corpus tiny:7|paper:N] [--out PATH]
//! t2v-snapshot inspect PATH
//! t2v-snapshot verify  PATH [--corpus tiny:7|paper:N]
//! ```
//!
//! * `build` generates the corpus, builds the embedding library, and writes
//!   the snapshot `t2v-serve` loads with `library_snapshot=PATH`.
//! * `inspect` prints the manifest (version, fingerprints, section table)
//!   after validating framing and checksums — no payload reconstruction.
//! * `verify` fully decodes the snapshot and re-derives both fingerprints
//!   from the reconstructed state; with `--corpus` it additionally proves
//!   the snapshot matches that corpus. Exit status 0 only when everything
//!   holds.
//!
//! Every failure is a one-line diagnostic + non-zero exit, never a panic.

use std::time::Instant;
use text2vis::corpus::generate;
use text2vis::embed::EmbedConfig;
use text2vis::store::{self, LibrarySource, Manifest};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return;
    }
    match args[0].as_str() {
        "build" => build(&args[1..]),
        "inspect" => inspect(&args[1..]),
        "verify" => verify(&args[1..]),
        other => die(&format!(
            "unknown subcommand '{other}' (build|inspect|verify)"
        )),
    }
}

fn usage() {
    println!(
        "usage:\n  t2v-snapshot build   [--corpus tiny:7|paper:N] [--out PATH]\n  \
         t2v-snapshot inspect PATH\n  t2v-snapshot verify  PATH [--corpus tiny:7|paper:N]"
    );
}

fn die(message: &str) -> ! {
    eprintln!("t2v-snapshot: {message}");
    std::process::exit(2)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .map(|i| match args.get(i + 1) {
            Some(v) => v.clone(),
            None => die(&format!("{name} needs a value")),
        })
}

/// Parse `tiny:SEED` / `paper:SEED` using the serve config's parser so the
/// CLI and the server accept exactly the same spellings.
fn corpus_profile(spec: &str) -> text2vis::serve::CorpusProfile {
    let mut probe = text2vis::serve::ServeConfig::default();
    if let Err(e) = probe.set("corpus", spec) {
        die(&e.message);
    }
    probe.corpus
}

fn build(args: &[String]) {
    let spec = flag(args, "--corpus").unwrap_or_else(|| "tiny:7".to_string());
    let out = flag(args, "--out").unwrap_or_else(|| "library.t2vsnap".to_string());
    let profile = corpus_profile(&spec);

    eprintln!("t2v-snapshot: generating the {spec} corpus...");
    let corpus = generate(&profile.corpus_config());
    eprintln!(
        "t2v-snapshot: building the embedding library over {} training pairs...",
        corpus.train.len()
    );
    let t0 = Instant::now();
    let resolved = match LibrarySource::Build.resolve(&corpus, &EmbedConfig::default()) {
        Ok(r) => r,
        Err(e) => die(&e.to_string()),
    };
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let manifest = match store::save(&out, &resolved.library, &resolved.embedder) {
        Ok(m) => m,
        Err(e) => die(&e.to_string()),
    };
    println!(
        "wrote {out}: {} entries, {} dims, {} bytes (library built in {build_ms:.0} ms)",
        manifest.entries, manifest.dims, manifest.file_len
    );
    print_manifest(&manifest);
}

fn inspect(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        die("inspect needs a snapshot path");
    };
    match store::inspect(path) {
        Ok(manifest) => print_manifest(&manifest),
        Err(e) => die(&e.to_string()),
    }
}

fn verify(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        die("verify needs a snapshot path");
    };
    let t0 = Instant::now();
    let manifest = match store::verify(path) {
        Ok(m) => m,
        Err(e) => die(&e.to_string()),
    };
    // Optional provenance check against a freshly generated corpus.
    if let Some(spec) = flag(args, "--corpus") {
        let corpus = generate(&corpus_profile(&spec).corpus_config());
        let expected = store::corpus_fingerprint(&corpus);
        if manifest.corpus_fingerprint != expected {
            die(&format!(
                "snapshot was not built from the {spec} corpus: expected {expected:#018x}, \
                 snapshot has {:#018x}",
                manifest.corpus_fingerprint
            ));
        }
        let expected_embedder = store::expected_embedder_fingerprint(&EmbedConfig::default());
        if manifest.embedder_fingerprint != expected_embedder {
            die(&format!(
                "snapshot embedder differs from the default model: expected \
                 {expected_embedder:#018x}, snapshot has {:#018x}",
                manifest.embedder_fingerprint
            ));
        }
    }
    println!(
        "ok: {path} verified in {:.0} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );
    print_manifest(&manifest);
}

fn print_manifest(m: &Manifest) {
    println!(
        "format v{}, {} entries, {} dims, {} bytes",
        m.format_version, m.entries, m.dims, m.file_len
    );
    println!("corpus fingerprint:   {:#018x}", m.corpus_fingerprint);
    println!("embedder fingerprint: {:#018x}", m.embedder_fingerprint);
    for s in &m.sections {
        println!(
            "  section {:<9} offset {:>9}  {:>9} bytes  checksum {:#018x}",
            s.kind.name(),
            s.offset,
            s.len,
            s.checksum
        );
    }
}
