//! `t2v-serve` — run the translation service from the command line.
//!
//! ```text
//! t2v-serve [--config PATH] [key=value ...]
//! ```
//!
//! Configuration precedence: defaults < `--config` file < `T2V_SERVE_*`
//! environment < trailing `key=value` arguments. `t2v-serve --help` lists
//! every knob; DESIGN.md §7 documents them.

use text2vis::serve::{config::KEYS, serve, ServeConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: t2v-serve [--config PATH] [key=value ...]\n\nknobs:");
        for key in KEYS {
            println!("  {key}");
        }
        println!(
            "\nenvironment: T2V_SERVE_<KEY> overrides the file; key=value args override both."
        );
        return;
    }

    let config_path = args.iter().position(|a| a == "--config").map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| die("--config needs a path"))
    });
    let mut config = ServeConfig::load(config_path.as_deref()).unwrap_or_else(|e| die(&e.message));

    let mut skip = false;
    for arg in args.iter() {
        if skip {
            skip = false;
            continue;
        }
        if arg == "--config" {
            skip = true;
            continue;
        }
        let Some((key, value)) = arg.split_once('=') else {
            die(&format!(
                "unrecognised argument '{arg}' (expected key=value)"
            ));
        };
        config
            .set(key.trim(), value.trim())
            .unwrap_or_else(|e| die(&e.message));
    }
    // Environment validation runs *before* anything expensive: a
    // snapshot_save path whose parent does not exist, or a missing
    // tenant_dir, dies here in milliseconds — not after the library build
    // finally tries to use it.
    config.validate().unwrap_or_else(|e| die(&e.message));

    eprintln!(
        "t2v-serve: preparing backends [{}] over the {:?} corpus ({} workers, {} shards, queue {} per shard, cache {} entries/{} shards/ttl {}s, batching {}, library {})...",
        config.backends,
        config.corpus,
        config.effective_workers(),
        config.effective_shards(),
        config.queue_capacity,
        config.cache_capacity,
        config.effective_cache_shards(),
        config.cache_ttl_secs,
        if config.batch { "on" } else { "off" },
        if config.library_snapshot.is_empty() {
            "build".to_string()
        } else {
            format!("snapshot {}", config.library_snapshot)
        },
    );
    // Startup failures — unparseable knobs above, a corrupt or mismatched
    // library snapshot, an unbindable address — all exit through `die`:
    // one-line diagnostic, non-zero status, no panic/backtrace noise.
    let server = serve(config).unwrap_or_else(|e| die(&e.to_string()));
    eprintln!(
        "t2v-serve: serving the {} library ({}, fingerprint {:#018x}) on http://{} (POST /v1/translate, POST /v1/translate/batch, GET /v1/backends, /v1/t/{{tenant}}/*, POST /v1/admin/snapshot, /v1/admin/tenants*, GET /healthz, GET /metrics; POST /translate is deprecated)",
        server.state().gred.library().len(),
        server.state().library_provenance.label(),
        server.state().library_fingerprint,
        server.addr()
    );
    let tenants = server.state().tenants();
    eprintln!(
        "t2v-serve: {} tenant(s): {}",
        tenants.len(),
        tenants
            .iter()
            .map(|t| format!(
                "{} ({}, {}, {} entries)",
                t.id,
                t.corpus_label,
                t.library_provenance.label(),
                t.gred.library().len()
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

fn die(message: &str) -> ! {
    eprintln!("t2v-serve: {message}");
    std::process::exit(2)
}
