//! Multi-tenant loopback tests: the snapshot catalog, per-tenant routing
//! and byte-identity, cross-tenant cache isolation, and hot attach/detach
//! under concurrent in-flight translations.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use t2v_corpus::generate;
use t2v_engine::Json;
use t2v_serve::{ServeConfig, Server, ServerState};
use t2v_tenant::{parse_corpus_spec, snapshot_filename, TenantSpec};

// ---------------------------------------------------------------------------
// tiny test client
// ---------------------------------------------------------------------------

struct Reply {
    status: u16,
    headers: HashMap<String, String>,
    body: Vec<u8>,
}

impl Reply {
    fn json(&self) -> Json {
        Json::parse(std::str::from_utf8(&self.body).expect("UTF-8 body")).expect("JSON body")
    }

    fn cache(&self) -> Option<&str> {
        self.headers.get("x-t2v-cache").map(String::as_str)
    }

    fn error_code(&self) -> String {
        self.json()
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .expect("structured error code")
            .to_string()
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> Reply {
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer
            .write_all(raw.as_bytes())
            .expect("write request");
        self.read_reply().expect("read response")
    }

    fn translate_at(&mut self, path: &str, nlq: &str, db: &str) -> Reply {
        let body = Json::obj([("nlq", Json::str(nlq)), ("db", Json::str(db))]).compact();
        self.request("POST", path, &body)
    }

    fn read_reply(&mut self) -> Option<Reply> {
        let mut line = String::new();
        if self.reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let status: u16 = line.split(' ').nth(1)?.parse().ok()?;
        let mut headers = HashMap::new();
        loop {
            line.clear();
            self.reader.read_line(&mut line).ok()?;
            let t = line.trim_end();
            if t.is_empty() {
                break;
            }
            let (k, v) = t.split_once(':')?;
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
        let len: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body).ok()?;
        Some(Reply {
            status,
            headers,
            body,
        })
    }
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("t2v-tenants-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write a tenant's conventionally-named snapshot into `dir`.
fn write_tenant_snapshot(dir: &std::path::Path, id: &str, corpus_spec: &str) -> TenantSpec {
    let spec = TenantSpec {
        id: id.to_string(),
        corpus: parse_corpus_spec(corpus_spec).unwrap(),
    };
    let corpus = generate(&spec.corpus.corpus_config());
    let built = t2v_store::LibrarySource::Build
        .resolve(&corpus, &t2v_embed::EmbedConfig::default())
        .unwrap();
    t2v_store::save(
        dir.join(snapshot_filename(&spec)),
        &built.library,
        &built.embedder,
    )
    .unwrap();
    spec
}

/// Spawn a gred-only server with the given extra knobs.
fn spawn_server(tweaks: &[(&str, &str)]) -> Server {
    let mut config = ServeConfig::default();
    config.set("addr", "127.0.0.1:0").unwrap();
    config.set("backends", "gred").unwrap();
    for (k, v) in tweaks {
        config.set(k, v).unwrap();
    }
    let state = Arc::new(ServerState::build(config).expect("state builds"));
    Server::spawn(state).expect("bind loopback")
}

/// Dev examples (nlq, db id) of a corpus spec.
fn dev_examples(corpus_spec: &str, n: usize) -> Vec<(String, String)> {
    let corpus = generate(&parse_corpus_spec(corpus_spec).unwrap().corpus_config());
    corpus
        .dev
        .iter()
        .take(n)
        .map(|ex| (ex.nlq.clone(), corpus.databases[ex.db].id.clone()))
        .collect()
}

// ---------------------------------------------------------------------------
// the tests
// ---------------------------------------------------------------------------

/// The acceptance bar: a server booted from a two-snapshot catalog answers
/// `/v1/t/{a}/translate` and `/v1/t/{b}/translate` with responses
/// byte-identical to single-tenant servers built from each snapshot alone
/// — and the default tenant's unprefixed surface is untouched.
#[test]
fn two_snapshot_catalog_matches_single_tenant_servers_byte_for_byte() {
    let dir = temp_dir("catalog");
    write_tenant_snapshot(&dir, "acme", "tiny:8");
    write_tenant_snapshot(&dir, "globex", "tiny:11");
    let dir_str = dir.to_str().unwrap().to_string();

    let multi = spawn_server(&[("tenant_dir", &dir_str)]);
    let mut mc = Client::connect(&multi);

    // The table lists default + both catalog tenants, snapshot-sourced.
    let listed = mc.request("GET", "/v1/admin/tenants", "").json();
    let tenants = listed.get("tenants").and_then(Json::as_arr).unwrap();
    let ids: Vec<&str> = tenants
        .iter()
        .map(|t| t.get("id").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(ids, vec!["default", "acme", "globex"]);
    for t in &tenants[1..] {
        assert_eq!(t.get("source").and_then(Json::as_str), Some("snapshot"));
    }

    for (tenant, corpus_spec, snap_name) in [
        ("acme", "tiny:8", "acme@tiny-8.t2vsnap"),
        ("globex", "tiny:11", "globex@tiny-11.t2vsnap"),
    ] {
        // A single-tenant server over the same corpus, loading the same
        // snapshot through the pre-tenant knobs.
        let snap_path = dir.join(snap_name);
        let single = spawn_server(&[
            ("corpus", corpus_spec),
            ("library_snapshot", snap_path.to_str().unwrap()),
        ]);
        let mut sc = Client::connect(&single);
        for (nlq, db) in dev_examples(corpus_spec, 6) {
            let multi_reply = mc.translate_at(&format!("/v1/t/{tenant}/translate"), &nlq, &db);
            let single_reply = sc.translate_at("/v1/translate", &nlq, &db);
            assert_eq!(
                multi_reply.status,
                200,
                "{tenant}: {:?}",
                multi_reply.json()
            );
            assert_eq!(single_reply.status, 200);
            assert_eq!(
                multi_reply.body, single_reply.body,
                "tenant '{tenant}' diverged from its single-tenant server on {nlq:?}"
            );
        }
        // The tenant-scoped backends listing names the tenant and carries
        // the snapshot provenance.
        let b = mc
            .request("GET", &format!("/v1/t/{tenant}/backends"), "")
            .json();
        assert_eq!(b.get("tenant").and_then(Json::as_str), Some(tenant));
        assert_eq!(
            b.get("library")
                .and_then(|l| l.get("source"))
                .and_then(Json::as_str),
            Some("snapshot")
        );
        single.shutdown();
    }

    // The default tenant still serves the unprefixed routes normally.
    let (nlq, db) = dev_examples("tiny:7", 1).remove(0);
    let r = mc.translate_at("/v1/translate", &nlq, &db);
    assert_eq!(r.status, 200);

    multi.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Same NLQ against two tenants with different schemas: two distinct cold
/// translations, distinct cache entries, zero cross-tenant hits.
#[test]
fn cross_tenant_cache_isolation() {
    let server = spawn_server(&[("tenants", "acme:tiny:8,globex:tiny:11")]);
    let mut c = Client::connect(&server);

    // Both tiny corpora share database ids, so the same (nlq, db) pair is
    // valid for both tenants — the sharpest isolation probe.
    let (nlq, db) = dev_examples("tiny:8", 1).remove(0);

    let a1 = c.translate_at("/v1/t/acme/translate", &nlq, &db);
    assert_eq!(a1.status, 200);
    assert_eq!(a1.cache(), Some("miss"));
    let a2 = c.translate_at("/v1/t/acme/translate", &nlq, &db);
    assert_eq!(a2.cache(), Some("hit"));
    assert_eq!(a2.body, a1.body, "hit must be byte-identical to the miss");

    // The same question to the other tenant MUST be a cold miss (its own
    // schema, its own library), never a cross-tenant hit.
    let g1 = c.translate_at("/v1/t/globex/translate", &nlq, &db);
    assert_eq!(g1.status, 200);
    assert_eq!(g1.cache(), Some("miss"), "cache leaked across tenants");
    let g2 = c.translate_at("/v1/t/globex/translate", &nlq, &db);
    assert_eq!(g2.cache(), Some("hit"));
    assert_eq!(g2.body, g1.body);

    // And the default tenant's identical question is again its own entry.
    let d1 = c.translate_at("/v1/translate", &nlq, &db);
    assert_eq!(d1.cache(), Some("miss"));

    // Per-tenant metrics agree: exactly one hit per tenant that repeated,
    // none anywhere else.
    let text = String::from_utf8(c.request("GET", "/metrics", "").body).unwrap();
    assert!(text.contains("t2v_tenant_cache_hits_total{tenant=\"acme\"} 1"));
    assert!(text.contains("t2v_tenant_cache_misses_total{tenant=\"acme\"} 1"));
    assert!(text.contains("t2v_tenant_cache_hits_total{tenant=\"globex\"} 1"));
    assert!(text.contains("t2v_tenant_cache_hits_total{tenant=\"default\"} 0"));
    assert!(text.contains("t2v_tenant_translations_total{tenant=\"acme\"} 1"));
    assert!(text.contains("t2v_tenants 3"));
    server.shutdown();
}

/// Attach and detach while translations are in flight: no 5xx ever, the
/// detached tenant's in-flight work completes, and subsequent requests get
/// the structured 404.
#[test]
fn attach_and_detach_under_concurrent_inflight_translations() {
    // Slow translations (10 ms) widen the attach/detach race window; a
    // roomy queue keeps overload 503s out of the picture so any 5xx is a
    // real tenancy bug.
    let server = spawn_server(&[
        ("tenants", "acme:tiny:8"),
        ("cache_capacity", "0"),
        ("queue_capacity", "256"),
        ("debug_translate_sleep_ms", "10"),
    ]);
    let examples = dev_examples("tiny:8", 8);
    let served = AtomicU64::new(0);
    let gone = AtomicU64::new(0);

    std::thread::scope(|s| {
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let examples = &examples;
                let server = &server;
                let served = &served;
                let gone = &gone;
                s.spawn(move || {
                    let mut client = Client::connect(server);
                    for i in 0..12 {
                        let (nlq, db) = &examples[(w * 5 + i) % examples.len()];
                        let r = client.translate_at("/v1/t/acme/translate", nlq, db);
                        match r.status {
                            200 => {
                                served.fetch_add(1, Ordering::Relaxed);
                            }
                            404 => {
                                // Only the structured unknown_tenant error
                                // is acceptable, and only post-detach.
                                assert_eq!(r.error_code(), "unknown_tenant");
                                gone.fetch_add(1, Ordering::Relaxed);
                            }
                            other => panic!("unexpected status {other} mid-detach"),
                        }
                    }
                })
            })
            .collect();

        // Let translations get in flight, then mutate the table under them.
        std::thread::sleep(Duration::from_millis(30));
        let mut admin = Client::connect(&server);
        let attach = admin.request(
            "POST",
            "/v1/admin/tenants/attach",
            "{\"id\": \"hotco\", \"corpus\": \"tiny:13\"}",
        );
        assert_eq!(attach.status, 200, "{:?}", attach.json());
        let detach = admin.request("DELETE", "/v1/admin/tenants/detach", "{\"id\": \"acme\"}");
        assert_eq!(detach.status, 200);
        for h in workers {
            h.join().unwrap();
        }
    });

    assert!(
        served.load(Ordering::Relaxed) > 0,
        "some acme translations must have served before the detach"
    );

    let mut c = Client::connect(&server);
    // acme is gone: structured 404. hotco (attached mid-flight) serves.
    let r = c.translate_at("/v1/t/acme/translate", &examples[0].0, &examples[0].1);
    assert_eq!(r.status, 404);
    assert_eq!(r.error_code(), "unknown_tenant");
    let (nlq, db) = dev_examples("tiny:13", 1).remove(0);
    let r = c.translate_at("/v1/t/hotco/translate", &nlq, &db);
    assert_eq!(
        r.status,
        200,
        "hot-attached tenant must serve: {:?}",
        r.json()
    );

    // The detached tenant's metrics family is dropped; hotco's exists.
    let text = String::from_utf8(c.request("GET", "/metrics", "").body).unwrap();
    assert!(!text.contains("tenant=\"acme\""));
    assert!(text.contains("t2v_tenant_translations_total{tenant=\"hotco\"} 1"));
    server.shutdown();
}

/// The admin surface validates input and keeps the table consistent.
#[test]
fn admin_attach_detach_validation_and_backend_hot_registration() {
    let server = spawn_server(&[]);
    let mut c = Client::connect(&server);

    // Malformed attaches: missing fields, bad id grammar, reserved id,
    // bad corpus, unknown backends.
    for (body, status) in [
        ("{}", 400),
        ("{\"id\": \"x\"}", 400),
        ("{\"id\": \"Bad Id\", \"corpus\": \"tiny:8\"}", 400),
        ("{\"id\": \"default\", \"corpus\": \"tiny:8\"}", 400),
        ("{\"id\": \"x\", \"corpus\": \"huge:1\"}", 400),
        (
            "{\"id\": \"x\", \"corpus\": \"tiny:8\", \"backends\": \"gpt99\"}",
            400,
        ),
    ] {
        let r = c.request("POST", "/v1/admin/tenants/attach", body);
        assert_eq!(r.status, status, "body {body}: {:?}", r.json());
    }
    // A missing snapshot path is a structured 422, not a fallback build —
    // an attach that names an artifact must load exactly that artifact.
    let r = c.request(
        "POST",
        "/v1/admin/tenants/attach",
        "{\"id\": \"x\", \"corpus\": \"tiny:8\", \"snapshot\": \"/no/such.t2vsnap\"}",
    );
    assert_eq!(r.status, 422);
    assert_eq!(r.error_code(), "snapshot_error");

    // Backend hot-registration: the attached tenant gets a *fresh registry*
    // with its own backend set — no restart, and a backend the default
    // tenant never registered.
    let r = c.request(
        "POST",
        "/v1/admin/tenants/attach",
        "{\"id\": \"rgv\", \"corpus\": \"tiny:8\", \"backends\": \"rgvisnet\"}",
    );
    assert_eq!(r.status, 200, "{:?}", r.json());
    let b = c.request("GET", "/v1/t/rgv/backends", "").json();
    let ids: Vec<&str> = b
        .get("backends")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|x| x.get("id").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(ids, vec!["rgvisnet"]);
    assert_eq!(b.get("default").and_then(Json::as_str), Some("rgvisnet"));
    let (nlq, db) = dev_examples("tiny:8", 1).remove(0);
    let t = c.translate_at("/v1/t/rgv/translate", &nlq, &db);
    assert_eq!(t.status, 200);
    assert_eq!(
        t.json().get("backend").and_then(Json::as_str),
        Some("rgvisnet")
    );

    // Duplicate attach → 409; detach unknown → 404; wrong methods → 405.
    let r = c.request(
        "POST",
        "/v1/admin/tenants/attach",
        "{\"id\": \"rgv\", \"corpus\": \"tiny:9\"}",
    );
    assert_eq!(r.status, 409);
    assert_eq!(r.error_code(), "duplicate_tenant");
    let r = c.request("DELETE", "/v1/admin/tenants/detach", "{\"id\": \"nope\"}");
    assert_eq!(r.status, 404);
    assert_eq!(r.error_code(), "unknown_tenant");
    assert_eq!(c.request("GET", "/v1/admin/tenants/attach", "").status, 405);
    assert_eq!(c.request("POST", "/v1/admin/tenants", "").status, 405);
    assert_eq!(
        c.request("POST", "/v1/admin/tenants/detach", "{\"id\": \"rgv\"}")
            .status,
        405,
        "detach is DELETE"
    );

    // Healthz counts the attached tenant.
    let h = c.request("GET", "/healthz", "").json();
    assert_eq!(h.get("tenants").and_then(Json::as_f64), Some(2.0));
    server.shutdown();
}

/// `tenants=` declarations without a catalog build their libraries; with a
/// catalog dir, the conventionally-named snapshot wins.
#[test]
fn declared_tenants_prefer_catalog_snapshots() {
    let dir = temp_dir("declared");
    write_tenant_snapshot(&dir, "acme", "tiny:8");
    let dir_str = dir.to_str().unwrap().to_string();

    // acme has a catalog snapshot → loaded; fresh has none → built.
    let server = spawn_server(&[
        ("tenants", "acme:tiny:8,fresh:tiny:9"),
        ("tenant_dir", &dir_str),
    ]);
    let mut c = Client::connect(&server);
    let listed = c.request("GET", "/v1/admin/tenants", "").json();
    let tenants = listed.get("tenants").and_then(Json::as_arr).unwrap();
    let source_of = |id: &str| {
        tenants
            .iter()
            .find(|t| t.get("id").and_then(Json::as_str) == Some(id))
            .and_then(|t| t.get("source"))
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    assert_eq!(source_of("acme").as_deref(), Some("snapshot"));
    assert_eq!(source_of("fresh").as_deref(), Some("built"));
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt conforming snapshot in the catalog fails startup loudly.
#[test]
fn corrupt_catalog_snapshot_fails_startup() {
    let dir = temp_dir("corrupt");
    std::fs::write(dir.join("acme@tiny-8.t2vsnap"), b"garbage").unwrap();
    let mut config = ServeConfig::default();
    config.set("addr", "127.0.0.1:0").unwrap();
    config.set("backends", "gred").unwrap();
    config.set("tenant_dir", dir.to_str().unwrap()).unwrap();
    let err = ServerState::build(config).err().expect("must not boot");
    let msg = err.to_string();
    assert!(msg.contains("acme@tiny-8.t2vsnap"), "got: {msg}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The startup-ordering satellite: a snapshot_save under a missing parent
/// fails at config-validation time (before any corpus/library work).
#[test]
fn broken_snapshot_save_fails_before_the_build() {
    let mut config = ServeConfig::default();
    config.set("addr", "127.0.0.1:0").unwrap();
    config.set("backends", "gred").unwrap();
    config
        .set("snapshot_save", "/no/such/dir/lib.t2vsnap")
        .unwrap();
    let started = std::time::Instant::now();
    let err = ServerState::build(config).err().expect("must not boot");
    assert!(matches!(err, t2v_serve::StartupError::Config(_)), "{err:?}");
    assert!(err.to_string().contains("snapshot_save"), "{err}");
    // Validation precedes generation/build: failure is near-instant even
    // though a full build takes visible time on this corpus.
    assert!(
        started.elapsed() < Duration::from_millis(250),
        "config validation must run before the expensive build, took {:?}",
        started.elapsed()
    );
}
