//! Event-driver integration tests: slow-loris and partial-read robustness
//! against the epoll connection layer, idle reaping, graceful drain, and the
//! differential contract — `net=event` answers byte-identically to
//! `net=threaded` for the same request bytes.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;
use t2v_corpus::{generate, CorpusConfig};
use t2v_engine::Json;
use t2v_fault::FaultPlan;
use t2v_serve::{ServeConfig, Server, ServerState};

static FAULTS: Mutex<()> = Mutex::new(());

/// Holds the global fault lock for one test and guarantees the plan is
/// disarmed however the test exits (the failure_domains.rs idiom).
struct FaultSession(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultSession {
    fn begin() -> FaultSession {
        FaultSession(FAULTS.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for FaultSession {
    fn drop(&mut self) {
        t2v_fault::disarm();
    }
}

/// Spawn a gred-only server over tiny(7); tweaks override anything
/// (including `net=threaded`).
fn spawn_server(tweaks: &[(&str, &str)]) -> (t2v_corpus::Corpus, Server) {
    let corpus = generate(&CorpusConfig::tiny(7));
    let server = spawn_over(&corpus, tweaks);
    (corpus, server)
}

fn spawn_over(corpus: &t2v_corpus::Corpus, tweaks: &[(&str, &str)]) -> Server {
    let mut config = ServeConfig::default();
    config.set("addr", "127.0.0.1:0").unwrap();
    config.set("backends", "gred").unwrap();
    for (k, v) in tweaks {
        config.set(k, v).unwrap();
    }
    let state = Arc::new(ServerState::from_corpus(corpus, config).expect("state builds"));
    Server::spawn(state).expect("bind loopback")
}

fn db0(corpus: &t2v_corpus::Corpus) -> String {
    corpus.databases[0].id.clone()
}

fn translate_raw(nlq: &str, db: &str, close: bool) -> Vec<u8> {
    let body = Json::obj([("nlq", Json::str(nlq)), ("db", Json::str(db))]).compact();
    request_raw("POST", "/v1/translate", &body, close)
}

fn request_raw(method: &str, path: &str, body: &str, close: bool) -> Vec<u8> {
    let conn = if close { "Connection: close\r\n" } else { "" };
    format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\n{conn}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

/// Send one raw request on a fresh connection and read until the server
/// closes — the whole response, exactly as it hit the wire.
fn roundtrip_to_eof(server: &Server, raw: &[u8]) -> Vec<u8> {
    let mut stream = connect(server);
    stream.write_all(raw).expect("write request");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read to eof");
    out
}

fn status_of(bytes: &[u8]) -> u16 {
    let line = bytes.split(|&b| b == b'\n').next().unwrap_or(&[]);
    std::str::from_utf8(line)
        .ok()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Normalise the per-request volatility out of a raw response: the
/// `x-t2v-trace-id` header (random id per request) and NDJSON stage
/// `"micros"` timings. Everything else must match byte-for-byte.
fn scrub(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len());
    let mut rest = bytes;
    while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
        let (line, tail) = rest.split_at(nl + 1);
        if !line.to_ascii_lowercase().starts_with(b"x-t2v-trace-id:") {
            out.extend_from_slice(line);
        }
        rest = tail;
    }
    out.extend_from_slice(rest);
    scrub_micros(&out)
}

fn scrub_micros(bytes: &[u8]) -> Vec<u8> {
    const KEY: &[u8] = b"\"micros\":";
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i..].starts_with(KEY) {
            out.extend_from_slice(KEY);
            out.push(b'0');
            i += KEY.len();
            while i < bytes.len()
                && matches!(bytes[i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                i += 1;
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    out
}

fn metrics_text(server: &Server) -> String {
    let raw = roundtrip_to_eof(server, &request_raw("GET", "/metrics", "", true));
    String::from_utf8_lossy(&raw).into_owned()
}

// ---------------------------------------------------------------------------
// slow-loris and partial reads
// ---------------------------------------------------------------------------

#[test]
fn byte_at_a_time_request_still_gets_a_full_answer() {
    let (corpus, server) = spawn_server(&[]);
    let raw = translate_raw("show all wages", &db0(&corpus), true);
    let mut stream = connect(&server);
    // A well-behaved but glacial client: one byte per write, with a real
    // pause every few bytes so the loop sees many partial reads.
    for (i, b) in raw.iter().enumerate() {
        stream.write_all(std::slice::from_ref(b)).expect("write");
        if i % 24 == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read");
    assert_eq!(status_of(&out), 200, "{}", String::from_utf8_lossy(&out));
    server.shutdown();
}

#[test]
fn truncated_head_then_close_answers_400() {
    let (_corpus, server) = spawn_server(&[]);
    let mut stream = connect(&server);
    stream
        .write_all(b"POST /v1/translate HTTP/1.1\r\nHost: te")
        .unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read");
    assert_eq!(status_of(&out), 400, "{}", String::from_utf8_lossy(&out));
    assert!(
        String::from_utf8_lossy(&out).contains("truncated request"),
        "{}",
        String::from_utf8_lossy(&out)
    );
    server.shutdown();
}

#[test]
fn truncated_body_then_close_is_dropped_silently() {
    let (_corpus, server) = spawn_server(&[]);
    let mut stream = connect(&server);
    // Full head promising 100 body bytes, then half the body and FIN: the
    // request can never complete, and there is no meaningful status to send
    // a peer that stopped mid-body — the server just drops the connection.
    stream
        .write_all(
            b"POST /v1/translate HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n\r\n{\"nlq\":",
        )
        .unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read");
    assert!(
        out.is_empty(),
        "expected silent close, got {}",
        String::from_utf8_lossy(&out)
    );
    server.shutdown();
}

#[test]
fn immediate_close_without_bytes_is_not_an_error() {
    let (_corpus, server) = spawn_server(&[]);
    for _ in 0..3 {
        let stream = connect(&server);
        drop(stream);
    }
    // The server survives and still answers.
    let raw = roundtrip_to_eof(&server, &request_raw("GET", "/healthz", "", true));
    assert_eq!(status_of(&raw), 200);
    server.shutdown();
}

#[test]
fn idle_keep_alive_connections_are_reaped() {
    let (corpus, server) = spawn_server(&[("conn_idle_ms", "150")]);
    let mut stream = connect(&server);
    stream
        .write_all(&translate_raw("show all wages", &db0(&corpus), false))
        .unwrap();
    // Read the keep-alive response head (don't close — go idle instead).
    let mut buf = [0u8; 4096];
    let n = stream.read(&mut buf).expect("first read");
    assert_eq!(status_of(&buf[..n]), 200);

    // Well past the idle budget the server must close from its side.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("reaped close");
    let metrics = metrics_text(&server);
    assert!(
        metrics.contains("t2v_conn_reaped_total 1"),
        "missing reap counter in:\n{metrics}"
    );
    server.shutdown();
}

#[test]
fn graceful_drain_finishes_in_flight_requests() {
    let _session = FaultSession::begin();
    let (corpus, server) = spawn_server(&[]);
    let db = db0(&corpus);
    // Armed only after startup, and on the one-shot write-stall point: it
    // fires exactly once per response, so the in-flight window is a known
    // ~600 ms (an embed-latency plan would fire per embed call and could
    // push the request past the drain budget).
    t2v_fault::arm(&FaultPlan::parse("seed=29;conn.write_stall:ms=600").unwrap());
    let raw = translate_raw("show wages during drain", &db, true);
    let addr = server.addr();
    let worker = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.write_all(&raw).expect("write");
        let mut out = Vec::new();
        stream.read_to_end(&mut out).expect("read");
        out
    });
    // Let the request reach the backend (it stalls there for ~400 ms), then
    // shut down mid-flight: drain must deliver the finished response rather
    // than resetting the socket.
    std::thread::sleep(Duration::from_millis(120));
    server.shutdown();
    let out = worker.join().expect("client thread");
    assert_eq!(status_of(&out), 200, "{}", String::from_utf8_lossy(&out));
}

// ---------------------------------------------------------------------------
// differential: net=event ≡ net=threaded
// ---------------------------------------------------------------------------

#[test]
fn event_and_threaded_drivers_answer_byte_identically() {
    let corpus = generate(&CorpusConfig::tiny(7));
    let event = spawn_over(&corpus, &[("net", "event")]);
    let threaded = spawn_over(&corpus, &[("net", "threaded")]);
    let db = db0(&corpus);

    let translate = Json::obj([
        ("nlq", Json::str("show all wages by year")),
        ("db", Json::str(&db)),
    ])
    .compact();
    let batch = Json::obj([(
        "requests",
        Json::Arr(vec![
            Json::obj([("nlq", Json::str("count singers")), ("db", Json::str(&db))]),
            Json::obj([("nlq", Json::str("missing db")), ("db", Json::str("nope"))]),
        ]),
    )])
    .compact();
    let stream_req = Json::obj([
        ("nlq", Json::str("show all wages by year")),
        ("db", Json::str(&db)),
        ("backend", Json::str("gred")),
        ("stream", Json::Bool(true)),
    ])
    .compact();

    // Each case is one raw request; both servers see the identical bytes and
    // must answer with identical bytes (volatile trace id / stage timings
    // scrubbed). Order matters — cache state evolves identically on both.
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("healthz", request_raw("GET", "/healthz", "", true)),
        ("backends", request_raw("GET", "/v1/backends", "", true)),
        (
            "translate-cold",
            request_raw("POST", "/v1/translate", &translate, true),
        ),
        (
            "translate-hit",
            request_raw("POST", "/v1/translate", &translate, true),
        ),
        (
            "malformed-json",
            request_raw("POST", "/v1/translate", "{\"nlq\": ", true),
        ),
        ("not-found", request_raw("GET", "/v1/nope", "", true)),
        (
            "legacy-redirect",
            request_raw("POST", "/translate", &translate, true),
        ),
        (
            "batch",
            request_raw("POST", "/v1/translate/batch", &batch, true),
        ),
        (
            "ndjson-stream",
            request_raw("POST", "/v1/translate", &stream_req, true),
        ),
        (
            "method-not-allowed",
            request_raw("GET", "/v1/translate", "", true),
        ),
    ];
    for (name, raw) in &cases {
        let a = scrub(&roundtrip_to_eof(&event, raw));
        let b = scrub(&roundtrip_to_eof(&threaded, raw));
        assert_eq!(
            a,
            b,
            "case {name} diverged:\n--- event ---\n{}\n--- threaded ---\n{}",
            String::from_utf8_lossy(&a),
            String::from_utf8_lossy(&b)
        );
        assert!(status_of(&a) > 0, "case {name} produced no status line");
    }

    // Truncated head: both drivers must produce the same 400 on half-close.
    let truncated: &[u8] = b"POST /v1/translate HT";
    let half_close = |server: &Server| {
        let mut stream = connect(server);
        stream.write_all(truncated).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).expect("read");
        out
    };
    let a = scrub(&half_close(&event));
    let b = scrub(&half_close(&threaded));
    assert_eq!(status_of(&a), 400);
    assert_eq!(a, b, "truncated-head case diverged");

    // Keep-alive pipelining: three requests on one connection, the last one
    // closing — the full multi-response byte stream must match.
    let mut pipelined = Vec::new();
    pipelined.extend_from_slice(&request_raw("POST", "/v1/translate", &translate, false));
    pipelined.extend_from_slice(&request_raw("GET", "/v1/backends", "", false));
    pipelined.extend_from_slice(&request_raw("GET", "/healthz", "", true));
    let a = scrub(&roundtrip_to_eof(&event, &pipelined));
    let b = scrub(&roundtrip_to_eof(&threaded, &pipelined));
    assert_eq!(
        a,
        b,
        "pipelined case diverged:\n--- event ---\n{}\n--- threaded ---\n{}",
        String::from_utf8_lossy(&a),
        String::from_utf8_lossy(&b)
    );

    event.shutdown();
    threaded.shutdown();
}
