//! Ops-plane integration tests: a real loopback server with the sampler,
//! SLO engine, and stage profiler running. Fault arming is process-global
//! and so is the trace stack-export flag, so every test serialises on the
//! `FAULTS` lock and disarms on drop (the failure_domains.rs discipline).

use std::collections::HashMap;
use std::io::{BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use t2v_corpus::{generate, CorpusConfig};
use t2v_engine::Json;
use t2v_serve::{ServeConfig, Server, ServerState};

static FAULTS: Mutex<()> = Mutex::new(());

/// Holds the global fault lock for one test and guarantees the plan is
/// disarmed however the test exits.
struct FaultSession(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultSession {
    fn begin() -> FaultSession {
        FaultSession(FAULTS.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for FaultSession {
    fn drop(&mut self) {
        t2v_fault::disarm();
    }
}

struct Reply {
    status: u16,
    body: Vec<u8>,
}

impl Reply {
    fn json(&self) -> Json {
        Json::parse(std::str::from_utf8(&self.body).expect("UTF-8 body")).expect("JSON body")
    }

    fn text(&self) -> String {
        String::from_utf8(self.body.clone()).expect("UTF-8 body")
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> Reply {
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer
            .write_all(raw.as_bytes())
            .expect("write request");
        self.read_reply().expect("read response")
    }

    fn translate(&mut self, nlq: &str, db: &str) -> Reply {
        let body = Json::obj([
            ("nlq", Json::str(nlq)),
            ("db", Json::str(db)),
            ("backend", Json::str("gred")),
        ])
        .compact();
        self.request("POST", "/v1/translate", &body)
    }

    fn read_reply(&mut self) -> Option<Reply> {
        use std::io::BufRead as _;
        let mut line = String::new();
        if self.reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let status: u16 = line.split(' ').nth(1)?.parse().ok()?;
        let mut headers = HashMap::new();
        loop {
            line.clear();
            self.reader.read_line(&mut line).ok()?;
            let t = line.trim_end();
            if t.is_empty() {
                break;
            }
            let (k, v) = t.split_once(':')?;
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
        let len: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body).ok()?;
        Some(Reply { status, body })
    }
}

/// Spawn a gred-only server over tiny(7); tweaks override anything.
fn spawn_server(tweaks: &[(&str, &str)]) -> (t2v_corpus::Corpus, Server) {
    let corpus = generate(&CorpusConfig::tiny(7));
    let mut config = ServeConfig::default();
    config.set("addr", "127.0.0.1:0").unwrap();
    config.set("backends", "gred").unwrap();
    for (k, v) in tweaks {
        config.set(k, v).unwrap();
    }
    let state = Arc::new(ServerState::from_corpus(&corpus, config).expect("state builds"));
    let server = Server::spawn(state).expect("bind loopback");
    (corpus, server)
}

fn db0(corpus: &t2v_corpus::Corpus) -> String {
    corpus.databases[0].id.clone()
}

/// One SLO entry out of `/v1/admin/alerts` by name.
fn slo_entry(alerts: &Json, name: &str) -> Option<Json> {
    alerts
        .get("slos")?
        .as_arr()?
        .iter()
        .find_map(|s| (s.get("name").and_then(Json::as_str) == Some(name)).then(|| s.clone()))
}

// ---------------------------------------------------------------------------
// SLO burn-rate alerting, end to end
// ---------------------------------------------------------------------------

/// A `backend.error` storm must push the availability fast-window burn over
/// the threshold and fire the alert with coherent budget math; disarming
/// the fault and sending clean traffic must clear it (the fast window
/// recovers first — exactly the Google-SRE multi-window behaviour the
/// engine implements).
#[test]
fn availability_alert_fires_on_error_storm_and_clears_after_disarm() {
    let _session = FaultSession::begin();
    let log_path = std::env::temp_dir().join(format!("t2v-obs-e2e-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let (corpus, server) = spawn_server(&[
        ("obs_sample_ms", "25"),
        ("obs_profile_hz", "0"),
        ("slo", "availability:0.999"),
        ("slo_fast_s", "1"),
        ("slo_slow_s", "3"),
        // The breaker will open under the storm (its fast-fail 503s are
        // 5xx too, so the burn math is unaffected); a short open window
        // lets the post-disarm probe close it quickly.
        ("breaker_open_ms", "100"),
        ("access_log", log_path.to_str().unwrap()),
        ("fault_plan", "seed=31;backend.error:backend=gred"),
    ]);
    let db = db0(&corpus);
    let mut client = Client::connect(&server);

    // Storm failing requests until the alert fires: every translate is an
    // injected 500 (or, once the breaker opens, a fast-fail 503 — 5xx
    // either way). The interleaved alert polls are 200s, which only
    // dilutes — never zeroes — the error fraction.
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut firing = None;
    let mut i = 0u32;
    while firing.is_none() {
        assert!(Instant::now() < deadline, "alert never fired");
        for _ in 0..10 {
            let r = client.translate(&format!("show wages storm {i}"), &db);
            assert!(r.status >= 500, "stormed requests fail: {}", r.status);
            i += 1;
        }
        let alerts = client.request("GET", "/v1/admin/alerts", "");
        assert_eq!(alerts.status, 200);
        let parsed = alerts.json();
        let slo = slo_entry(&parsed, "availability").expect("availability SLO listed");
        if slo.get("firing").and_then(Json::as_bool) == Some(true) {
            firing = Some((parsed, slo));
        }
    }
    let (alerts, slo) = firing.unwrap();

    // Budget math: a near-total error storm against a 0.1% budget burns
    // orders of magnitude over the 14.4x page threshold, and the slow
    // window (also storming) has overspent the budget outright.
    assert_eq!(alerts.get("firing").and_then(Json::as_f64), Some(1.0));
    let fast = slo.get("fast_burn").and_then(Json::as_f64).unwrap();
    let slow = slo.get("slow_burn").and_then(Json::as_f64).unwrap();
    let remaining = slo.get("budget_remaining").and_then(Json::as_f64).unwrap();
    assert!(fast > 100.0, "storm fast burn should dwarf 14.4x: {fast}");
    assert!(slow > 14.4, "firing requires the slow window too: {slow}");
    assert!(remaining < 0.0, "storm overspends the budget: {remaining}");

    // The burn gauges ride the existing Prometheus surface.
    let metrics = client.request("GET", "/metrics", "").text();
    assert!(metrics.contains("t2v_slo_burn_rate{slo=\"availability\",window=\"fast\"}"));
    assert!(metrics.contains("t2v_slo_burn_rate{slo=\"availability\",window=\"slow\"}"));
    assert!(metrics.contains("t2v_slo_error_budget_remaining{slo=\"availability\"}"));

    // Disarm and send clean traffic: the fast window drains within ~1s and
    // the alert clears (the slow window may still be over threshold). The
    // first few replies can still be breaker 503s until its probe closes
    // it, so only the clearing itself is asserted.
    t2v_fault::disarm();
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        assert!(Instant::now() < deadline, "alert never cleared");
        for _ in 0..10 {
            client.translate(&format!("show wages clean {i}"), &db);
            i += 1;
        }
        let alerts = client.request("GET", "/v1/admin/alerts", "").json();
        let slo = slo_entry(&alerts, "availability").expect("availability SLO listed");
        if slo.get("firing").and_then(Json::as_bool) == Some(false) {
            break;
        }
    }

    // Both state flips landed in the access log as structured lines.
    server.shutdown();
    let log = std::fs::read_to_string(&log_path).expect("access log readable");
    let flips: Vec<&str> = log
        .lines()
        .filter(|l| l.contains("\"event\":\"slo-transition\""))
        .collect();
    assert!(
        flips.iter().any(|l| l.contains("\"firing\":true")),
        "fire transition logged:\n{log}"
    );
    assert!(
        flips.iter().any(|l| l.contains("\"firing\":false")),
        "clear transition logged:\n{log}"
    );
    let _ = std::fs::remove_file(&log_path);
}

// ---------------------------------------------------------------------------
// stage-occupancy profiler, end to end
// ---------------------------------------------------------------------------

/// With an `embed.latency` fault armed, worker threads spend their time
/// inside the embed stage — the profile over the loaded window must be
/// dominated by a folded stack ending in `embed`.
#[test]
fn profile_under_embed_latency_fault_is_dominated_by_the_embed_stage() {
    let _session = FaultSession::begin();
    let (corpus, server) = spawn_server(&[
        ("obs_sample_ms", "50"),
        ("obs_profile_hz", "997"),
        ("trace_sample", "1"),
        ("fault_plan", "seed=32;embed.latency:ms=60"),
    ]);
    let db = db0(&corpus);
    let mut client = Client::connect(&server);

    // Cache-missing translations, each parked tens of ms per embed call
    // inside the embed span: seconds of load for the ~1kHz sampler, with
    // the injected stall dwarfing GRED's real compute.
    for i in 0..15 {
        let r = client.translate(&format!("show wages profiled {i}"), &db);
        assert_eq!(r.status, 200);
    }

    let profile = client.request("GET", "/v1/admin/profile?seconds=30", "");
    assert_eq!(profile.status, 200);
    let folded = profile.text();
    let mut total = 0u64;
    let mut embed = 0u64;
    let mut best: Option<(&str, u64)> = None;
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded `stack count` line");
        let count: u64 = count.parse().expect("sample count");
        total += count;
        if stack.ends_with("embed") {
            embed += count;
        }
        if best.is_none_or(|(_, c)| count > c) {
            best = Some((stack, count));
        }
    }
    assert!(total > 0, "profiler sampled nothing:\n{folded}");
    // The worker's stack is `request;backend.translate;embed` for the whole
    // injected stall; the only comparable occupancy is the dispatch thread
    // parked at `request` waiting on the worker. Embed must hold a dominant
    // share and be the deepest-stack leader.
    assert!(
        embed * 4 >= total,
        "embed stage should dominate the profile:\n{folded}"
    );
    let deepest = folded
        .lines()
        .filter(|l| l.contains(';'))
        .max_by_key(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap());
    assert!(
        deepest.is_some_and(|l| l.contains("embed")),
        "dominant multi-stage stack should be the embed stall:\n{folded}"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------------
// the TSDB admin surface
// ---------------------------------------------------------------------------

/// The TSDB endpoint serves an index and windowed per-series queries while
/// sampling, and the whole ops surface 404s cleanly when switched off.
#[test]
fn tsdb_endpoint_serves_series_and_the_ops_surface_gates_on_its_knobs() {
    let _session = FaultSession::begin();
    let (corpus, server) = spawn_server(&[("obs_sample_ms", "25"), ("obs_profile_hz", "0")]);
    let db = db0(&corpus);
    let mut client = Client::connect(&server);
    for i in 0..3 {
        assert_eq!(
            client.translate(&format!("show wages {i}"), &db).status,
            200
        );
    }

    // Poll the index until the sampler has swept at least once.
    let deadline = Instant::now() + Duration::from_secs(5);
    let series = loop {
        let index = client.request("GET", "/v1/admin/tsdb", "");
        assert_eq!(index.status, 200);
        let parsed = index.json();
        let names: Vec<String> = parsed
            .get("series")
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(|s| Json::as_str(s).map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        if !names.is_empty() {
            break names;
        }
        assert!(Instant::now() < deadline, "sampler never swept");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(series.iter().any(|s| s == "http.requests"), "{series:?}");
    assert!(
        series.iter().any(|s| s == "request_seconds.bucket:inf"),
        "{series:?}"
    );

    // A windowed query returns points plus delta/rate over the window.
    std::thread::sleep(Duration::from_millis(60)); // at least two samples
    let q = client.request(
        "GET",
        "/v1/admin/tsdb?series=http.requests&window=60&step=1",
        "",
    );
    assert_eq!(q.status, 200);
    let parsed = q.json();
    let points = parsed.get("points").and_then(Json::as_arr).unwrap().len();
    assert!(points >= 2, "expected >=2 points, got {points}");
    assert!(parsed.get("delta").and_then(Json::as_f64).is_some());
    assert!(parsed.get("rate").and_then(Json::as_f64).is_some());

    // Unknown series and malformed windows answer structured errors.
    assert_eq!(
        client
            .request("GET", "/v1/admin/tsdb?series=no.such", "")
            .status,
        404
    );
    assert_eq!(
        client
            .request("GET", "/v1/admin/tsdb?series=http.requests&window=0", "")
            .status,
        400
    );
    // No SLOs configured and no profiler: those surfaces say so.
    assert_eq!(client.request("GET", "/v1/admin/alerts", "").status, 404);
    assert_eq!(client.request("GET", "/v1/admin/profile", "").status, 404);

    // The status page carries the event-loop census satellite.
    let status = client.request("GET", "/v1/admin/status", "").json();
    let event = status.get("event").expect("event section");
    assert_eq!(event.get("draining").and_then(Json::as_bool), Some(false));
    assert!(event.get("keep_alive").and_then(Json::as_f64).is_some());
    server.shutdown();

    // With both cadence knobs zero there is no ops plane at all.
    let (_, server) = spawn_server(&[("obs_sample_ms", "0"), ("obs_profile_hz", "0")]);
    let mut client = Client::connect(&server);
    assert_eq!(client.request("GET", "/v1/admin/tsdb", "").status, 404);
    assert_eq!(client.request("GET", "/v1/admin/alerts", "").status, 404);
    assert_eq!(client.request("GET", "/v1/admin/profile", "").status, 404);
    server.shutdown();
}
