//! Loopback integration tests: spawn the real server on an OS-assigned port
//! and drive it over real sockets — concurrency, caching byte-identity,
//! malformed input, and deterministic overload.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use t2v_corpus::{generate, CorpusConfig};
use t2v_engine::Json;
use t2v_serve::{ServeConfig, Server, ServerState};

// ---------------------------------------------------------------------------
// tiny test client
// ---------------------------------------------------------------------------

struct Reply {
    status: u16,
    headers: HashMap<String, String>,
    body: Vec<u8>,
}

impl Reply {
    fn json(&self) -> Json {
        Json::parse(std::str::from_utf8(&self.body).expect("UTF-8 body")).expect("JSON body")
    }

    fn cache(&self) -> Option<&str> {
        self.headers.get("x-t2v-cache").map(String::as_str)
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send_raw(&mut self, raw: &[u8]) -> Reply {
        self.writer.write_all(raw).expect("write request");
        self.read_reply().expect("read response")
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> Reply {
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.send_raw(raw.as_bytes())
    }

    fn translate(&mut self, nlq: &str, db: &str) -> Reply {
        let body = Json::obj([("nlq", Json::str(nlq)), ("db", Json::str(db))]).compact();
        self.request("POST", "/translate", &body)
    }

    fn read_reply(&mut self) -> Option<Reply> {
        let mut line = String::new();
        if self.reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let status: u16 = line.split(' ').nth(1)?.parse().ok()?;
        let mut headers = HashMap::new();
        loop {
            line.clear();
            self.reader.read_line(&mut line).ok()?;
            let t = line.trim_end();
            if t.is_empty() {
                break;
            }
            let (k, v) = t.split_once(':')?;
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
        let len: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body).ok()?;
        Some(Reply {
            status,
            headers,
            body,
        })
    }
}

fn spawn_server(tweaks: &[(&str, &str)]) -> (t2v_corpus::Corpus, Server) {
    let corpus = generate(&CorpusConfig::tiny(7));
    let mut config = ServeConfig::default();
    config.set("addr", "127.0.0.1:0").unwrap();
    for (k, v) in tweaks {
        config.set(k, v).unwrap();
    }
    let state = Arc::new(ServerState::from_corpus(&corpus, config));
    let server = Server::spawn(state).expect("bind loopback");
    (corpus, server)
}

// ---------------------------------------------------------------------------
// the tests
// ---------------------------------------------------------------------------

#[test]
fn concurrent_clients_get_parseable_dvqs_and_byte_identical_cache_hits() {
    let (corpus, server) = spawn_server(&[]);
    let examples: Vec<(String, String)> = corpus
        .dev
        .iter()
        .take(12)
        .map(|ex| (ex.nlq.clone(), corpus.databases[ex.db].id.clone()))
        .collect();

    // Fan 6 clients over the examples concurrently; each asks every query
    // twice on a keep-alive connection.
    type KeyedBodies = Vec<(String, Vec<u8>, Vec<u8>)>;
    let outputs: Vec<KeyedBodies> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|c| {
                let examples = &examples;
                let server = &server;
                s.spawn(move || {
                    let mut client = Client::connect(server);
                    let mut seen = Vec::new();
                    for (nlq, db) in examples
                        .iter()
                        .skip(c * 2)
                        .chain(examples.iter().take(c * 2))
                    {
                        let first = client.translate(nlq, db);
                        assert_eq!(first.status, 200, "body: {:?}", first.json());
                        let second = client.translate(nlq, db);
                        assert_eq!(second.status, 200);
                        // The repeat is served from cache…
                        assert_eq!(second.cache(), Some("hit"));
                        seen.push((format!("{db}/{nlq}"), first.body, second.body));
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // …and cache hits are byte-identical to the translation that filled the
    // entry — across *all* clients, not just within one connection.
    let mut canonical: HashMap<String, Vec<u8>> = HashMap::new();
    for per_client in outputs {
        for (key, first, second) in per_client {
            assert_eq!(first, second, "hit differs from miss for {key}");
            let entry = canonical
                .entry(key.clone())
                .or_insert_with(|| first.clone());
            assert_eq!(*entry, first, "clients disagree for {key}");
            // Every response carries a parseable DVQ (or an explicit error).
            let doc = Json::parse(std::str::from_utf8(&first).unwrap()).unwrap();
            match doc.get("dvq") {
                Some(Json::Str(dvq)) => {
                    t2v_dvq::parse(dvq).expect("served DVQ must parse");
                }
                _ => {
                    doc.get("error").expect("null dvq must carry an error");
                }
            }
        }
    }
    server.shutdown();
}

#[test]
fn malformed_requests_get_4xx_and_the_server_survives() {
    let (corpus, server) = spawn_server(&[]);
    let db = corpus.databases[0].id.clone();
    let mut c = Client::connect(&server);

    // Bad JSON → 400 (connection stays usable: these are clean requests).
    let r = c.request("POST", "/translate", "{\"nlq\": ");
    assert_eq!(r.status, 400);
    assert!(r.json().get("error").is_some());
    // Missing fields → 400.
    assert_eq!(c.request("POST", "/translate", "{}").status, 400);
    assert_eq!(
        c.request("POST", "/translate", "{\"nlq\": \"show wages\"}")
            .status,
        400
    );
    // Wrong types → 400.
    let bad_veg = format!("{{\"nlq\": \"x\", \"db\": \"{db}\", \"vegalite\": \"yes\"}}");
    assert_eq!(c.request("POST", "/translate", &bad_veg).status, 400);
    // Whitespace-only NLQ → 400.
    let blank = format!("{{\"nlq\": \"  \", \"db\": \"{db}\"}}");
    assert_eq!(c.request("POST", "/translate", &blank).status, 400);
    // Unknown database → 404 with a useful message.
    let r = c.translate("show wages", "no_such_db");
    assert_eq!(r.status, 404);
    assert!(r
        .json()
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("no_such_db"));
    // Unknown route → 404; wrong method on a real route → 405.
    assert_eq!(c.request("GET", "/nope", "").status, 404);
    assert_eq!(c.request("GET", "/translate", "").status, 405);
    assert_eq!(c.request("POST", "/healthz", "").status, 405);

    // Broken HTTP framing → 400, server closes that connection only.
    let mut broken = Client::connect(&server);
    let r = broken.send_raw(b"NONSENSE\r\n\r\n");
    assert_eq!(r.status, 400);
    // Oversized body → 413 (body never allocated).
    let mut big = Client::connect(&server);
    let r = big.send_raw(b"POST /translate HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n");
    assert_eq!(r.status, 413);

    // After all of that, the server still translates and reports healthy.
    let mut fresh = Client::connect(&server);
    assert_eq!(fresh.request("GET", "/healthz", "").status, 200);
    let ok = fresh.translate(&corpus.dev[0].nlq, &corpus.databases[corpus.dev[0].db].id);
    assert_eq!(ok.status, 200);
    server.shutdown();
}

#[test]
fn overload_sheds_with_503_instead_of_queueing() {
    // One throttled worker (150 ms per translation), a queue of one, no
    // cache: with 8 simultaneous requests, at most 2 can be in the system —
    // the rest MUST see 503 + Retry-After.
    let (corpus, server) = spawn_server(&[
        ("workers", "1"),
        ("shards", "1"),
        ("queue_capacity", "1"),
        ("cache_capacity", "0"),
        ("batch", "off"),
        ("debug_translate_sleep_ms", "150"),
    ]);
    let statuses: Vec<(u16, bool)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let corpus = &corpus;
                let server = &server;
                s.spawn(move || {
                    let mut client = Client::connect(server);
                    let ex = &corpus.dev[i % 4];
                    let r = client.translate(&ex.nlq, &corpus.databases[ex.db].id);
                    let retry_after = r.headers.contains_key("retry-after");
                    (r.status, retry_after)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok = statuses.iter().filter(|(s, _)| *s == 200).count();
    let shed = statuses.iter().filter(|(s, _)| *s == 503).count();
    assert_eq!(ok + shed, 8, "only 200s and 503s expected: {statuses:?}");
    assert!(ok >= 1, "at least one request must be served");
    assert!(shed >= 1, "overload must shed at least one request");
    for (status, retry_after) in &statuses {
        if *status == 503 {
            assert!(retry_after, "503 must carry Retry-After");
        }
    }
    server.shutdown();
}

#[test]
fn healthz_and_metrics_reflect_traffic() {
    let (corpus, server) = spawn_server(&[]);
    let mut c = Client::connect(&server);

    let health = c.request("GET", "/healthz", "");
    assert_eq!(health.status, 200);
    let doc = health.json();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        doc.get("databases").and_then(Json::as_f64),
        Some(corpus.databases.len() as f64)
    );
    assert_eq!(
        doc.get("library").and_then(Json::as_f64),
        Some(corpus.train.len() as f64)
    );

    let ex = &corpus.dev[0];
    let db = &corpus.databases[ex.db].id;
    assert_eq!(c.translate(&ex.nlq, db).cache(), Some("miss"));
    assert_eq!(c.translate(&ex.nlq, db).cache(), Some("hit"));
    assert_eq!(c.translate("", "").status, 400);

    let metrics = c.request("GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).unwrap();
    assert!(text.contains("t2v_http_requests_total{route=\"translate\",status=\"2xx\"} 2"));
    assert!(text.contains("t2v_http_requests_total{route=\"translate\",status=\"4xx\"} 1"));
    assert!(text.contains("t2v_cache_hits_total 1"));
    assert!(text.contains("t2v_cache_misses_total 1"));
    assert!(text.contains("t2v_translate_seconds_count 1"));
    assert!(text.contains("t2v_connections_active 1"));
    server.shutdown();
}

#[test]
fn vegalite_responses_execute_and_cache_separately() {
    let (corpus, server) = spawn_server(&[]);
    let ex = &corpus.dev[0];
    let db = corpus.databases[ex.db].id.clone();
    let mut c = Client::connect(&server);
    let body = Json::obj([
        ("nlq", Json::str(ex.nlq.as_str())),
        ("db", Json::str(db.as_str())),
        ("vegalite", Json::Bool(true)),
    ])
    .compact();
    let with_spec = c.request("POST", "/translate", &body);
    assert_eq!(with_spec.status, 200);
    let doc = with_spec.json();
    let spec = doc.get("vegalite").expect("vegalite requested");
    if !matches!(spec, Json::Null) {
        assert!(spec.get("mark").is_some(), "spec has a mark: {spec:?}");
    } else {
        doc.get("vegalite_error").expect("null spec carries why");
    }
    // The plain variant is a *different* cache entry (response shape is part
    // of the key) and must still be a miss.
    let plain = c.translate(&ex.nlq, &db);
    assert_eq!(plain.cache(), Some("miss"));
    assert!(plain.json().get("vegalite").is_none());
    // And repeating the vegalite request hits its own entry byte-for-byte.
    let again = c.request("POST", "/translate", &body);
    assert_eq!(again.cache(), Some("hit"));
    assert_eq!(again.body, with_spec.body);
    server.shutdown();
}

#[test]
fn normalized_nlq_variants_share_one_cache_entry() {
    let (corpus, server) = spawn_server(&[]);
    let ex = &corpus.dev[1];
    let db = corpus.databases[ex.db].id.clone();
    let mut c = Client::connect(&server);
    let first = c.translate(&ex.nlq, &db);
    assert_eq!(first.cache(), Some("miss"));
    let shouty = format!("  {}  ", ex.nlq.to_uppercase());
    let second = c.translate(&shouty, &db);
    assert_eq!(
        second.cache(),
        Some("hit"),
        "case/whitespace variants normalise to one key"
    );
    assert_eq!(second.body, first.body);
    server.shutdown();
}
