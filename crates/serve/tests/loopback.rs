//! Loopback integration tests: spawn the real server on an OS-assigned port
//! and drive it over real sockets — concurrency, caching byte-identity,
//! multi-backend routing, streaming, malformed input, and deterministic
//! overload.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use t2v_corpus::{generate, CorpusConfig};
use t2v_engine::Json;
use t2v_serve::{ServeConfig, Server, ServerState};

// ---------------------------------------------------------------------------
// tiny test client
// ---------------------------------------------------------------------------

struct Reply {
    status: u16,
    headers: HashMap<String, String>,
    body: Vec<u8>,
}

impl Reply {
    fn json(&self) -> Json {
        Json::parse(std::str::from_utf8(&self.body).expect("UTF-8 body")).expect("JSON body")
    }

    fn cache(&self) -> Option<&str> {
        self.headers.get("x-t2v-cache").map(String::as_str)
    }

    /// The structured error envelope's (code, message).
    fn error(&self) -> (String, String) {
        let doc = self.json();
        let err = doc.get("error").expect("error object");
        (
            err.get("code").and_then(Json::as_str).unwrap().to_string(),
            err.get("message")
                .and_then(Json::as_str)
                .unwrap()
                .to_string(),
        )
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send_raw(&mut self, raw: &[u8]) -> Reply {
        self.writer.write_all(raw).expect("write request");
        self.read_reply().expect("read response")
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> Reply {
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.send_raw(raw.as_bytes())
    }

    fn translate(&mut self, nlq: &str, db: &str) -> Reply {
        let body = Json::obj([("nlq", Json::str(nlq)), ("db", Json::str(db))]).compact();
        self.request("POST", "/v1/translate", &body)
    }

    fn translate_with_backend(&mut self, nlq: &str, db: &str, backend: &str) -> Reply {
        let body = Json::obj([
            ("nlq", Json::str(nlq)),
            ("db", Json::str(db)),
            ("backend", Json::str(backend)),
        ])
        .compact();
        self.request("POST", "/v1/translate", &body)
    }

    /// Send a streaming translate request and read NDJSON lines until EOF.
    fn translate_streamed(mut self, nlq: &str, db: &str, backend: &str) -> (u16, Vec<Json>) {
        let body = Json::obj([
            ("nlq", Json::str(nlq)),
            ("db", Json::str(db)),
            ("backend", Json::str(backend)),
            ("stream", Json::Bool(true)),
        ])
        .compact();
        let raw = format!(
            "POST /v1/translate HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(raw.as_bytes()).expect("write");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line.split(' ').nth(1).unwrap().parse().unwrap();
        // Headers until blank line; streaming responses have no
        // Content-Length and announce Connection: close.
        let mut saw_close = false;
        loop {
            line.clear();
            self.reader.read_line(&mut line).unwrap();
            let t = line.trim_end();
            if t.is_empty() {
                break;
            }
            if t.eq_ignore_ascii_case("connection: close") {
                saw_close = true;
            }
            assert!(
                !t.to_ascii_lowercase().starts_with("content-length"),
                "streaming responses are EOF-delimited"
            );
        }
        assert!(saw_close, "streaming responses close the connection");
        let mut lines = Vec::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            let t = line.trim_end();
            if !t.is_empty() {
                lines.push(Json::parse(t).expect("NDJSON line"));
            }
        }
        (status, lines)
    }

    fn read_reply(&mut self) -> Option<Reply> {
        let mut line = String::new();
        if self.reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let status: u16 = line.split(' ').nth(1)?.parse().ok()?;
        let mut headers = HashMap::new();
        loop {
            line.clear();
            self.reader.read_line(&mut line).ok()?;
            let t = line.trim_end();
            if t.is_empty() {
                break;
            }
            let (k, v) = t.split_once(':')?;
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
        let len: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body).ok()?;
        Some(Reply {
            status,
            headers,
            body,
        })
    }
}

/// Spawn a server over the tiny(7) corpus. The helper registers only the
/// GRED backend by default (baseline training is exercised by the dedicated
/// multi-backend test, not by every spawn); tweaks override anything.
fn spawn_server(tweaks: &[(&str, &str)]) -> (t2v_corpus::Corpus, Server) {
    let corpus = generate(&CorpusConfig::tiny(7));
    let mut config = ServeConfig::default();
    config.set("addr", "127.0.0.1:0").unwrap();
    config.set("backends", "gred").unwrap();
    for (k, v) in tweaks {
        config.set(k, v).unwrap();
    }
    let state = Arc::new(ServerState::from_corpus(&corpus, config).expect("state builds"));
    let server = Server::spawn(state).expect("bind loopback");
    (corpus, server)
}

// ---------------------------------------------------------------------------
// the tests
// ---------------------------------------------------------------------------

#[test]
fn concurrent_clients_get_parseable_dvqs_and_byte_identical_cache_hits() {
    let (corpus, server) = spawn_server(&[]);
    let examples: Vec<(String, String)> = corpus
        .dev
        .iter()
        .take(12)
        .map(|ex| (ex.nlq.clone(), corpus.databases[ex.db].id.clone()))
        .collect();

    // Fan 6 clients over the examples concurrently; each asks every query
    // twice on a keep-alive connection.
    type KeyedBodies = Vec<(String, Vec<u8>, Vec<u8>)>;
    let outputs: Vec<KeyedBodies> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|c| {
                let examples = &examples;
                let server = &server;
                s.spawn(move || {
                    let mut client = Client::connect(server);
                    let mut seen = Vec::new();
                    for (nlq, db) in examples
                        .iter()
                        .skip(c * 2)
                        .chain(examples.iter().take(c * 2))
                    {
                        let first = client.translate(nlq, db);
                        assert_eq!(first.status, 200, "body: {:?}", first.json());
                        let second = client.translate(nlq, db);
                        assert_eq!(second.status, 200);
                        // The repeat is served from cache…
                        assert_eq!(second.cache(), Some("hit"));
                        seen.push((format!("{db}/{nlq}"), first.body, second.body));
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // …and cache hits are byte-identical to the translation that filled the
    // entry — across *all* clients, not just within one connection.
    let mut canonical: HashMap<String, Vec<u8>> = HashMap::new();
    for per_client in outputs {
        for (key, first, second) in per_client {
            assert_eq!(first, second, "hit differs from miss for {key}");
            let entry = canonical
                .entry(key.clone())
                .or_insert_with(|| first.clone());
            assert_eq!(*entry, first, "clients disagree for {key}");
            // Every response carries a parseable DVQ (or a structured
            // error object).
            let doc = Json::parse(std::str::from_utf8(&first).unwrap()).unwrap();
            match doc.get("dvq") {
                Some(Json::Str(dvq)) => {
                    t2v_dvq::parse(dvq).expect("served DVQ must parse");
                }
                _ => {
                    let err = doc.get("error").expect("null dvq must carry an error");
                    err.get("code").expect("structured code");
                }
            }
        }
    }
    server.shutdown();
}

#[test]
fn malformed_requests_get_structured_4xx_and_the_server_survives() {
    let (corpus, server) = spawn_server(&[]);
    let db = corpus.databases[0].id.clone();
    let mut c = Client::connect(&server);

    // Bad JSON → 400 (connection stays usable: these are clean requests).
    let r = c.request("POST", "/v1/translate", "{\"nlq\": ");
    assert_eq!(r.status, 400);
    assert_eq!(r.error().0, "bad_request");
    // Missing fields → 400.
    assert_eq!(c.request("POST", "/v1/translate", "{}").status, 400);
    assert_eq!(
        c.request("POST", "/v1/translate", "{\"nlq\": \"show wages\"}")
            .status,
        400
    );
    // Wrong types → 400.
    let bad_veg = format!("{{\"nlq\": \"x\", \"db\": \"{db}\", \"vegalite\": \"yes\"}}");
    assert_eq!(c.request("POST", "/v1/translate", &bad_veg).status, 400);
    let bad_stream = format!("{{\"nlq\": \"x\", \"db\": \"{db}\", \"stream\": 7}}");
    assert_eq!(c.request("POST", "/v1/translate", &bad_stream).status, 400);
    let bad_backend = format!("{{\"nlq\": \"x\", \"db\": \"{db}\", \"backend\": 3}}");
    assert_eq!(c.request("POST", "/v1/translate", &bad_backend).status, 400);
    // Whitespace-only NLQ → 400 with the taxonomy code.
    let blank = format!("{{\"nlq\": \"  \", \"db\": \"{db}\"}}");
    let r = c.request("POST", "/v1/translate", &blank);
    assert_eq!(r.status, 400);
    assert_eq!(r.error().0, "empty_query");
    // Unknown database → 404 with a useful structured message.
    let r = c.translate("show wages", "no_such_db");
    assert_eq!(r.status, 404);
    let (code, message) = r.error();
    assert_eq!(code, "unknown_database");
    assert!(message.contains("no_such_db"));
    // Unknown backend → 404 listing what is registered.
    let r = c.translate_with_backend("show wages", &db, "gpt99");
    assert_eq!(r.status, 404);
    let (code, message) = r.error();
    assert_eq!(code, "unknown_backend");
    assert!(message.contains("gpt99") && message.contains("gred"));
    // Unknown route → 404; wrong method on a real route → 405.
    assert_eq!(c.request("GET", "/nope", "").status, 404);
    assert_eq!(c.request("GET", "/v1/translate", "").status, 405);
    assert_eq!(c.request("GET", "/v1/translate/batch", "").status, 405);
    assert_eq!(c.request("POST", "/v1/backends", "").status, 405);
    assert_eq!(c.request("POST", "/healthz", "").status, 405);

    // Broken HTTP framing → 400, server closes that connection only.
    let mut broken = Client::connect(&server);
    let r = broken.send_raw(b"NONSENSE\r\n\r\n");
    assert_eq!(r.status, 400);
    // Oversized body → 413 (body never allocated).
    let mut big = Client::connect(&server);
    let r = big.send_raw(b"POST /v1/translate HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n");
    assert_eq!(r.status, 413);

    // After all of that, the server still translates and reports healthy.
    let mut fresh = Client::connect(&server);
    assert_eq!(fresh.request("GET", "/healthz", "").status, 200);
    let ok = fresh.translate(&corpus.dev[0].nlq, &corpus.databases[corpus.dev[0].db].id);
    assert_eq!(ok.status, 200);
    server.shutdown();
}

#[test]
fn overload_sheds_with_503_instead_of_queueing() {
    // One throttled worker (150 ms per translation), a queue of one, no
    // cache: with 8 simultaneous requests, at most 2 can be in the system —
    // the rest MUST see 503 + Retry-After.
    let (corpus, server) = spawn_server(&[
        ("workers", "1"),
        ("shards", "1"),
        ("queue_capacity", "1"),
        ("cache_capacity", "0"),
        ("batch", "off"),
        ("debug_translate_sleep_ms", "150"),
    ]);
    let statuses: Vec<(u16, bool)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let corpus = &corpus;
                let server = &server;
                s.spawn(move || {
                    let mut client = Client::connect(server);
                    let ex = &corpus.dev[i % 4];
                    let r = client.translate(&ex.nlq, &corpus.databases[ex.db].id);
                    let retry_after = r.headers.contains_key("retry-after");
                    (r.status, retry_after)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok = statuses.iter().filter(|(s, _)| *s == 200).count();
    let shed = statuses.iter().filter(|(s, _)| *s == 503).count();
    assert_eq!(ok + shed, 8, "only 200s and 503s expected: {statuses:?}");
    assert!(ok >= 1, "at least one request must be served");
    assert!(shed >= 1, "overload must shed at least one request");
    for (status, retry_after) in &statuses {
        if *status == 503 {
            assert!(retry_after, "503 must carry Retry-After");
        }
    }
    server.shutdown();
}

#[test]
fn healthz_and_metrics_reflect_traffic() {
    let (corpus, server) = spawn_server(&[("cache_shards", "4")]);
    let mut c = Client::connect(&server);

    let health = c.request("GET", "/healthz", "");
    assert_eq!(health.status, 200);
    let doc = health.json();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        doc.get("databases").and_then(Json::as_f64),
        Some(corpus.databases.len() as f64)
    );
    assert_eq!(
        doc.get("library").and_then(Json::as_f64),
        Some(corpus.train.len() as f64)
    );
    assert_eq!(doc.get("backends").and_then(Json::as_f64), Some(1.0));

    let ex = &corpus.dev[0];
    let db = &corpus.databases[ex.db].id;
    assert_eq!(c.translate(&ex.nlq, db).cache(), Some("miss"));
    assert_eq!(c.translate(&ex.nlq, db).cache(), Some("hit"));
    assert_eq!(c.translate("", "").status, 400);

    let metrics = c.request("GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).unwrap();
    assert!(text.contains("t2v_http_requests_total{route=\"translate\",status=\"2xx\"} 2"));
    assert!(text.contains("t2v_http_requests_total{route=\"translate\",status=\"4xx\"} 1"));
    assert!(text.contains("t2v_cache_hits_total 1"));
    assert!(text.contains("t2v_cache_misses_total 1"));
    assert!(text.contains("t2v_translate_seconds_count 1"));
    assert!(text.contains("t2v_connections_active 1"));
    // The sharded cache reports its shard count…
    assert!(text.contains("t2v_cache_shards 4"));
    // …and the per-backend families carry the registered label.
    assert!(text.contains("t2v_backend_translations_total{backend=\"gred\"} 1"));
    assert!(text.contains("t2v_backend_cache_hits_total{backend=\"gred\"} 1"));
    assert!(text.contains("t2v_backend_cache_misses_total{backend=\"gred\"} 1"));
    assert!(text.contains("t2v_backend_errors_total{backend=\"gred\"} 0"));
    server.shutdown();
}

#[test]
fn vegalite_responses_execute_and_cache_separately() {
    let (corpus, server) = spawn_server(&[]);
    let ex = &corpus.dev[0];
    let db = corpus.databases[ex.db].id.clone();
    let mut c = Client::connect(&server);
    let body = Json::obj([
        ("nlq", Json::str(ex.nlq.as_str())),
        ("db", Json::str(db.as_str())),
        ("vegalite", Json::Bool(true)),
    ])
    .compact();
    let with_spec = c.request("POST", "/v1/translate", &body);
    assert_eq!(with_spec.status, 200);
    let doc = with_spec.json();
    let spec = doc.get("vegalite").expect("vegalite requested");
    if !matches!(spec, Json::Null) {
        assert!(spec.get("mark").is_some(), "spec has a mark: {spec:?}");
    } else {
        doc.get("vegalite_error").expect("null spec carries why");
    }
    // The plain variant is a *different* cache entry (response shape is part
    // of the key) and must still be a miss.
    let plain = c.translate(&ex.nlq, &db);
    assert_eq!(plain.cache(), Some("miss"));
    assert!(plain.json().get("vegalite").is_none());
    // And repeating the vegalite request hits its own entry byte-for-byte.
    let again = c.request("POST", "/v1/translate", &body);
    assert_eq!(again.cache(), Some("hit"));
    assert_eq!(again.body, with_spec.body);
    server.shutdown();
}

#[test]
fn normalized_nlq_variants_share_one_cache_entry() {
    let (corpus, server) = spawn_server(&[]);
    let ex = &corpus.dev[1];
    let db = corpus.databases[ex.db].id.clone();
    let mut c = Client::connect(&server);
    let first = c.translate(&ex.nlq, &db);
    assert_eq!(first.cache(), Some("miss"));
    let shouty = format!("  {}  ", ex.nlq.to_uppercase());
    let second = c.translate(&shouty, &db);
    assert_eq!(
        second.cache(),
        Some("hit"),
        "case/whitespace variants normalise to one key"
    );
    assert_eq!(second.body, first.body);
    server.shutdown();
}

#[test]
fn legacy_translate_route_is_deprecated() {
    // Default policy: 308 Permanent Redirect at the new surface.
    let (corpus, server) = spawn_server(&[]);
    let ex = &corpus.dev[0];
    let body = Json::obj([
        ("nlq", Json::str(ex.nlq.as_str())),
        ("db", Json::str(corpus.databases[ex.db].id.as_str())),
    ])
    .compact();
    let mut c = Client::connect(&server);
    let r = c.request("POST", "/translate", &body);
    assert_eq!(r.status, 308);
    assert_eq!(
        r.headers.get("location").map(String::as_str),
        Some("/v1/translate")
    );
    let (code, message) = r.error();
    assert_eq!(code, "deprecated");
    assert!(message.contains("/v1/translate"));
    // The same request against /v1/translate still works.
    assert_eq!(c.request("POST", "/v1/translate", &body).status, 200);
    server.shutdown();

    // Gone policy: 410 (Location still advertises the replacement).
    let (_, server) = spawn_server(&[("legacy_translate", "gone")]);
    let mut c = Client::connect(&server);
    let r = c.request("POST", "/translate", &body);
    assert_eq!(r.status, 410);
    assert_eq!(r.error().0, "deprecated");
    assert_eq!(
        r.headers.get("location").map(String::as_str),
        Some("/v1/translate")
    );
    server.shutdown();
}

#[test]
fn batch_endpoint_preserves_order_and_inlines_item_errors() {
    let (corpus, server) = spawn_server(&[]);
    let mut c = Client::connect(&server);
    let ex0 = &corpus.dev[0];
    let ex1 = &corpus.dev[1];
    let db0 = corpus.databases[ex0.db].id.clone();
    let db1 = corpus.databases[ex1.db].id.clone();

    let item = |nlq: &str, db: &str| Json::obj([("nlq", Json::str(nlq)), ("db", Json::str(db))]);
    let batch = Json::obj([(
        "requests",
        Json::Arr(vec![
            item(&ex0.nlq, &db0),
            item("anything", "no_such_db"),
            item(&ex1.nlq, &db1),
            // Duplicate of item 0: must be answered (one shared cold
            // translation, not two) with the identical body.
            item(&ex0.nlq, &db0),
        ]),
    )])
    .compact();
    let r = c.request("POST", "/v1/translate/batch", &batch);
    assert_eq!(r.status, 200);
    let doc = r.json();
    let results = doc.get("results").and_then(Json::as_arr).unwrap();
    assert_eq!(results.len(), 4);
    // Item 0 and 2 translated; item 1 is an inline structured error.
    assert!(results[0].get("dvq").and_then(Json::as_str).is_some());
    assert_eq!(
        results[1]
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("unknown_database")
    );
    assert!(results[2].get("nlq").is_some());
    assert_eq!(results[3].compact(), results[0].compact());

    // Batch results share cache entries with the single endpoint: asking
    // item 0 alone is a hit with byte-identical body.
    let single = c.translate(&ex0.nlq, &db0);
    assert_eq!(single.cache(), Some("hit"));
    assert_eq!(
        Json::parse(std::str::from_utf8(&single.body).unwrap())
            .unwrap()
            .compact(),
        results[0].compact()
    );

    // Envelope errors: empty and oversized request lists.
    let r = c.request("POST", "/v1/translate/batch", "{\"requests\": []}");
    assert_eq!(r.status, 400);
    let many: Vec<Json> = (0..65).map(|_| item(&ex0.nlq, &db0)).collect();
    let r = c.request(
        "POST",
        "/v1/translate/batch",
        &Json::obj([("requests", Json::Arr(many))]).compact(),
    );
    assert_eq!(r.status, 400);
    server.shutdown();
}

#[test]
fn streaming_emits_stages_then_the_cacheable_body() {
    let (corpus, server) = spawn_server(&[]);
    let ex = &corpus.dev[2];
    let db = corpus.databases[ex.db].id.clone();

    let (status, lines) = Client::connect(&server).translate_streamed(&ex.nlq, &db, "gred");
    assert_eq!(status, 200);
    assert!(
        lines.len() >= 2,
        "expected stage lines + final body, got {lines:?}"
    );
    // All but the last line are stage events, in pipeline order, carrying
    // timings (stream lines are not cached, so timings are allowed here).
    let stage_names: Vec<String> = lines[..lines.len() - 1]
        .iter()
        .map(|l| {
            let stage = l.get("stage").expect("stage line");
            assert!(stage.get("micros").is_some());
            stage
                .get("name")
                .and_then(Json::as_str)
                .unwrap()
                .to_string()
        })
        .collect();
    assert_eq!(stage_names, vec!["generator", "retuner", "debugger"]);
    let final_line = lines.last().unwrap();
    let streamed_dvq = final_line.get("dvq").and_then(Json::as_str).expect("dvq");
    t2v_dvq::parse(streamed_dvq).unwrap();

    // The final line is the same body a non-streamed request serves — and
    // the streamed translation populated the cache for it.
    let mut c = Client::connect(&server);
    let plain = c.translate(&ex.nlq, &db);
    assert_eq!(plain.status, 200);
    assert_eq!(plain.cache(), Some("hit"), "stream populated the cache");
    assert_eq!(plain.json().compact(), final_line.compact());
    server.shutdown();
}

#[test]
fn backend_weights_knob_classes_the_pool() {
    // Weighted: gred's in-system share is exported and bounded.
    let (_, server) = spawn_server(&[
        ("backend_weights", "gred:4"),
        ("workers", "2"),
        ("shards", "1"),
        ("queue_capacity", "8"),
    ]);
    let mut c = Client::connect(&server);
    let text = String::from_utf8(c.request("GET", "/metrics", "").body).unwrap();
    // total = 1 shard × 8 slots + 2 workers = 10; single registered class
    // with weight 4/4 gets all of it.
    assert!(
        text.contains("t2v_backend_pool_share{backend=\"gred\"} 10"),
        "pool share gauge missing: {text}"
    );
    server.shutdown();

    // Unweighted (default): the pool is unclassed — no share gauge (0).
    let (_, server) = spawn_server(&[("workers", "2"), ("shards", "1"), ("queue_capacity", "8")]);
    let mut c = Client::connect(&server);
    let text = String::from_utf8(c.request("GET", "/metrics", "").body).unwrap();
    assert!(text.contains("t2v_backend_pool_share{backend=\"gred\"} 0"));
    server.shutdown();
}

#[test]
fn snapshot_boot_serves_byte_identical_translations() {
    // The persistent-artifact acceptance path: build a server (write-through
    // snapshot), boot a second server from the snapshot, and require the
    // /v1 surface to be byte-identical between the two.
    let dir = std::env::temp_dir().join(format!("t2v-loopback-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("lib.t2vsnap");
    let snap_str = snap.to_str().unwrap().to_string();

    let (corpus, cold_server) = spawn_server(&[("snapshot_save", &snap_str)]);
    assert!(
        snap.exists(),
        "write-through must persist the built library"
    );
    t2v_store::verify(&snap).expect("write-through snapshot verifies");

    // Cold server reports built provenance; warm server reports snapshot.
    let mut c = Client::connect(&cold_server);
    let cold_backends = c.request("GET", "/v1/backends", "").json();
    let lib = cold_backends.get("library").expect("library object");
    assert_eq!(lib.get("source").and_then(Json::as_str), Some("built"));
    let fingerprint = lib
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("fingerprint")
        .to_string();
    assert!(fingerprint.starts_with("0x"));
    assert_eq!(
        lib.get("entries").and_then(Json::as_f64),
        Some(corpus.train.len() as f64)
    );

    let (_, warm_server) = spawn_server(&[("library_snapshot", &snap_str)]);
    let mut w = Client::connect(&warm_server);
    let warm_backends = w.request("GET", "/v1/backends", "").json();
    let warm_lib = warm_backends.get("library").unwrap();
    assert_eq!(
        warm_lib.get("source").and_then(Json::as_str),
        Some("snapshot")
    );
    assert_eq!(
        warm_lib.get("fingerprint").and_then(Json::as_str),
        Some(fingerprint.as_str()),
        "loaded artifact must carry the built fingerprint"
    );

    // Byte-identical translations (and Vega-Lite execution) across servers.
    for ex in corpus.dev.iter().take(8) {
        let db = &corpus.databases[ex.db].id;
        let body = Json::obj([
            ("nlq", Json::str(ex.nlq.as_str())),
            ("db", Json::str(db.as_str())),
            ("vegalite", Json::Bool(true)),
        ])
        .compact();
        let cold = c.request("POST", "/v1/translate", &body);
        let warm = w.request("POST", "/v1/translate", &body);
        assert_eq!(cold.status, 200);
        assert_eq!(warm.status, 200);
        assert_eq!(
            cold.body, warm.body,
            "snapshot-loaded server diverged on {:?}",
            ex.nlq
        );
    }

    // The warm server's metrics expose the provenance.
    let text = String::from_utf8(w.request("GET", "/metrics", "").body).unwrap();
    assert!(text.contains("source=\"snapshot\""));
    assert!(text.contains(&format!("fingerprint=\"{fingerprint}\"")));

    cold_server.shutdown();
    warm_server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn admin_snapshot_endpoint_persists_the_live_library() {
    let dir = std::env::temp_dir().join(format!("t2v-admin-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("admin.t2vsnap");
    let (corpus, server) = spawn_server(&[]);
    let mut c = Client::connect(&server);

    // No configured target and no body path: structured 400.
    let r = c.request("POST", "/v1/admin/snapshot", "");
    assert_eq!(r.status, 400);
    assert_eq!(r.error().0, "no_path");
    // Wrong method: 405.
    assert_eq!(c.request("GET", "/v1/admin/snapshot", "").status, 405);

    // Explicit path: the live library is persisted and verifiable.
    let body = Json::obj([("path", Json::str(snap.to_str().unwrap()))]).compact();
    let r = c.request("POST", "/v1/admin/snapshot", &body);
    assert_eq!(r.status, 200, "{:?}", r.json());
    let doc = r.json();
    assert_eq!(
        doc.get("entries").and_then(Json::as_f64),
        Some(corpus.train.len() as f64)
    );
    assert!(doc.get("bytes").and_then(Json::as_f64).unwrap() > 0.0);
    let manifest = t2v_store::verify(&snap).expect("admin snapshot verifies");
    assert_eq!(manifest.entries as usize, corpus.train.len());
    let text = String::from_utf8(c.request("GET", "/metrics", "").body).unwrap();
    assert!(text.contains("t2v_snapshots_written_total 1"));

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_snapshot_fails_startup_with_structured_error() {
    let dir = std::env::temp_dir().join(format!("t2v-corrupt-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("bad.t2vsnap");
    std::fs::write(&snap, b"NOTASNAPSHOT____definitely garbage").unwrap();

    let corpus = generate(&CorpusConfig::tiny(7));
    let mut config = ServeConfig::default();
    config.set("addr", "127.0.0.1:0").unwrap();
    config.set("backends", "gred").unwrap();
    config
        .set("library_snapshot", snap.to_str().unwrap())
        .unwrap();
    let err = ServerState::from_corpus(&corpus, config)
        .err()
        .expect("corrupt snapshot must not boot");
    let msg = err.to_string();
    assert!(
        msg.contains("not a t2v snapshot"),
        "diagnostic should name the cause, got: {msg}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multi_backend_registry_serves_every_backend_with_namespaced_caching() {
    // The full registry: GRED + the three paper baselines + the no-copy
    // seq2seq (trained with the fast profile — routing is what's under
    // test). This is the acceptance surface for the /v1 redesign.
    let (corpus, server) =
        spawn_server(&[("backends", "gred,seq2vis,transformer,rgvisnet,neural")]);
    let mut c = Client::connect(&server);

    // /v1/backends lists all five with capability metadata, default first.
    let r = c.request("GET", "/v1/backends", "");
    assert_eq!(r.status, 200);
    let doc = r.json();
    assert_eq!(doc.get("default").and_then(Json::as_str), Some("gred"));
    let listed = doc.get("backends").and_then(Json::as_arr).unwrap();
    assert!(
        listed.len() >= 4,
        "≥4 backends required, got {}",
        listed.len()
    );
    let ids: Vec<&str> = listed
        .iter()
        .map(|b| b.get("id").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(
        ids,
        vec!["gred", "seq2vis", "transformer", "rgvisnet", "neural"]
    );
    for b in listed {
        assert!(b.get("name").and_then(Json::as_str).is_some());
        assert!(b.get("kind").and_then(Json::as_str).is_some());
        assert!(!b.get("stages").and_then(Json::as_arr).unwrap().is_empty());
        assert!(b.get("deterministic").and_then(Json::as_bool).is_some());
    }
    let gred_info = &listed[0];
    assert_eq!(
        gred_info.get("kind").and_then(Json::as_str),
        Some("retrieval_augmented_llm")
    );

    // Every backend answers /v1/translate, deterministically, under its own
    // cache namespace.
    let ex = &corpus.dev[0];
    let db = corpus.databases[ex.db].id.clone();
    let mut bodies: Vec<Vec<u8>> = Vec::new();
    for id in &ids {
        let first = c.translate_with_backend(&ex.nlq, &db, id);
        assert_eq!(first.status, 200, "backend {id}: {:?}", first.json());
        assert_eq!(
            first.cache(),
            Some("miss"),
            "backend {id} must have its own cache namespace"
        );
        assert_eq!(
            first.headers.get("x-t2v-backend").map(String::as_str),
            Some(*id)
        );
        let doc = first.json();
        assert_eq!(doc.get("backend").and_then(Json::as_str), Some(*id));
        // Either a parseable DVQ or a structured taxonomy error.
        match doc.get("dvq") {
            Some(Json::Str(dvq)) => {
                t2v_dvq::parse(dvq)
                    .unwrap_or_else(|e| panic!("backend {id} served unparseable DVQ ({e}): {dvq}"));
            }
            _ => {
                let code = doc
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                    .expect("structured error");
                assert!(
                    ["no_output", "invalid_output", "internal"].contains(&code),
                    "backend {id}: unexpected code {code}"
                );
            }
        }
        // Repeat: cache hit, byte-identical.
        let second = c.translate_with_backend(&ex.nlq, &db, id);
        assert_eq!(second.cache(), Some("hit"));
        assert_eq!(second.body, first.body);
        bodies.push(first.body);
    }
    // Distinct backends produced distinct cache entries (bodies differ at
    // least in their backend field).
    for i in 0..bodies.len() {
        for j in (i + 1)..bodies.len() {
            assert_ne!(bodies[i], bodies[j], "backends {i} and {j} share bytes");
        }
    }

    // GRED through the registry serves exactly the raw pipeline's output
    // (the redesign must not perturb the paper's system).
    let served = Json::parse(std::str::from_utf8(&bodies[0]).unwrap()).unwrap();
    let legacy = server
        .state()
        .gred
        .translate(&t2v_serve::normalize_nlq(&ex.nlq), &corpus.databases[ex.db]);
    assert_eq!(
        served.get("dvq").and_then(Json::as_str),
        legacy.final_dvq(),
        "registry GRED must match the raw pipeline byte-for-byte"
    );

    // Per-backend metrics carry every label.
    let text = String::from_utf8(c.request("GET", "/metrics", "").body).unwrap();
    for id in &ids {
        assert!(
            text.contains(&format!(
                "t2v_backend_translations_total{{backend=\"{id}\"}} 1"
            )),
            "missing translation count for {id}"
        );
        assert!(text.contains(&format!(
            "t2v_backend_cache_hits_total{{backend=\"{id}\"}} 1"
        )));
    }
    server.shutdown();
}

#[test]
fn ann_forced_server_matches_flat_and_reports_its_index() {
    // Two servers over the same corpus: one exact flat scan, one forced
    // through the IVF index with every cell probed (full probe + exact
    // rescoring ⇒ the candidate sets agree on the whole served top-k, so
    // the translation bytes must match the flat server's exactly).
    let (corpus, flat) = spawn_server(&[]);
    let (_, ann) = spawn_server(&[("ann", "force"), ("ann_nprobe", "9999")]);
    let mut cf = Client::connect(&flat);
    let mut ca = Client::connect(&ann);
    for ex in corpus.dev.iter().take(8) {
        let db = corpus.databases[ex.db].id.clone();
        let a = cf.translate(&ex.nlq, &db);
        let b = ca.translate(&ex.nlq, &db);
        assert_eq!(a.status, 200);
        assert_eq!(b.status, 200);
        assert_eq!(
            a.body, b.body,
            "full-probe ANN must serve byte-identical translations ({})",
            ex.nlq
        );
    }

    // The admin surface attributes the index each tenant actually serves.
    let doc = ca.request("GET", "/v1/admin/status", "").json();
    let tenants = doc.get("tenants").and_then(Json::as_arr).unwrap().to_vec();
    let t = tenants[0].clone();
    let index = t.get("index").and_then(Json::as_str).unwrap().to_string();
    assert!(
        index.starts_with("ivf("),
        "forced tenant serves IVF: {index}"
    );
    assert_eq!(t.get("rows").and_then(Json::as_f64), Some(240.0));
    assert!(t.get("nprobe").and_then(Json::as_f64).unwrap() >= 1.0);
    let doc = cf.request("GET", "/v1/admin/status", "").json();
    let tenants = doc.get("tenants").and_then(Json::as_arr).unwrap().to_vec();
    assert_eq!(
        tenants[0].get("index").and_then(Json::as_str),
        Some("flat"),
        "default config stays on the exact scan"
    );

    flat.shutdown();
    ann.shutdown();
}
