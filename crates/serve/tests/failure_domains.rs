//! Failure-domain integration tests: arm deterministic fault plans against
//! a real loopback server and assert every failure mode yields a fast,
//! structured answer — never a hang, never a torn body. Fault arming is
//! process-global, so every test takes the `FAULTS` lock and disarms on
//! drop; this file stays a dedicated test binary for the same reason.

use std::collections::HashMap;
use std::io::{BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use t2v_corpus::{generate, CorpusConfig};
use t2v_engine::Json;
use t2v_fault::FaultPlan;
use t2v_serve::{ServeConfig, Server, ServerState};

// ---------------------------------------------------------------------------
// fault-plan serialisation
// ---------------------------------------------------------------------------

static FAULTS: Mutex<()> = Mutex::new(());

/// Holds the global fault lock for one test and guarantees the plan is
/// disarmed however the test exits.
struct FaultSession(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultSession {
    fn begin() -> FaultSession {
        FaultSession(FAULTS.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for FaultSession {
    fn drop(&mut self) {
        t2v_fault::disarm();
    }
}

// ---------------------------------------------------------------------------
// tiny test client (the loopback.rs idiom)
// ---------------------------------------------------------------------------

struct Reply {
    status: u16,
    headers: HashMap<String, String>,
    body: Vec<u8>,
}

impl Reply {
    fn json(&self) -> Json {
        Json::parse(std::str::from_utf8(&self.body).expect("UTF-8 body")).expect("JSON body")
    }

    fn error_code(&self) -> String {
        self.json()
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string()
    }

    fn degraded(&self) -> Option<String> {
        self.json()
            .get("degraded")
            .and_then(Json::as_str)
            .map(str::to_string)
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, method: &str, path: &str, extra_headers: &str, body: &str) -> Reply {
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\n{extra_headers}Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer
            .write_all(raw.as_bytes())
            .expect("write request");
        self.read_reply().expect("read response")
    }

    fn translate(&mut self, nlq: &str, db: &str, backend: &str) -> Reply {
        self.translate_with_headers(nlq, db, backend, "")
    }

    fn translate_with_headers(
        &mut self,
        nlq: &str,
        db: &str,
        backend: &str,
        extra_headers: &str,
    ) -> Reply {
        let body = Json::obj([
            ("nlq", Json::str(nlq)),
            ("db", Json::str(db)),
            ("backend", Json::str(backend)),
        ])
        .compact();
        self.request("POST", "/v1/translate", extra_headers, &body)
    }

    fn metrics(&mut self) -> String {
        let reply = self.request("GET", "/metrics", "", "");
        String::from_utf8(reply.body).expect("metrics are UTF-8")
    }

    fn read_reply(&mut self) -> Option<Reply> {
        use std::io::BufRead as _;
        let mut line = String::new();
        if self.reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let status: u16 = line.split(' ').nth(1)?.parse().ok()?;
        let mut headers = HashMap::new();
        loop {
            line.clear();
            self.reader.read_line(&mut line).ok()?;
            let t = line.trim_end();
            if t.is_empty() {
                break;
            }
            let (k, v) = t.split_once(':')?;
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
        let len: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body).ok()?;
        Some(Reply {
            status,
            headers,
            body,
        })
    }
}

/// Spawn a gred-only server over tiny(7) with fast-breaker defaults;
/// tweaks override anything (including arming a `fault_plan`).
fn spawn_server(tweaks: &[(&str, &str)]) -> (t2v_corpus::Corpus, Server) {
    let corpus = generate(&CorpusConfig::tiny(7));
    let mut config = ServeConfig::default();
    config.set("addr", "127.0.0.1:0").unwrap();
    config.set("backends", "gred").unwrap();
    for (k, v) in tweaks {
        config.set(k, v).unwrap();
    }
    let state = Arc::new(ServerState::from_corpus(&corpus, config).expect("state builds"));
    let server = Server::spawn(state).expect("bind loopback");
    (corpus, server)
}

fn db0(corpus: &t2v_corpus::Corpus) -> String {
    corpus.databases[0].id.clone()
}

// ---------------------------------------------------------------------------
// the tests
// ---------------------------------------------------------------------------

#[test]
fn injected_errors_are_structured_500s_and_open_the_breaker() {
    let _session = FaultSession::begin();
    let (corpus, server) = spawn_server(&[
        ("fault_plan", "seed=11;backend.error:backend=gred"),
        ("breaker_window", "4"),
        ("breaker_min_samples", "2"),
        ("breaker_threshold_pct", "50"),
        ("breaker_open_ms", "60000"),
        ("degrade_stale", "false"),
    ]);
    let db = db0(&corpus);
    let mut client = Client::connect(&server);

    // Every worker job errors: the first two are structured 500 `internal`
    // bodies (with the usual envelope fields), then the breaker is open
    // and requests fast-fail 503 `backend_unavailable` with Retry-After —
    // no request ever hangs or gets a torn body.
    for i in 0..2 {
        let reply = client.translate(&format!("show wages number {i}"), &db, "gred");
        assert_eq!(reply.status, 500, "request {i}");
        assert_eq!(reply.error_code(), "internal");
    }
    let rejected = client.translate("show wages rejected", &db, "gred");
    assert_eq!(rejected.status, 503);
    assert_eq!(rejected.error_code(), "backend_unavailable");
    assert!(
        rejected.headers.contains_key("retry-after"),
        "open-breaker rejections advertise Retry-After"
    );

    let metrics = client.metrics();
    assert!(
        metrics.contains("t2v_breaker_state{tenant=\"default\",backend=\"gred\"} 1"),
        "breaker gauge must read open:\n{metrics}"
    );
    assert!(metrics.contains("t2v_faults_injected_total{point=\"backend.error\"}"));
    assert!(metrics.contains("t2v_breaker_opens_total 1"));
    server.shutdown();
}

#[test]
fn breaker_recovers_through_a_probe_once_the_fault_budget_is_spent() {
    let _session = FaultSession::begin();
    let (corpus, server) = spawn_server(&[
        ("fault_plan", "seed=12;backend.error:backend=gred,count=2"),
        ("breaker_window", "4"),
        ("breaker_min_samples", "2"),
        ("breaker_threshold_pct", "50"),
        ("breaker_open_ms", "150"),
        ("degrade_stale", "false"),
    ]);
    let db = db0(&corpus);
    let mut client = Client::connect(&server);

    for i in 0..2 {
        assert_eq!(
            client
                .translate(&format!("show age {i}"), &db, "gred")
                .status,
            500
        );
    }
    assert_eq!(client.translate("show age open", &db, "gred").status, 503);

    // Cool-down elapses; the next request is the half-open probe. The
    // fault budget is spent, so it succeeds and closes the breaker.
    std::thread::sleep(Duration::from_millis(200));
    let probe = client.translate("show age probe", &db, "gred");
    assert_eq!(probe.status, 200, "probe: {}", probe.error_code());
    let healthy = client.translate("show age healthy", &db, "gred");
    assert_eq!(healthy.status, 200);
    let metrics = client.metrics();
    assert!(
        metrics.contains("t2v_breaker_state{tenant=\"default\",backend=\"gred\"} 0"),
        "breaker gauge must read closed again:\n{metrics}"
    );
    server.shutdown();
}

#[test]
fn deadlines_turn_slow_translations_into_fast_504s() {
    let _session = FaultSession::begin();
    let (corpus, server) = spawn_server(&[("debug_translate_sleep_ms", "400")]);
    let db = db0(&corpus);
    let mut client = Client::connect(&server);

    // The header lowers the (default 30 s) budget to 60 ms; the worker
    // sleeps 400 ms, so the wait expires and answers a structured 504 —
    // in far less time than the translation would have taken to matter.
    let t0 = Instant::now();
    let reply =
        client.translate_with_headers("show wages", &db, "gred", "X-T2V-Deadline-Ms: 60\r\n");
    assert_eq!(reply.status, 504);
    assert_eq!(reply.error_code(), "deadline_exceeded");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "a deadline must answer fast, took {:?}",
        t0.elapsed()
    );

    // The header can only lower the budget, never raise it past the knob.
    let (corpus2, server2) =
        spawn_server(&[("debug_translate_sleep_ms", "400"), ("deadline_ms", "60")]);
    let mut client2 = Client::connect(&server2);
    let reply2 = client2.translate_with_headers(
        "show wages",
        &db0(&corpus2),
        "gred",
        "X-T2V-Deadline-Ms: 60000\r\n",
    );
    assert_eq!(reply2.status, 504, "a header must not raise deadline_ms");
    let metrics = client2.metrics();
    assert!(metrics.contains("t2v_deadline_exceeded_total"));
    server.shutdown();
    server2.shutdown();
}

#[test]
fn worker_panics_answer_structured_errors_instead_of_hanging() {
    let _session = FaultSession::begin();
    let (corpus, server) = spawn_server(&[
        ("fault_plan", "seed=13;backend.panic:backend=gred,count=1"),
        ("breaker_window", "0"),
    ]);
    let db = db0(&corpus);
    let mut client = Client::connect(&server);

    // The injected panic unwinds the worker job; the reply guard answers
    // the caller with a structured 500 immediately — the old behaviour was
    // a 60 s timeout with a bare "translation timed out".
    let t0 = Instant::now();
    let reply = client.translate("show wages panic", &db, "gred");
    assert_eq!(reply.status, 500);
    assert_eq!(reply.error_code(), "internal");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "panic replies must be fast, took {:?}",
        t0.elapsed()
    );

    // The budget is spent: the pool survived and serves normally.
    let ok = client.translate("show wages recovered", &db, "gred");
    assert_eq!(ok.status, 200);
    let metrics = client.metrics();
    assert!(metrics.contains("t2v_worker_panics_total 1"), "{metrics}");
    server.shutdown();
}

#[test]
fn open_breaker_serves_marked_stale_cache_bodies() {
    let _session = FaultSession::begin();
    let (corpus, server) = spawn_server(&[
        ("cache_ttl_secs", "1"),
        ("breaker_window", "4"),
        ("breaker_min_samples", "2"),
        ("breaker_threshold_pct", "50"),
        ("breaker_open_ms", "60000"),
    ]);
    let db = db0(&corpus);
    let mut client = Client::connect(&server);

    // Warm the cache while healthy, then let the entry expire.
    let warm = client.translate("show all wages", &db, "gred");
    assert_eq!(warm.status, 200);
    assert!(warm.degraded().is_none());
    std::thread::sleep(Duration::from_millis(1100));

    // A fault storm opens the breaker: the warm 200 plus one failure puts
    // the rolling window at 50% errors, right on the threshold.
    t2v_fault::arm(&FaultPlan::parse("seed=14;backend.error:backend=gred").unwrap());
    assert_eq!(client.translate("show salary 0", &db, "gred").status, 500);

    // ...and the warmed query degrades to its expired entry, marked both
    // in the body and on the wire, instead of failing.
    let stale = client.translate("show all wages", &db, "gred");
    assert_eq!(stale.status, 200);
    assert_eq!(stale.degraded().as_deref(), Some("stale_cache"));
    assert_eq!(
        stale.headers.get("x-t2v-degraded").map(String::as_str),
        Some("stale_cache")
    );
    assert!(stale.json().get("dvq").is_some(), "stale bodies stay whole");
    let metrics = client.metrics();
    assert!(metrics.contains("t2v_degraded_total 1"), "{metrics}");
    server.shutdown();
}

#[test]
fn open_breaker_falls_back_to_the_gred_backend() {
    let _session = FaultSession::begin();
    let (corpus, server) = spawn_server(&[
        ("backends", "gred,rgvisnet"),
        ("fault_plan", "seed=15;backend.error:backend=rgvisnet"),
        ("breaker_window", "4"),
        ("breaker_min_samples", "2"),
        ("breaker_threshold_pct", "50"),
        ("breaker_open_ms", "60000"),
    ]);
    let db = db0(&corpus);
    let mut client = Client::connect(&server);

    for i in 0..2 {
        let r = client.translate(&format!("show part {i}"), &db, "rgvisnet");
        assert_eq!(r.status, 500, "request {i}: {}", r.error_code());
    }
    // rgvisnet's breaker is open; gred's is closed — the ladder reroutes
    // and says so in the body, the degraded marker, and the backend header.
    let fallback = client.translate("show part fallback", &db, "rgvisnet");
    assert_eq!(fallback.status, 200, "{}", fallback.error_code());
    assert_eq!(fallback.degraded().as_deref(), Some("fallback:gred"));
    assert_eq!(
        fallback.json().get("backend").and_then(Json::as_str),
        Some("gred")
    );
    assert_eq!(
        fallback.headers.get("x-t2v-backend").map(String::as_str),
        Some("gred")
    );
    server.shutdown();
}

#[test]
fn batch_path_retries_transient_internal_errors() {
    let _session = FaultSession::begin();
    let (corpus, server) = spawn_server(&[
        ("fault_plan", "seed=16;backend.error:backend=gred,count=1"),
        ("breaker_window", "0"),
        ("retry_max", "2"),
        ("retry_base_ms", "5"),
    ]);
    let db = db0(&corpus);
    let mut client = Client::connect(&server);

    // One injected failure, then the budget is dry: the batch's retry turns
    // a would-be inline error into a clean result.
    let body = format!("{{\"requests\": [{{\"nlq\": \"show every wage\", \"db\": \"{db}\"}}]}}");
    let reply = client.request("POST", "/v1/translate/batch", "", &body);
    assert_eq!(reply.status, 200);
    let doc = reply.json();
    let Some(Json::Arr(results)) = doc.get("results") else {
        panic!("results array");
    };
    assert_eq!(results.len(), 1);
    assert!(
        results[0].get("error").is_none(),
        "retry should have cleared the injected failure: {:?}",
        results[0]
    );
    let metrics = client.metrics();
    assert!(metrics.contains("t2v_batch_retries_total 1"), "{metrics}");
    server.shutdown();
}

#[test]
fn latency_faults_slow_but_never_break_translations() {
    let _session = FaultSession::begin();
    let (corpus, server) = spawn_server(&[(
        "fault_plan",
        "seed=17;embed.latency:ms=20;retrieve.latency:ms=15;conn.write_stall:ms=10",
    )]);
    let db = db0(&corpus);
    let mut client = Client::connect(&server);

    let reply = client.translate("show wages slowly", &db, "gred");
    assert_eq!(reply.status, 200);
    assert!(reply.degraded().is_none());
    let metrics = client.metrics();
    for point in ["embed.latency", "retrieve.latency", "conn.write_stall"] {
        assert!(
            metrics.contains(&format!("t2v_faults_injected_total{{point=\"{point}\"}}")),
            "missing {point} in:\n{metrics}"
        );
    }
    server.shutdown();
}

#[test]
fn corrupted_snapshot_reads_fail_with_structured_errors() {
    let _session = FaultSession::begin();
    let (_corpus, server) = spawn_server(&[]);
    let dir = std::env::temp_dir().join(format!("t2v-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("library.t2vsnap");
    let state = server.state();
    t2v_store::save(&path, state.gred.library(), state.gred.embedder()).expect("save snapshot");

    // Healthy read first, then the armed corruption flips one payload byte
    // and the checksum must catch it — a structured error, not garbage data.
    assert!(t2v_store::load(&path).is_ok());
    t2v_fault::arm(&FaultPlan::parse("seed=18;snapshot.corrupt:count=1").unwrap());
    let err = t2v_store::load(&path).expect_err("corrupted read must fail");
    assert!(!err.to_string().is_empty());
    // Budget spent: the next read is clean again.
    assert!(t2v_store::load(&path).is_ok());
    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}
