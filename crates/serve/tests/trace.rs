//! End-to-end tracing: a traced loopback request returns `x-t2v-trace-id`,
//! the opt-in header inlines the span tree, the flight recorder serves the
//! same trace back over `/v1/admin/trace/{id}`, `recent` filters work, the
//! access log carries a cross-referencable JSON line, and
//! `/v1/admin/status` snapshots the runtime (DESIGN.md §12).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use t2v_corpus::{generate, CorpusConfig};
use t2v_engine::Json;
use t2v_serve::{ServeConfig, Server, ServerState};

struct Reply {
    status: u16,
    headers: HashMap<String, String>,
    body: Vec<u8>,
}

impl Reply {
    fn json(&self) -> Json {
        Json::parse(std::str::from_utf8(&self.body).expect("UTF-8 body")).expect("JSON body")
    }

    fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }

    fn error_code(&self) -> String {
        self.json()
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .expect("error code")
            .to_string()
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// One request with arbitrary extra headers (how a client opts into an
    /// inline trace).
    fn request_with(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &str,
    ) -> Reply {
        let mut raw = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
        for (k, v) in extra_headers {
            raw.push_str(&format!("{k}: {v}\r\n"));
        }
        raw.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
        self.writer.write_all(raw.as_bytes()).expect("write");
        self.read_reply().expect("read response")
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> Reply {
        self.request_with(method, path, &[], body)
    }

    fn translate_traced(&mut self, nlq: &str, db: &str) -> Reply {
        let body = Json::obj([("nlq", Json::str(nlq)), ("db", Json::str(db))]).compact();
        self.request_with("POST", "/v1/translate", &[("X-T2V-Trace", "1")], &body)
    }

    fn read_reply(&mut self) -> Option<Reply> {
        let mut line = String::new();
        if self.reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let status: u16 = line.split(' ').nth(1)?.parse().ok()?;
        let mut headers = HashMap::new();
        loop {
            line.clear();
            self.reader.read_line(&mut line).ok()?;
            let t = line.trim_end();
            if t.is_empty() {
                break;
            }
            let (k, v) = t.split_once(':')?;
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
        let len: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body).ok()?;
        Some(Reply {
            status,
            headers,
            body,
        })
    }
}

fn spawn_server(tweaks: &[(&str, &str)]) -> (t2v_corpus::Corpus, Server) {
    let corpus = generate(&CorpusConfig::tiny(7));
    let mut config = ServeConfig::default();
    config.set("addr", "127.0.0.1:0").unwrap();
    config.set("backends", "gred").unwrap();
    for (k, v) in tweaks {
        config.set(k, v).unwrap();
    }
    let state = Arc::new(ServerState::from_corpus(&corpus, config).expect("state builds"));
    let server = Server::spawn(state).expect("bind loopback");
    (corpus, server)
}

/// Span stages present in a trace JSON object, in recorded order.
fn stages(trace: &Json) -> Vec<String> {
    trace
        .get("spans")
        .and_then(Json::as_arr)
        .expect("spans array")
        .iter()
        .map(|s| s.get("stage").and_then(Json::as_str).unwrap().to_string())
        .collect()
}

#[test]
fn traced_request_covers_every_stage_and_reaches_recorder_and_access_log() {
    let dir = std::env::temp_dir().join(format!("t2v-trace-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("access.log");
    let (corpus, server) = spawn_server(&[
        ("trace_sample", "1"),
        ("trace_buffer", "64"),
        ("access_log", log_path.to_str().unwrap()),
    ]);
    let ex = &corpus.dev[0];
    let db = corpus.databases[ex.db].id.clone();

    let mut client = Client::connect(&server);
    let reply = client.translate_traced(&ex.nlq, &db);
    assert_eq!(reply.status, 200, "traced translate succeeds");

    // (1) the id rides the response header, 32 lowercase hex chars.
    let id = reply.header("x-t2v-trace-id").expect("trace id header");
    assert_eq!(id.len(), 32);
    assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
    let id = id.to_string();

    // (2) the opt-in header splices the span tree into the JSON body —
    // alongside, not instead of, the translation itself.
    let doc = reply.json();
    assert!(doc.get("dvq").is_some(), "translation still present");
    let inline = doc.get("trace").expect("inline trace object");
    assert_eq!(inline.get("id").and_then(Json::as_str), Some(id.as_str()));
    let inline_stages = stages(inline);
    for want in [
        "request",
        "conn.read",
        "queue.wait",
        "cache.lookup",
        "embed",
        "retrieve",
        "backend.translate",
    ] {
        assert!(
            inline_stages.iter().any(|s| s == want),
            "inline trace has {want} (got {inline_stages:?})"
        );
    }

    // (3) the flight recorder serves the same trace back, now including the
    // resp.write span sealed after the body went out.
    let reply = client.request("GET", &format!("/v1/admin/trace/{id}"), "");
    assert_eq!(reply.status, 200);
    let full = reply.json();
    assert_eq!(full.get("id").and_then(Json::as_str), Some(id.as_str()));
    assert_eq!(full.get("tenant").and_then(Json::as_str), Some("default"));
    assert_eq!(full.get("backend").and_then(Json::as_str), Some("gred"));
    assert_eq!(full.get("status").and_then(Json::as_f64), Some(200.0));
    let full_stages = stages(&full);
    for want in [
        "request",
        "conn.read",
        "queue.wait",
        "cache.lookup",
        "embed",
        "retrieve",
        "backend.translate",
        "resp.write",
    ] {
        assert!(
            full_stages.iter().any(|s| s == want),
            "recorded trace has {want} (got {full_stages:?})"
        );
    }

    // Span arithmetic: the root span spans the whole request, every span
    // fits inside it, and the direct children of the root account for the
    // request's latency without exceeding it.
    let total_ms = full.get("total_ms").and_then(Json::as_f64).unwrap();
    let spans = full.get("spans").and_then(Json::as_arr).unwrap();
    assert_eq!(
        spans[0].get("stage").and_then(Json::as_str),
        Some("request")
    );
    assert!(spans[0].get("parent").unwrap().as_f64().is_none());
    assert_eq!(
        spans[0].get("dur_ms").and_then(Json::as_f64),
        Some(total_ms)
    );
    let mut direct_children_ms = 0.0;
    for s in &spans[1..] {
        let start = s.get("start_ms").and_then(Json::as_f64).unwrap();
        let dur = s.get("dur_ms").and_then(Json::as_f64).unwrap();
        assert!(
            start + dur <= total_ms * 1.05 + 0.5,
            "span fits in the request window"
        );
        let parent = s.get("parent").and_then(Json::as_f64).unwrap() as usize;
        assert!(parent < spans.len(), "parent index in range");
        if parent == 0 {
            direct_children_ms += dur;
        }
    }
    assert!(
        direct_children_ms <= total_ms * 1.05 + 0.5,
        "non-overlapping stage durations sum to at most the request latency \
         ({direct_children_ms:.3}ms of {total_ms:.3}ms)"
    );

    // (4) `recent` lists it newest-first, and the filters hold.
    let reply = client.request("GET", "/v1/admin/trace/recent?tenant=default&min_ms=0", "");
    assert_eq!(reply.status, 200);
    let recent = reply.json();
    assert!(recent.get("count").and_then(Json::as_f64).unwrap() >= 1.0);
    let listed = recent.get("traces").and_then(Json::as_arr).unwrap();
    assert!(
        listed
            .iter()
            .any(|t| t.get("id").and_then(Json::as_str) == Some(id.as_str())),
        "trace listed under its tenant"
    );
    let reply = client.request("GET", "/v1/admin/trace/recent?tenant=nobody", "");
    assert_eq!(
        reply.json().get("count").and_then(Json::as_f64),
        Some(0.0),
        "tenant filter excludes everything else"
    );

    // (5) the access log has a matching JSON line with per-stage timings.
    let text = std::fs::read_to_string(&log_path).expect("access log written");
    let line = text
        .lines()
        .find(|l| l.contains(&id))
        .expect("log line for the traced request");
    let entry = Json::parse(line).expect("log line is valid JSON");
    assert_eq!(entry.get("tenant").and_then(Json::as_str), Some("default"));
    assert_eq!(
        entry.get("path").and_then(Json::as_str),
        Some("/v1/translate")
    );
    assert_eq!(entry.get("status").and_then(Json::as_f64), Some(200.0));
    assert!(
        entry
            .get("stages_ms")
            .and_then(|s| s.get("backend.translate"))
            .is_some(),
        "per-stage timings in the log line"
    );

    // (6) a second identical query is a cache hit — visible in its trace.
    let reply = client.translate_traced(&ex.nlq, &db);
    assert_eq!(reply.status, 200);
    let hit = reply.json();
    assert_eq!(
        hit.get("trace")
            .and_then(|t| t.get("cache"))
            .and_then(Json::as_str),
        Some("hit")
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn admin_trace_endpoints_fail_cleanly() {
    // Recorder armed: malformed vs unknown ids are distinct failures.
    let (_corpus, server) = spawn_server(&[("trace_buffer", "16")]);
    let mut client = Client::connect(&server);
    let reply = client.request("GET", "/v1/admin/trace/not-hex", "");
    assert_eq!(reply.status, 400);
    let reply = client.request(
        "GET",
        "/v1/admin/trace/00000000000000000000000000000000",
        "",
    );
    assert_eq!(reply.status, 404);
    assert_eq!(reply.error_code(), "unknown_trace");
    let reply = client.request("GET", "/v1/admin/trace/recent?min_ms=abc", "");
    assert_eq!(reply.status, 400);
    let reply = client.request_with("POST", "/v1/admin/trace/recent", &[], "");
    assert_eq!(reply.status, 405);

    // Recorder disabled: the endpoints say so instead of 404-ing opaquely.
    let (_corpus, server) = spawn_server(&[("trace_buffer", "0")]);
    let mut client = Client::connect(&server);
    let reply = client.request(
        "GET",
        "/v1/admin/trace/00000000000000000000000000000000",
        "",
    );
    assert_eq!(reply.status, 404);
    assert_eq!(reply.error_code(), "recorder_disabled");
    let reply = client.request("GET", "/v1/admin/trace/recent", "");
    assert_eq!(reply.error_code(), "recorder_disabled");
}

#[test]
fn untraced_requests_still_carry_an_id_but_no_body_trace() {
    // Sampling off entirely: the id header still rides every response (so a
    // support ticket can always quote one), but nothing lands in the body.
    let (corpus, server) = spawn_server(&[
        ("trace_sample", "0"),
        ("trace_force_slow_ms", "0"),
        ("trace_buffer", "0"),
    ]);
    let ex = &corpus.dev[0];
    let db = corpus.databases[ex.db].id.clone();
    let mut client = Client::connect(&server);
    let body = Json::obj([("nlq", Json::str(&ex.nlq)), ("db", Json::str(&db))]).compact();
    let reply = client.request("POST", "/v1/translate", &body);
    assert_eq!(reply.status, 200);
    assert!(reply.header("x-t2v-trace-id").is_some());
    assert!(reply.json().get("trace").is_none());
}

#[test]
fn admin_status_snapshots_pool_cache_breakers_and_build() {
    let (corpus, server) = spawn_server(&[("trace_buffer", "32")]);
    let ex = &corpus.dev[0];
    let db = corpus.databases[ex.db].id.clone();
    let mut client = Client::connect(&server);
    // One miss then one hit so the cache section has something to say.
    let body = Json::obj([("nlq", Json::str(&ex.nlq)), ("db", Json::str(&db))]).compact();
    assert_eq!(client.request("POST", "/v1/translate", &body).status, 200);
    assert_eq!(client.request("POST", "/v1/translate", &body).status, 200);

    let reply = client.request("GET", "/v1/admin/status", "");
    assert_eq!(reply.status, 200);
    let doc = reply.json();

    let build = doc.get("build").expect("build section");
    assert!(build.get("version").and_then(Json::as_str).is_some());
    assert!(build
        .get("snapshot_format")
        .and_then(Json::as_f64)
        .is_some());

    let pool = doc.get("pool").expect("pool section");
    assert!(pool.get("workers").and_then(Json::as_f64).unwrap() >= 1.0);
    assert!(pool.get("queue_capacity").and_then(Json::as_f64).unwrap() >= 1.0);
    assert_eq!(pool.get("queue_depth").and_then(Json::as_f64), Some(0.0));

    let cache = doc.get("cache").expect("cache section");
    assert!(cache.get("entries").and_then(Json::as_f64).unwrap() >= 1.0);
    assert!(cache.get("hits").and_then(Json::as_f64).unwrap() >= 1.0);
    assert!(cache.get("misses").and_then(Json::as_f64).unwrap() >= 1.0);
    let rate = cache.get("hit_rate").and_then(Json::as_f64).unwrap();
    assert!(rate > 0.0 && rate < 1.0);

    let trace = doc.get("trace").expect("trace section");
    assert_eq!(trace.get("capacity").and_then(Json::as_f64), Some(32.0));

    let tenants = doc.get("tenants").and_then(Json::as_arr).expect("tenants");
    let default = tenants
        .iter()
        .find(|t| t.get("id").and_then(Json::as_str) == Some("default"))
        .expect("default tenant listed");
    let breakers = default
        .get("breakers")
        .and_then(Json::as_arr)
        .expect("breakers");
    let gred = breakers
        .iter()
        .find(|b| b.get("backend").and_then(Json::as_str) == Some("gred"))
        .expect("gred breaker");
    assert_eq!(gred.get("state").and_then(Json::as_str), Some("closed"));
}
