//! Property tests for the circuit-breaker state machine: under arbitrary
//! generated traffic (outcome sequences, probe interleavings, time jumps)
//! the breaker must keep its invariants — most importantly that it can
//! never get *stuck* open: once traffic turns healthy and cool-downs
//! elapse, it always finds its way back to Closed.

use proptest::prelude::*;
use t2v_serve::{Admission, BreakerConfig, BreakerState, CircuitBreaker};

#[derive(Debug, Clone)]
enum Op {
    /// Ask for admission; if admitted (Allow/Probe), record this outcome.
    Traffic { ok: bool },
    /// Record an outcome without admission (a straggler job finishing).
    Straggler { ok: bool },
    /// Admit a probe and then never record it (an aborted submission).
    AbortedProbe,
    /// Advance the injected clock.
    Advance(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<bool>().prop_map(|ok| Op::Traffic { ok }),
        any::<bool>().prop_map(|ok| Op::Straggler { ok }),
        Just(Op::AbortedProbe),
        (1u64..500).prop_map(Op::Advance),
    ]
}

fn config_strategy() -> impl Strategy<Value = BreakerConfig> {
    (2usize..10, 1usize..8, 10u32..=100, 50u64..400).prop_map(
        |(window, min_samples, threshold_pct, open_ms)| BreakerConfig {
            window,
            min_samples,
            threshold_pct,
            open_ms,
        },
    )
}

proptest! {
    /// Drive arbitrary interleavings and check the machine never wedges:
    /// every reachable state still has a path forward, rejections always
    /// carry a bounded retry hint, and the state cell mirrors reality.
    #[test]
    fn never_wedges_under_arbitrary_traffic(
        cfg in config_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let b = CircuitBreaker::new(cfg.clone());
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Traffic { ok } => match b.admit_at(now) {
                    Admission::Allow | Admission::Probe => {
                        b.record_at(now, ok, 1_000);
                    }
                    Admission::Reject { retry_after_ms } => {
                        // A rejection must always come with a bounded hint:
                        // waiting it out reaches the half-open probe.
                        prop_assert!(retry_after_ms <= cfg.open_ms);
                    }
                },
                Op::Straggler { ok } => {
                    b.record_at(now, ok, 1_000);
                }
                Op::AbortedProbe => {
                    if matches!(b.admit_at(now), Admission::Probe) {
                        b.probe_aborted();
                    }
                }
                Op::Advance(ms) => now += ms,
            }
            // The observable state is always one of the three wire values.
            prop_assert!(matches!(
                b.state(),
                BreakerState::Closed | BreakerState::Open | BreakerState::HalfOpen
            ));
        }

        // No stuck-open: whatever the generated traffic left behind, one
        // cool-down plus one healthy probe must close the breaker.
        now += cfg.open_ms + 1;
        match b.admit_at(now) {
            Admission::Allow => prop_assert_eq!(b.state(), BreakerState::Closed),
            Admission::Probe => {
                b.record_at(now, true, 1_000);
                prop_assert_eq!(b.state(), BreakerState::Closed);
            }
            Admission::Reject { retry_after_ms } => {
                // Only reachable from half-open with a probe in flight;
                // the straggler-verdict rule means any record resolves it.
                prop_assert!(retry_after_ms <= cfg.open_ms);
                b.record_at(now, true, 1_000);
                prop_assert_eq!(b.state(), BreakerState::Closed);
            }
        }
        prop_assert!(matches!(b.admit_at(now + 1), Admission::Allow));
    }

    /// With purely failing traffic the breaker must eventually open (and
    /// every failed probe re-opens it): error storms never pass silently.
    #[test]
    fn sustained_failure_always_opens(
        cfg in config_strategy(),
        extra in 0u64..100,
    ) {
        let b = CircuitBreaker::new(cfg.clone());
        let mut now = 0u64;
        let mut opened = false;
        for _ in 0..(cfg.window + cfg.min_samples + 4) {
            match b.admit_at(now) {
                Admission::Allow | Admission::Probe => {
                    if b.record_at(now, false, 1_000) {
                        opened = true;
                    }
                }
                Admission::Reject { .. } => {
                    opened = true;
                    now += cfg.open_ms; // wait out the cool-down, keep failing
                }
            }
            now += extra;
        }
        prop_assert!(opened, "pure failure traffic never tripped the breaker");
        prop_assert!(b.opens() >= 1);
    }

    /// Closed-state bookkeeping agrees with a brute-force model of the
    /// rolling window: the breaker trips exactly when the model says the
    /// error rate crosses the threshold.
    #[test]
    fn trip_point_matches_reference_window(
        cfg in config_strategy(),
        outcomes in prop::collection::vec(any::<bool>(), 1..60),
    ) {
        let b = CircuitBreaker::new(cfg.clone());
        let mut window: Vec<bool> = Vec::new();
        for ok in outcomes {
            if b.state() != BreakerState::Closed {
                break;
            }
            let tripped = b.record_at(0, ok, 1_000);
            if window.len() == cfg.window {
                window.remove(0);
            }
            window.push(ok);
            let errors = window.iter().filter(|&&o| !o).count();
            let should_trip = window.len() >= cfg.min_samples.clamp(1, cfg.window)
                && errors * 100 >= cfg.threshold_pct as usize * window.len();
            prop_assert_eq!(tripped, should_trip, "window {:?}", window);
        }
    }
}
