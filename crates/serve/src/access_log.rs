//! Structured JSON access log with size-based rotation (DESIGN.md §12).
//!
//! One JSON object per line per finished request — trace id, tenant,
//! route, status, backend, cache outcome, degradation marker, total and
//! per-stage milliseconds — so a slow request found in the log can be
//! cross-referenced with `GET /v1/admin/trace/{id}` while it is still in
//! the flight recorder. The writer is a single mutex around a buffered
//! appender: the log line is rendered *outside* the lock and the hot path
//! pays one short critical section per request. When the file passes the
//! configured size, generations shift `{path}.{i}` → `{path}.{i+1}` up to
//! `access_log_keep=` rotated files (older ones are pruned), the live
//! file becomes `{path}.1`, and a fresh file is started — bounded disk
//! use without an external logrotate.
//!
//! Besides per-request lines, the SLO engine writes `slo-transition`
//! event lines here (via [`AccessLog::write_line`]) whenever an alert
//! starts or stops firing, so the incident timeline and the request
//! evidence live in the same stream.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::Mutex;
use t2v_trace::FinishedTrace;

struct Appender {
    out: BufWriter<File>,
    written: u64,
}

pub struct AccessLog {
    path: PathBuf,
    /// Rotate once `written` exceeds this many bytes; 0 = never.
    rotate_bytes: u64,
    /// Rotated generations to keep (`{path}.1` … `{path}.{keep}`).
    keep: u64,
    inner: Mutex<Appender>,
}

impl AccessLog {
    /// Open (append) the log file. Fails fast on an unwritable path.
    /// `keep` is how many rotated generations survive (minimum 1).
    pub fn open(path: &str, rotate_mb: u64, keep: u64) -> std::io::Result<AccessLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let written = file.metadata()?.len();
        Ok(AccessLog {
            path: PathBuf::from(path),
            rotate_bytes: rotate_mb.saturating_mul(1024 * 1024),
            keep: keep.max(1),
            inner: Mutex::new(Appender {
                out: BufWriter::new(file),
                written,
            }),
        })
    }

    /// `{path}.{n}` as a `PathBuf`.
    fn generation(&self, n: u64) -> PathBuf {
        let mut p = self.path.clone().into_os_string();
        p.push(format!(".{n}"));
        PathBuf::from(p)
    }

    /// Append one pre-rendered line (no trailing newline), rotating first
    /// if the file is over budget. I/O errors are swallowed: an access log
    /// must never take down serving.
    pub fn write_line(&self, line: &str) {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if self.rotate_bytes > 0 && inner.written > self.rotate_bytes {
            let _ = inner.out.flush();
            // Prune every generation at or past the keep budget — the
            // directory scan also catches leftovers from a previous run
            // with a larger `access_log_keep=` — then shift the rest
            // oldest-first: .{keep-1} → .{keep}, …, .1 → .2.
            if let (Some(dir), Some(stem)) = (self.path.parent(), self.path.file_name()) {
                let prefix = format!("{}.", stem.to_string_lossy());
                for entry in std::fs::read_dir(dir).into_iter().flatten().flatten() {
                    let name = entry.file_name();
                    let stale = name
                        .to_string_lossy()
                        .strip_prefix(&prefix)
                        .and_then(|n| n.parse::<u64>().ok())
                        .is_some_and(|n| n >= self.keep);
                    if stale {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
            for n in (1..self.keep).rev() {
                let _ = std::fs::rename(self.generation(n), self.generation(n + 1));
            }
            if std::fs::rename(&self.path, self.generation(1)).is_ok() {
                if let Ok(file) = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)
                {
                    inner.out = BufWriter::new(file);
                    inner.written = 0;
                }
            }
        }
        let _ = inner.out.write_all(line.as_bytes());
        let _ = inner.out.write_all(b"\n");
        // Flush per line: the log exists to debug live incidents, and a
        // crash must not eat the interesting tail.
        let _ = inner.out.flush();
        inner.written += line.len() as u64 + 1;
    }
}

/// Render an SLO firing-state transition as an event line for the access
/// log, shape-compatible with request lines (`"event"` discriminates).
pub fn render_slo_transition(
    now_ms: u64,
    slo: &str,
    firing: bool,
    fast_burn: f64,
    slow_burn: f64,
) -> String {
    format!(
        "{{\"ts_ms\":{now_ms},\"event\":\"slo-transition\",\"slo\":\"{}\",\
         \"firing\":{firing},\"fast_burn\":{fast_burn:.3},\"slow_burn\":{slow_burn:.3}}}",
        esc(slo)
    )
}

/// Render one access-log line from a sealed trace. Pure, so it is testable
/// without a filesystem; the caller owns when/whether it is written.
pub fn render_line(method: &str, path: &str, trace: &FinishedTrace) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(&format!(
        "{{\"ts_ms\":{},\"trace_id\":\"{}\",\"tenant\":\"{}\",\"method\":\"{}\",\"path\":\"{}\",\"status\":{}",
        trace.wall_ms,
        t2v_trace::format_id(trace.id),
        esc(&trace.tenant),
        esc(method),
        esc(path),
        trace.status,
    ));
    out.push_str(&format!(
        ",\"backend\":\"{}\",\"cache\":\"{}\"",
        esc(&trace.backend),
        esc(&trace.cache)
    ));
    match &trace.degraded {
        Some(mode) => out.push_str(&format!(",\"degraded\":\"{}\"", esc(mode))),
        None => out.push_str(",\"degraded\":null"),
    }
    out.push_str(&format!(",\"ms\":{:.3}", trace.total_ns as f64 / 1e6));
    out.push_str(",\"stages_ms\":{");
    let mut first = true;
    for stage in t2v_trace::STAGES {
        if stage == t2v_trace::Stage::Request {
            continue;
        }
        let ns = trace.stage_ns(stage);
        if ns == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{:.3}", stage.name(), ns as f64 / 1e6));
    }
    out.push_str("}}");
    out
}

/// Minimal JSON string escaping for log fields (they are short,
/// server-controlled identifiers, but a hostile tenant id must not be able
/// to forge log lines).
fn esc(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2v_trace::{Span, Stage};

    fn sample_trace() -> FinishedTrace {
        FinishedTrace {
            id: 0xdead_beef,
            wall_ms: 1_700_000_000_000,
            tenant: "acme".into(),
            backend: "gred".into(),
            cache: "miss".into(),
            degraded: Some("stale_cache".into()),
            status: 200,
            total_ns: 12_345_678,
            dropped_spans: 0,
            spans: vec![
                Span {
                    stage: Stage::Request,
                    start_ns: 0,
                    dur_ns: 12_345_678,
                    parent: None,
                    notes: vec![],
                },
                Span {
                    stage: Stage::Backend,
                    start_ns: 1_000_000,
                    dur_ns: 10_000_000,
                    parent: Some(0),
                    notes: vec![],
                },
                Span {
                    stage: Stage::Embed,
                    start_ns: 2_000_000,
                    dur_ns: 3_000_000,
                    parent: Some(1),
                    notes: vec![],
                },
            ],
        }
    }

    #[test]
    fn rendered_line_is_one_json_object() {
        let line = render_line("POST", "/v1/translate", &sample_trace());
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        assert!(line.contains("\"trace_id\":\"000000000000000000000000deadbeef\""));
        assert!(line.contains("\"tenant\":\"acme\""));
        assert!(line.contains("\"status\":200"));
        assert!(line.contains("\"cache\":\"miss\""));
        assert!(line.contains("\"degraded\":\"stale_cache\""));
        assert!(line.contains("\"ms\":12.346"));
        assert!(line.contains("\"backend.translate\":10.000"));
        assert!(line.contains("\"embed\":3.000"));
        // Stages with no recorded time stay out of the map entirely.
        assert!(!line.contains("queue.wait"));
    }

    #[test]
    fn hostile_field_values_cannot_forge_lines() {
        let mut t = sample_trace();
        t.tenant = "a\"b\\c\nd".into();
        let line = render_line("POST", "/v1/translate", &t);
        assert!(!line.contains('\n'));
        assert!(line.contains("\"tenant\":\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn rotation_keeps_two_generations() {
        let dir = std::env::temp_dir().join(format!("t2v-alog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.log");
        let path_str = path.to_str().unwrap();
        // rotate_mb=0 with a tiny injected budget is not expressible via
        // the public constructor, so rotate at 1 MiB and write past it.
        let log = AccessLog::open(path_str, 1, 1).unwrap();
        let line = "x".repeat(64 * 1024);
        for _ in 0..20 {
            log.write_line(&line);
        }
        // 20 × 64 KiB > 1 MiB ⇒ at least one rotation happened.
        let rotated = dir.join("access.log.1");
        assert!(rotated.exists(), "rotated generation exists");
        assert!(!dir.join("access.log.2").exists(), "keep=1 means one");
        let live = std::fs::metadata(&path).unwrap().len();
        assert!(live < 1_200_000, "live file restarted after rotation");
        let old = std::fs::metadata(&rotated).unwrap().len();
        assert!(old >= 1_000_000, "rotated file holds the overflowing bulk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn numbered_rotation_shifts_and_prunes_old_generations() {
        let dir = std::env::temp_dir().join(format!("t2v-alog-keep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.log");
        let path_str = path.to_str().unwrap();
        // A stale generation beyond the keep budget, as if a previous run
        // used a larger access_log_keep= — it must be pruned on rotation.
        std::fs::write(dir.join("access.log.7"), "stale\n").unwrap();
        let log = AccessLog::open(path_str, 1, 3).unwrap();
        let line = "y".repeat(64 * 1024);
        // Each pass of ~17 lines crosses 1 MiB; 5 rotations total.
        for _ in 0..(5 * 17) {
            log.write_line(&line);
        }
        assert!(path.exists(), "live file present");
        for n in 1..=3u64 {
            assert!(
                dir.join(format!("access.log.{n}")).exists(),
                "generation {n} kept"
            );
        }
        assert!(
            !dir.join("access.log.4").exists(),
            "generation 4 pruned (keep=3)"
        );
        assert!(
            !dir.join("access.log.7").exists(),
            "stale generation beyond keep pruned"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_appends_instead_of_truncating() {
        let dir = std::env::temp_dir().join(format!("t2v-alog-re-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.log");
        let path_str = path.to_str().unwrap();
        AccessLog::open(path_str, 64, 3)
            .unwrap()
            .write_line("first");
        AccessLog::open(path_str, 64, 3)
            .unwrap()
            .write_line("second");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "first\nsecond\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slo_transition_line_is_json_with_escaped_name() {
        let line = render_slo_transition(1_700_000_000_000, "avail\"x", true, 1000.0, 230.5);
        assert!(line.contains("\"event\":\"slo-transition\""));
        assert!(line.contains("\"slo\":\"avail\\\"x\""));
        assert!(line.contains("\"firing\":true"));
        assert!(line.contains("\"fast_burn\":1000.000"));
        assert!(line.contains("\"slow_burn\":230.500"));
        assert!(!line.contains('\n'));
    }
}
