//! Lock-free serving metrics: plain `AtomicU64` counters/gauges plus fixed-
//! bucket latency histograms, rendered in the Prometheus text exposition
//! format for `GET /metrics`. Recording a sample is a relaxed fetch-add (two
//! for histograms), so instrumentation cost is invisible next to the work it
//! measures.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Histogram bucket upper bounds, in nanoseconds. Log-spaced from 50 µs to
/// 1 s — translate latency sits around 0.3 ms cold and far under 50 µs on a
/// cache hit, so the interesting range has dense coverage.
pub const BUCKET_BOUNDS_NS: [u64; 12] = [
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    1_000_000_000,
];

/// A fixed-bucket latency histogram (`+Inf` bucket is implicit: `count`).
#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_NS.len()],
    /// Samples above the largest finite bound — the explicit `+Inf`-only
    /// overflow population. Without it a > 1 s sample lands in no finite
    /// bucket and is invisible everywhere except `count`, which hides
    /// exactly the pathological tail a histogram exists to show.
    overflow: AtomicU64,
    sum_ns: AtomicU64,
    count: AtomicU64,
    /// Most recent exemplar per bucket (`+Inf` last): the trace id and raw
    /// latency of the newest *recorded* trace that landed there, rendered
    /// OpenMetrics-style so a slow bucket links straight to its span tree.
    /// A mutex is fine: exemplars are written only for traces the flight
    /// recorder keeps (sampled/slow/error), far off the per-request path.
    exemplars: std::sync::Mutex<[Option<(u128, u64)>; BUCKET_BOUNDS_NS.len() + 1]>,
}

impl LatencyHistogram {
    pub fn observe_ns(&self, ns: u64) {
        // Cumulative buckets (Prometheus convention): bump every bucket whose
        // bound covers the sample. A 12-iteration loop of relaxed adds is
        // cheaper than making the scrape path reconstruct cumulative sums
        // consistently.
        for (i, &bound) in BUCKET_BOUNDS_NS.iter().enumerate() {
            if ns <= bound {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
            }
        }
        if ns > BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1] {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Samples beyond the largest finite bucket bound (> 1 s).
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Cumulative finite-bucket counts, for the obs sampler's TSDB sweep
    /// (one series per bound; `+Inf` is [`LatencyHistogram::count`]).
    pub fn cumulative_counts(&self) -> [u64; BUCKET_BOUNDS_NS.len()] {
        let mut out = [0u64; BUCKET_BOUNDS_NS.len()];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Attach `trace_id` as the newest exemplar of the bucket `ns` falls
    /// in (the lowest covering bucket; `+Inf` for overflow samples).
    pub fn record_exemplar(&self, ns: u64, trace_id: u128) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.exemplars.lock().unwrap_or_else(|e| e.into_inner())[idx] = Some((trace_id, ns));
    }

    fn render(&self, out: &mut String, name: &str, help: &str) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let exemplars = *self.exemplars.lock().unwrap_or_else(|e| e.into_inner());
        for (i, &bound) in BUCKET_BOUNDS_NS.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {}{}",
                bound as f64 / 1e9,
                self.buckets[i].load(Ordering::Relaxed),
                render_exemplar(exemplars[i])
            );
        }
        let count = self.count.load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"+Inf\"}} {count}{}",
            render_exemplar(exemplars[BUCKET_BOUNDS_NS.len()])
        );
        let _ = writeln!(
            out,
            "{name}_sum {}",
            self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
        );
        let _ = writeln!(out, "{name}_count {count}");
    }

    /// Like [`LatencyHistogram::render`] but with an extra label on every
    /// sample line (the `# TYPE` header is the caller's — one per family,
    /// not one per label set).
    fn render_labeled(&self, out: &mut String, name: &str, label: &str) {
        for (i, &bound) in BUCKET_BOUNDS_NS.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name}_bucket{{{label},le=\"{}\"}} {}",
                bound as f64 / 1e9,
                self.buckets[i].load(Ordering::Relaxed)
            );
        }
        let count = self.count.load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{{label},le=\"+Inf\"}} {count}");
        let _ = writeln!(
            out,
            "{name}_sum{{{label}}} {}",
            self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
        );
        let _ = writeln!(out, "{name}_count{{{label}}} {count}");
    }
}

/// OpenMetrics exemplar suffix for one bucket line: the newest recorded
/// trace that landed there, or nothing.
fn render_exemplar(slot: Option<(u128, u64)>) -> String {
    match slot {
        Some((trace_id, ns)) => format!(
            " # {{trace_id=\"{}\"}} {}",
            t2v_trace::format_id(trace_id),
            ns as f64 / 1e9
        ),
        None => String::new(),
    }
}

/// Routes the request counters are labelled with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    Translate,
    TranslateBatch,
    Backends,
    /// Tenant-scoped `/v1/t/{tenant}/...` traffic (one label for the whole
    /// family: per-tenant resolution lives in the tenant counter families,
    /// keeping route-label cardinality fixed).
    Tenant,
    Admin,
    Legacy,
    Healthz,
    Metrics,
    Other,
}

const ROUTES: [(Route, &str); 9] = [
    (Route::Translate, "translate"),
    (Route::TranslateBatch, "translate_batch"),
    (Route::Backends, "backends"),
    (Route::Tenant, "tenant"),
    (Route::Admin, "admin"),
    (Route::Legacy, "legacy"),
    (Route::Healthz, "healthz"),
    (Route::Metrics, "metrics"),
    (Route::Other, "other"),
];

/// Status classes the request counters are labelled with.
const CLASSES: [&str; 4] = ["2xx", "3xx", "4xx", "5xx"];

/// Per-backend serving counters, labelled `backend="<id>"` on the wire.
/// Registered once at startup (backends are fixed for a server's lifetime),
/// so lookups are an index, not a map probe.
pub struct BackendMetrics {
    pub id: String,
    /// Cold translations executed (cache misses that reached the model).
    pub translations: AtomicU64,
    /// Translations that ended in a structured TranslateError.
    pub errors: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    /// Weighted in-system worker-pool share (constant per process).
    pub pool_share: AtomicU64,
    /// Model time per cold translation.
    pub translate: LatencyHistogram,
}

impl BackendMetrics {
    fn new(id: String) -> BackendMetrics {
        BackendMetrics {
            id,
            translations: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            pool_share: AtomicU64::new(0),
            translate: LatencyHistogram::default(),
        }
    }
}

/// Per-tenant serving counters, labelled `tenant="<id>"` on the wire.
/// Unlike backends, tenants attach and detach at runtime, so these live
/// behind `Arc`s in a mutex-protected registry: recording stays lock-free
/// (each tenant runtime holds its own `Arc` directly); only registration,
/// removal, and the scrape-path render take the lock.
pub struct TenantMetrics {
    pub tenant: String,
    /// Cold translations executed for this tenant (all backends).
    pub translations: AtomicU64,
    /// Translations that ended in a structured TranslateError.
    pub errors: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    /// Model time per cold translation for this tenant.
    pub translate: LatencyHistogram,
    /// Circuit-breaker state gauges, `(backend id, shared state cell)` in
    /// registry order; the cells are written by the tenant runtime's
    /// breakers (0 closed / 1 open / 2 half-open) and only read here.
    /// Set once when the tenant runtime is built.
    pub breaker_states: std::sync::OnceLock<Vec<(String, Arc<AtomicU64>)>>,
}

impl TenantMetrics {
    fn new(tenant: String) -> TenantMetrics {
        TenantMetrics {
            tenant,
            translations: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            translate: LatencyHistogram::default(),
            breaker_states: std::sync::OnceLock::new(),
        }
    }
}

/// The registry handed to every serving component.
pub struct Metrics {
    started: Instant,
    /// requests[route][status class]
    requests: [[AtomicU64; 4]; 9],
    /// Per-backend counters, in backend-registry order (the default
    /// tenant's registry — rendered unlabelled for dashboard continuity).
    backends: Vec<BackendMetrics>,
    /// Per-tenant counters, in attach order; default first by construction.
    tenants: std::sync::Mutex<Vec<Arc<TenantMetrics>>>,
    /// Currently attached tenants (including the default one).
    pub tenant_count: AtomicU64,
    /// Library provenance, set once at startup: (fingerprint hex, source
    /// label). Rendered as an info-style gauge with labels because a u64
    /// fingerprint does not survive the f64 Prometheus value space.
    library_info: std::sync::OnceLock<(String, &'static str)>,
    /// Embedding-library entry count (constant per process).
    pub library_entries: AtomicU64,
    /// Snapshots persisted via write-through or `/v1/admin/snapshot`.
    pub snapshots_written: AtomicU64,
    /// Cache shard count (constant per process; exported for dashboards).
    pub cache_shards: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    /// 503s shed by queue backpressure or the connection limit.
    pub rejected: AtomicU64,
    pub connections_total: AtomicU64,
    pub connections_active: AtomicU64,
    /// Keep-alive connections closed by the idle reaper (event driver) or
    /// a socket read timeout (threaded driver).
    pub conn_reaped: AtomicU64,
    /// `accept(2)` failures (EMFILE/ENFILE fd exhaustion, aborted
    /// handshakes); the acceptor backs off instead of spinning.
    pub accept_errors: AtomicU64,
    /// Jobs currently queued in the worker pool (all shards).
    pub queue_depth: AtomicU64,
    /// Jobs that panicked inside a worker (caught; the worker survived and
    /// the caller's reply slot was fulfilled with a structured error).
    pub worker_panics: AtomicU64,
    /// Requests answered 504 because their deadline budget ran out.
    pub deadline_exceeded: AtomicU64,
    /// Requests answered degraded (stale cache / fallback backend).
    pub degraded: AtomicU64,
    /// Breaker transitions into the open state.
    pub breaker_opens: AtomicU64,
    /// Requests fast-failed (or degraded) because a breaker was open.
    pub breaker_rejections: AtomicU64,
    /// Batch-path items retried after a transient internal failure.
    pub batch_retries: AtomicU64,
    /// Micro-batcher: flushes executed / lookups they carried / largest batch.
    pub batches: AtomicU64,
    pub batched_lookups: AtomicU64,
    pub max_batch: AtomicU64,
    /// Per-stage serving latency.
    pub queue_wait: LatencyHistogram,
    pub translate: LatencyHistogram,
    pub request_total_latency: LatencyHistogram,
    /// Requests slower than the trace force-slow threshold, attributed to
    /// the stage with the most self time (indexed by `t2v_trace::STAGES`;
    /// the extra final slot is `stage="truncated"` — traces whose span
    /// list hit the 24-slot cap, where the dominant stage may have been
    /// one of the dropped spans and attribution would be a guess).
    slow_requests: [AtomicU64; t2v_trace::STAGES.len() + 1],
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::with_backends(&[])
    }

    /// Registry with one labelled counter family per backend id.
    pub fn with_backends(backend_ids: &[&str]) -> Metrics {
        Metrics {
            started: Instant::now(),
            requests: Default::default(),
            backends: backend_ids
                .iter()
                .map(|id| BackendMetrics::new(id.to_string()))
                .collect(),
            tenants: std::sync::Mutex::new(Vec::new()),
            tenant_count: AtomicU64::new(0),
            library_info: std::sync::OnceLock::new(),
            library_entries: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            cache_shards: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            conn_reaped: AtomicU64::new(0),
            accept_errors: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            breaker_opens: AtomicU64::new(0),
            breaker_rejections: AtomicU64::new(0),
            batch_retries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_lookups: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            queue_wait: LatencyHistogram::default(),
            translate: LatencyHistogram::default(),
            request_total_latency: LatencyHistogram::default(),
            slow_requests: Default::default(),
        }
    }

    /// Count one slow request against its dominant stage.
    pub fn record_slow(&self, stage: t2v_trace::Stage) {
        self.slow_requests[stage as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Count one slow request whose trace dropped spans at the 24-slot
    /// cap: the true dominant stage may be among the dropped spans, so it
    /// goes under `stage="truncated"` instead of a misattributed stage.
    pub fn record_slow_truncated(&self) {
        self.slow_requests[t2v_trace::STAGES.len()].fetch_add(1, Ordering::Relaxed);
    }

    /// Slow requests attributed to `stage` so far.
    pub fn slow_requests(&self, stage: t2v_trace::Stage) -> u64 {
        self.slow_requests[stage as usize].load(Ordering::Relaxed)
    }

    /// Slow requests attributed to `stage="truncated"` so far.
    pub fn slow_requests_truncated(&self) -> u64 {
        self.slow_requests[t2v_trace::STAGES.len()].load(Ordering::Relaxed)
    }

    pub fn record_request(&self, route: Route, status: u16) {
        let r = ROUTES.iter().position(|(x, _)| *x == route).unwrap();
        let class = match status {
            200..=299 => 0,
            300..=399 => 1,
            400..=499 => 2,
            _ => 3,
        };
        self.requests[r][class].fetch_add(1, Ordering::Relaxed);
    }

    /// The counters of backend `idx` (backend-registry order). Panics on an
    /// unregistered index — backend resolution happens before any recording.
    pub fn backend(&self, idx: usize) -> &BackendMetrics {
        &self.backends[idx]
    }

    pub fn backends(&self) -> &[BackendMetrics] {
        &self.backends
    }

    pub fn requests_for(&self, route: Route, class: &str) -> u64 {
        let r = ROUTES.iter().position(|(x, _)| *x == route).unwrap();
        let c = CLASSES.iter().position(|x| *x == class).unwrap();
        self.requests[r][c].load(Ordering::Relaxed)
    }

    /// `(total, 5xx)` request counts across every route — the availability
    /// SLO's denominator and numerator, swept by the obs sampler.
    pub fn requests_all(&self) -> (u64, u64) {
        let mut total = 0u64;
        let mut bad = 0u64;
        for row in &self.requests {
            for (c, cell) in row.iter().enumerate() {
                let v = cell.load(Ordering::Relaxed);
                total += v;
                if c == 3 {
                    bad += v;
                }
            }
        }
        (total, bad)
    }

    /// Register a tenant's counter family. Called at startup for every
    /// configured tenant and at runtime by the admin attach route; the
    /// returned `Arc` is the tenant runtime's lock-free recording handle.
    pub fn register_tenant(&self, id: &str) -> Arc<TenantMetrics> {
        let tm = Arc::new(TenantMetrics::new(id.to_string()));
        let mut tenants = self.tenants.lock().expect("tenant metrics lock");
        tenants.retain(|t| t.tenant != tm.tenant);
        tenants.push(Arc::clone(&tm));
        self.tenant_count
            .store(tenants.len() as u64, Ordering::Relaxed);
        tm
    }

    /// Drop a detached tenant's counter family from future scrapes.
    /// (In-flight recordings through an already-held `Arc` stay safe; the
    /// samples simply stop being rendered.)
    pub fn drop_tenant(&self, id: &str) {
        let mut tenants = self.tenants.lock().expect("tenant metrics lock");
        tenants.retain(|t| t.tenant != id);
        self.tenant_count
            .store(tenants.len() as u64, Ordering::Relaxed);
    }

    /// Record the loaded library's provenance (first call wins; the
    /// library is fixed for a server's lifetime).
    pub fn set_library_info(&self, fingerprint: u64, source: &'static str, entries: usize) {
        let _ = self
            .library_info
            .set((format!("{fingerprint:#018x}"), source));
        self.library_entries
            .store(entries as u64, Ordering::Relaxed);
    }

    pub fn record_batch(&self, lookups: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_lookups.fetch_add(lookups, Ordering::Relaxed);
        self.max_batch.fetch_max(lookups, Ordering::Relaxed);
    }

    /// Render the whole registry in Prometheus text format. Every family
    /// carries `# HELP` and `# TYPE` headers, and label values pass through
    /// [`escape_label`] (exposition-format escaping of `\`, `"`, newline);
    /// the roundtrip test below parses this output back.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = writeln!(
            out,
            "# HELP t2v_uptime_seconds Seconds since the registry started."
        );
        let _ = writeln!(out, "# TYPE t2v_uptime_seconds gauge");
        let _ = writeln!(
            out,
            "t2v_uptime_seconds {}",
            self.started.elapsed().as_secs_f64()
        );

        let _ = writeln!(
            out,
            "# HELP t2v_http_requests_total Requests by route and status class."
        );
        let _ = writeln!(out, "# TYPE t2v_http_requests_total counter");
        for (r, (_, route)) in ROUTES.iter().enumerate() {
            for (c, class) in CLASSES.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "t2v_http_requests_total{{route=\"{route}\",status=\"{class}\"}} {}",
                    self.requests[r][c].load(Ordering::Relaxed)
                );
            }
        }

        for (name, kind, help, v) in [
            (
                "t2v_cache_hits_total",
                "counter",
                "Translation cache hits.",
                &self.cache_hits,
            ),
            (
                "t2v_cache_misses_total",
                "counter",
                "Translation cache misses.",
                &self.cache_misses,
            ),
            (
                "t2v_rejected_total",
                "counter",
                "Requests shed by backpressure or the connection limit.",
                &self.rejected,
            ),
            (
                "t2v_connections_total",
                "counter",
                "Connections accepted since start.",
                &self.connections_total,
            ),
            (
                "t2v_connections_active",
                "gauge",
                "Connections currently open.",
                &self.connections_active,
            ),
            (
                "t2v_open_connections",
                "gauge",
                "Connections currently open (alias of t2v_connections_active \
                 for event-driver dashboards).",
                &self.connections_active,
            ),
            (
                "t2v_conn_reaped_total",
                "counter",
                "Connections closed by the idle-timeout reaper.",
                &self.conn_reaped,
            ),
            (
                "t2v_accept_errors_total",
                "counter",
                "accept(2) failures (fd exhaustion, aborted handshakes).",
                &self.accept_errors,
            ),
            (
                "t2v_queue_depth",
                "gauge",
                "Jobs queued in the worker pool (all shards).",
                &self.queue_depth,
            ),
            (
                "t2v_worker_panics_total",
                "counter",
                "Worker jobs that panicked (caught and answered 500).",
                &self.worker_panics,
            ),
            (
                "t2v_deadline_exceeded_total",
                "counter",
                "Requests answered 504 after their deadline budget ran out.",
                &self.deadline_exceeded,
            ),
            (
                "t2v_degraded_total",
                "counter",
                "Requests answered degraded (stale cache / fallback backend).",
                &self.degraded,
            ),
            (
                "t2v_breaker_opens_total",
                "counter",
                "Circuit-breaker transitions into the open state.",
                &self.breaker_opens,
            ),
            (
                "t2v_breaker_rejections_total",
                "counter",
                "Requests fast-failed or degraded by an open breaker.",
                &self.breaker_rejections,
            ),
            (
                "t2v_batch_retries_total",
                "counter",
                "Batch items retried after a transient internal failure.",
                &self.batch_retries,
            ),
            (
                "t2v_batches_total",
                "counter",
                "Micro-batcher flushes executed.",
                &self.batches,
            ),
            (
                "t2v_batched_lookups_total",
                "counter",
                "Top-k lookups carried by micro-batcher flushes.",
                &self.batched_lookups,
            ),
            (
                "t2v_max_batch_size",
                "gauge",
                "Largest micro-batch flushed so far.",
                &self.max_batch,
            ),
            (
                "t2v_cache_shards",
                "gauge",
                "Translation-cache shard count.",
                &self.cache_shards,
            ),
            (
                "t2v_tenants",
                "gauge",
                "Currently attached tenants (default included).",
                &self.tenant_count,
            ),
            (
                "t2v_library_entries",
                "gauge",
                "Embedding-library entry count.",
                &self.library_entries,
            ),
            (
                "t2v_snapshots_written_total",
                "counter",
                "Library snapshots persisted.",
                &self.snapshots_written,
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {}", v.load(Ordering::Relaxed));
        }

        // Slow requests attributed to the dominant stage of their trace.
        let _ = writeln!(
            out,
            "# HELP t2v_slow_requests_total Requests over the trace force-slow threshold, by dominant stage."
        );
        let _ = writeln!(out, "# TYPE t2v_slow_requests_total counter");
        for stage in t2v_trace::STAGES {
            if stage == t2v_trace::Stage::Request {
                continue;
            }
            let _ = writeln!(
                out,
                "t2v_slow_requests_total{{stage=\"{}\"}} {}",
                stage.name(),
                self.slow_requests[stage as usize].load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "t2v_slow_requests_total{{stage=\"truncated\"}} {}",
            self.slow_requests[t2v_trace::STAGES.len()].load(Ordering::Relaxed)
        );

        // Library provenance: labels carry the exact fingerprint (a u64
        // does not fit the f64 metric value space losslessly).
        if let Some((fingerprint, source)) = self.library_info.get() {
            let _ = writeln!(
                out,
                "# HELP t2v_library_info Loaded embedding-library provenance (value is always 1)."
            );
            let _ = writeln!(out, "# TYPE t2v_library_info gauge");
            let _ = writeln!(
                out,
                "t2v_library_info{{fingerprint=\"{fingerprint}\",source=\"{source}\"}} 1"
            );
        }

        // Per-backend counter families (one label set per registered id).
        if !self.backends.is_empty() {
            for (name, kind, help, pick) in [
                (
                    "t2v_backend_translations_total",
                    "counter",
                    "Cold translations executed, by backend.",
                    (|b: &BackendMetrics| &b.translations) as fn(&BackendMetrics) -> &AtomicU64,
                ),
                (
                    "t2v_backend_errors_total",
                    "counter",
                    "Structured translation errors, by backend.",
                    |b: &BackendMetrics| &b.errors,
                ),
                (
                    "t2v_backend_cache_hits_total",
                    "counter",
                    "Cache hits, by backend.",
                    |b: &BackendMetrics| &b.cache_hits,
                ),
                (
                    "t2v_backend_cache_misses_total",
                    "counter",
                    "Cache misses, by backend.",
                    |b: &BackendMetrics| &b.cache_misses,
                ),
                (
                    "t2v_backend_pool_share",
                    "gauge",
                    "Weighted worker-pool share, by backend.",
                    |b: &BackendMetrics| &b.pool_share,
                ),
            ] {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} {kind}");
                for b in &self.backends {
                    let _ = writeln!(
                        out,
                        "{name}{{backend=\"{}\"}} {}",
                        escape_label(&b.id),
                        pick(b).load(Ordering::Relaxed)
                    );
                }
            }
        }

        // Per-tenant counter families (one label set per attached tenant,
        // default included). Snapshot the Arcs first so rendering holds the
        // registry lock only for a clone, never across formatting.
        let tenants: Vec<Arc<TenantMetrics>> =
            self.tenants.lock().expect("tenant metrics lock").clone();
        if !tenants.is_empty() {
            for (name, kind, help, pick) in [
                (
                    "t2v_tenant_translations_total",
                    "counter",
                    "Cold translations executed, by tenant.",
                    (|t: &TenantMetrics| &t.translations) as fn(&TenantMetrics) -> &AtomicU64,
                ),
                (
                    "t2v_tenant_errors_total",
                    "counter",
                    "Structured translation errors, by tenant.",
                    |t: &TenantMetrics| &t.errors,
                ),
                (
                    "t2v_tenant_cache_hits_total",
                    "counter",
                    "Cache hits, by tenant.",
                    |t: &TenantMetrics| &t.cache_hits,
                ),
                (
                    "t2v_tenant_cache_misses_total",
                    "counter",
                    "Cache misses, by tenant.",
                    |t: &TenantMetrics| &t.cache_misses,
                ),
            ] {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} {kind}");
                for t in &tenants {
                    let _ = writeln!(
                        out,
                        "{name}{{tenant=\"{}\"}} {}",
                        escape_label(&t.tenant),
                        pick(t).load(Ordering::Relaxed)
                    );
                }
            }
            let _ = writeln!(
                out,
                "# HELP t2v_tenant_translate_seconds Model time per cold translation, by tenant."
            );
            let _ = writeln!(out, "# TYPE t2v_tenant_translate_seconds histogram");
            for t in &tenants {
                t.translate.render_labeled(
                    &mut out,
                    "t2v_tenant_translate_seconds",
                    &format!("tenant=\"{}\"", escape_label(&t.tenant)),
                );
            }
            // Circuit-breaker states: 0 closed, 1 open, 2 half-open.
            if tenants.iter().any(|t| t.breaker_states.get().is_some()) {
                let _ = writeln!(
                    out,
                    "# HELP t2v_breaker_state Circuit-breaker state (0 closed, 1 open, 2 half-open)."
                );
                let _ = writeln!(out, "# TYPE t2v_breaker_state gauge");
                for t in &tenants {
                    for (backend, state) in t.breaker_states.get().into_iter().flatten() {
                        let _ = writeln!(
                            out,
                            "t2v_breaker_state{{tenant=\"{}\",backend=\"{}\"}} {}",
                            escape_label(&t.tenant),
                            escape_label(backend),
                            state.load(Ordering::Relaxed)
                        );
                    }
                }
            }
        }

        // Fault-injection fire counts of the armed chaos plan, if any.
        if let Some(fired) = t2v_fault::global_fired() {
            let _ = writeln!(
                out,
                "# HELP t2v_faults_injected_total Faults fired by the armed chaos plan, by point."
            );
            let _ = writeln!(out, "# TYPE t2v_faults_injected_total counter");
            for (point, count) in fired {
                let _ = writeln!(
                    out,
                    "t2v_faults_injected_total{{point=\"{point}\"}} {count}"
                );
            }
        }

        self.queue_wait.render(
            &mut out,
            "t2v_queue_wait_seconds",
            "Time jobs waited in the worker-pool queue.",
        );
        self.translate.render(
            &mut out,
            "t2v_translate_seconds",
            "Model time per cold translation.",
        );
        self.request_total_latency.render(
            &mut out,
            "t2v_request_seconds",
            "End-to-end request latency as the server saw it.",
        );
        out
    }
}

/// Escape a label value for the Prometheus text exposition format:
/// backslash, double quote, and newline must be escaped inside the quoted
/// value. Borrows when (almost always) nothing needs escaping.
pub fn escape_label(v: &str) -> std::borrow::Cow<'_, str> {
    if !v.contains(['\\', '"', '\n']) {
        return std::borrow::Cow::Borrowed(v);
    }
    let mut out = String::with_capacity(v.len() + 4);
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    std::borrow::Cow::Owned(out)
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = LatencyHistogram::default();
        h.observe_ns(60_000); // lands in the 100 µs bucket and above
        h.observe_ns(60_000);
        h.observe_ns(400_000); // lands in the 500 µs bucket and above
        assert_eq!(h.buckets[0].load(Ordering::Relaxed), 0);
        assert_eq!(h.buckets[1].load(Ordering::Relaxed), 2);
        assert_eq!(h.buckets[3].load(Ordering::Relaxed), 3);
        assert_eq!(h.count(), 3);
        assert!((h.mean_ns() - (60_000.0 + 60_000.0 + 400_000.0) / 3.0).abs() < 1.0);
    }

    #[test]
    fn render_is_valid_prometheus_shape() {
        let m = Metrics::with_backends(&["gred", "seq2vis"]);
        m.record_request(Route::Translate, 200);
        m.record_request(Route::Translate, 404);
        m.record_request(Route::Other, 503);
        m.record_request(Route::Legacy, 308);
        m.record_request(Route::Backends, 200);
        m.cache_shards.store(8, Ordering::Relaxed);
        m.backend(0).translations.fetch_add(2, Ordering::Relaxed);
        m.backend(1).cache_hits.fetch_add(5, Ordering::Relaxed);
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.translate.observe_ns(300_000);
        m.record_batch(4);
        m.record_batch(2);
        let text = m.render_prometheus();
        assert!(text.contains("t2v_http_requests_total{route=\"translate\",status=\"2xx\"} 1"));
        assert!(text.contains("t2v_http_requests_total{route=\"translate\",status=\"4xx\"} 1"));
        assert!(text.contains("t2v_http_requests_total{route=\"other\",status=\"5xx\"} 1"));
        assert!(text.contains("t2v_cache_hits_total 3"));
        assert!(text.contains("t2v_translate_seconds_count 1"));
        assert!(text.contains("t2v_translate_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("t2v_batches_total 2"));
        assert!(text.contains("t2v_batched_lookups_total 6"));
        assert!(text.contains("t2v_max_batch_size 4"));
        assert!(text.contains("t2v_cache_shards 8"));
        assert!(text.contains("t2v_http_requests_total{route=\"legacy\",status=\"3xx\"} 1"));
        assert!(text.contains("t2v_http_requests_total{route=\"backends\",status=\"2xx\"} 1"));
        assert!(text.contains("t2v_backend_translations_total{backend=\"gred\"} 2"));
        assert!(text.contains("t2v_backend_translations_total{backend=\"seq2vis\"} 0"));
        assert!(text.contains("t2v_backend_cache_hits_total{backend=\"seq2vis\"} 5"));
        assert!(text.contains("t2v_backend_errors_total{backend=\"gred\"} 0"));
        m.backend(0).pool_share.store(12, Ordering::Relaxed);
        m.set_library_info(0xabcd, "snapshot", 240);
        m.record_request(Route::Admin, 200);
        m.record_request(Route::Tenant, 200);
        let dflt = m.register_tenant("default");
        let acme = m.register_tenant("acme");
        dflt.translations.fetch_add(2, Ordering::Relaxed);
        acme.cache_hits.fetch_add(3, Ordering::Relaxed);
        acme.translate.observe_ns(200_000);
        let open = Arc::new(AtomicU64::new(1));
        acme.breaker_states
            .set(vec![("gred".to_string(), Arc::clone(&open))])
            .unwrap();
        let text = m.render_prometheus();
        assert!(text.contains("t2v_breaker_state{tenant=\"acme\",backend=\"gred\"} 1"));
        assert!(text.contains("t2v_tenants 2"));
        assert!(text.contains("t2v_tenant_translate_seconds_count{tenant=\"acme\"} 1"));
        assert!(text.contains("t2v_tenant_translate_seconds_bucket{tenant=\"acme\",le=\"+Inf\"} 1"));
        assert!(text.contains("t2v_tenant_translate_seconds_count{tenant=\"default\"} 0"));
        assert!(text.contains("t2v_tenant_translations_total{tenant=\"default\"} 2"));
        assert!(text.contains("t2v_tenant_translations_total{tenant=\"acme\"} 0"));
        assert!(text.contains("t2v_tenant_cache_hits_total{tenant=\"acme\"} 3"));
        assert!(text.contains("t2v_http_requests_total{route=\"tenant\",status=\"2xx\"} 1"));
        m.drop_tenant("acme");
        let text = m.render_prometheus();
        assert!(text.contains("t2v_tenants 1"));
        assert!(!text.contains("tenant=\"acme\""));
        let text = m.render_prometheus();
        assert!(text.contains("t2v_backend_pool_share{backend=\"gred\"} 12"));
        assert!(text.contains("t2v_library_entries 240"));
        assert!(text.contains(
            "t2v_library_info{fingerprint=\"0x000000000000abcd\",source=\"snapshot\"} 1"
        ));
        assert!(text.contains("t2v_http_requests_total{route=\"admin\",status=\"2xx\"} 1"));
        // Every non-comment line is "name-or-name{labels} value" (with an
        // optional OpenMetrics exemplar after " # ").
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let sample = line.split(" # ").next().unwrap();
            let (_, value) = sample.rsplit_once(' ').expect("metric line has a value");
            value.parse::<f64>().expect("metric value is numeric");
        }
        assert_eq!(m.requests_for(Route::Translate, "2xx"), 1);
    }

    #[test]
    fn histogram_overflow_samples_still_count_and_render() {
        let h = LatencyHistogram::default();
        h.observe_ns(2_000_000_000); // 2 s: above every finite bound
        h.observe_ns(500);
        assert_eq!(h.count(), 2);
        assert_eq!(h.overflow(), 1, "the 2 s sample is explicitly tracked");
        // The finite buckets saw only the fast sample; +Inf covers both.
        let last = h.buckets[BUCKET_BOUNDS_NS.len() - 1].load(Ordering::Relaxed);
        assert_eq!(last, 1);
        assert_eq!(last + h.overflow(), h.count());
        let mut out = String::new();
        h.render(&mut out, "t2v_test_seconds", "test histogram");
        assert!(out.contains("t2v_test_seconds_bucket{le=\"1\"} 1"));
        assert!(out.contains("t2v_test_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(out.contains("t2v_test_seconds_count 2"));
        assert!(out.contains("t2v_test_seconds_sum 2.0000005"));
    }

    #[test]
    fn slow_request_counters_attribute_stages() {
        let m = Metrics::new();
        m.record_slow(t2v_trace::Stage::Backend);
        m.record_slow(t2v_trace::Stage::Backend);
        m.record_slow(t2v_trace::Stage::QueueWait);
        m.record_slow_truncated();
        assert_eq!(m.slow_requests(t2v_trace::Stage::Backend), 2);
        assert_eq!(m.slow_requests(t2v_trace::Stage::QueueWait), 1);
        assert_eq!(m.slow_requests_truncated(), 1);
        let text = m.render_prometheus();
        assert!(text.contains("t2v_slow_requests_total{stage=\"backend.translate\"} 2"));
        assert!(text.contains("t2v_slow_requests_total{stage=\"queue.wait\"} 1"));
        assert!(text.contains("t2v_slow_requests_total{stage=\"embed\"} 0"));
        assert!(text.contains("t2v_slow_requests_total{stage=\"truncated\"} 1"));
    }

    #[test]
    fn exemplars_attach_to_the_lowest_covering_bucket() {
        let h = LatencyHistogram::default();
        h.observe_ns(60_000);
        h.record_exemplar(60_000, 0xDEAD_BEEF);
        h.observe_ns(2_000_000_000); // overflow: exemplar on +Inf
        h.record_exemplar(2_000_000_000, 0xFEED);
        let mut out = String::new();
        h.render(&mut out, "t2v_test_seconds", "test histogram");
        let ex_line = out
            .lines()
            .find(|l| l.contains("le=\"0.0001\""))
            .expect("100 µs bucket line");
        assert!(
            ex_line.ends_with(&format!(
                "# {{trace_id=\"{}\"}} 0.00006",
                t2v_trace::format_id(0xDEAD_BEEF)
            )),
            "exemplar on the 100 µs bucket: {ex_line}"
        );
        // The newest exemplar sits on the *lowest* covering bucket only.
        let next = out
            .lines()
            .find(|l| l.contains("le=\"0.00025\""))
            .expect("250 µs bucket line");
        assert!(!next.contains("trace_id"), "no exemplar echo: {next}");
        let inf = out
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .expect("+Inf line");
        assert!(
            inf.contains(&format!("trace_id=\"{}\"", t2v_trace::format_id(0xFEED))),
            "overflow exemplar on +Inf: {inf}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
    }

    /// Parse the labels of one sample line, honouring exposition escapes.
    /// Returns `(labels, unescaped values)` or panics on malformed input.
    fn parse_labels(raw: &str) -> Vec<(String, String)> {
        let mut labels = Vec::new();
        let mut chars = raw.chars().peekable();
        loop {
            let mut key = String::new();
            while let Some(&c) = chars.peek() {
                if c == '=' {
                    break;
                }
                key.push(c);
                chars.next();
            }
            assert_eq!(chars.next(), Some('='), "label missing '=' in {raw:?}");
            assert_eq!(chars.next(), Some('"'), "label value unquoted in {raw:?}");
            let mut value = String::new();
            loop {
                match chars.next().expect("unterminated label value") {
                    '\\' => match chars.next().expect("dangling escape") {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        other => panic!("invalid escape \\{other} in {raw:?}"),
                    },
                    '"' => break,
                    c => {
                        assert_ne!(c, '\n', "raw newline inside label value");
                        value.push(c);
                    }
                }
            }
            labels.push((key, value));
            match chars.next() {
                None => break,
                Some(',') => continue,
                Some(c) => panic!("unexpected {c:?} after label in {raw:?}"),
            }
        }
        labels
    }

    #[test]
    fn exposition_roundtrip_parses_cleanly() {
        use std::collections::{BTreeMap, HashMap, HashSet};

        let m = Metrics::with_backends(&["gred", "rgvisnet"]);
        m.record_request(Route::Translate, 200);
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.set_library_info(0x1234, "built", 99);
        m.translate.observe_ns(300_000);
        m.translate.observe_ns(2_000_000_000); // overflow sample
        m.queue_wait.observe_ns(10_000);
        m.request_total_latency.observe_ns(350_000);
        m.request_total_latency
            .record_exemplar(350_000, 0xABCD_EF01);
        m.record_slow(t2v_trace::Stage::Retrieve);
        // A hostile tenant id exercises label escaping end to end.
        let weird = m.register_tenant("we\"ird\\ten");
        weird.translate.observe_ns(100_000);
        weird
            .breaker_states
            .set(vec![("gred".to_string(), Arc::new(AtomicU64::new(2)))])
            .unwrap();

        let text = m.render_prometheus();
        let mut helps: HashSet<String> = HashSet::new();
        let mut types: HashMap<String, String> = HashMap::new();
        // (family, non-le labels) → [(le, cumulative count)] in render order.
        let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
        let mut counts: HashMap<(String, String), f64> = HashMap::new();

        for line in text.lines() {
            assert!(!line.trim().is_empty(), "no blank lines in exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP has text");
                assert!(!help.trim().is_empty(), "empty HELP for {name}");
                helps.insert(name.to_string());
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE has a kind");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "unknown TYPE {kind} for {name}"
                );
                types.insert(name.to_string(), kind.to_string());
                continue;
            }
            // Sample line: name{labels} value | name value, optionally
            // followed by an OpenMetrics exemplar (" # {trace_id=...} v").
            let (sample, exemplar) = match line.split_once(" # ") {
                Some((sample, ex)) => (sample, Some(ex)),
                None => (line, None),
            };
            if let Some(ex) = exemplar {
                assert!(
                    line.contains("_bucket"),
                    "exemplars only on bucket lines: {line}"
                );
                let (labels, value) = ex
                    .strip_prefix('{')
                    .and_then(|r| r.split_once("} "))
                    .expect("exemplar is {labels} value");
                assert!(parse_labels(labels).iter().any(|(k, _)| k == "trace_id"));
                value.parse::<f64>().expect("exemplar value is numeric");
            }
            let (name_labels, value) = sample.rsplit_once(' ').expect("sample has a value");
            let value: f64 = value.parse().expect("sample value is numeric");
            let (name, labels) = match name_labels.split_once('{') {
                Some((name, rest)) => {
                    let raw = rest.strip_suffix('}').expect("labels close");
                    (name, parse_labels(raw))
                }
                None => (name_labels, Vec::new()),
            };
            // Histogram samples resolve to their family name.
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| {
                    let stripped = name.strip_suffix(suffix)?;
                    (types.get(stripped).map(String::as_str) == Some("histogram"))
                        .then(|| stripped.to_string())
                })
                .unwrap_or_else(|| name.to_string());
            assert!(
                helps.contains(&family),
                "family {family} sampled before/without # HELP"
            );
            assert!(
                types.contains_key(&family),
                "family {family} sampled before/without # TYPE"
            );
            let series_key = |labels: &[(String, String)], drop_le: bool| {
                let mut kept: Vec<String> = labels
                    .iter()
                    .filter(|(k, _)| !(drop_le && k == "le"))
                    .map(|(k, v)| format!("{k}={v:?}"))
                    .collect();
                kept.sort();
                kept.join(",")
            };
            if name.ends_with("_bucket") {
                let le = &labels.iter().find(|(k, _)| k == "le").expect("bucket le").1;
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().expect("le is numeric")
                };
                buckets
                    .entry((family.clone(), series_key(&labels, true)))
                    .or_default()
                    .push((le, value));
            } else if name.ends_with("_count") && types.get(&family).unwrap() == "histogram" {
                counts.insert((family.clone(), series_key(&labels, false)), value);
            }
        }

        assert!(!buckets.is_empty(), "histogram families present");
        for ((family, series), rows) in &buckets {
            for pair in rows.windows(2) {
                assert!(
                    pair[0].0 < pair[1].0,
                    "{family}{{{series}}}: le values out of order"
                );
                assert!(
                    pair[0].1 <= pair[1].1,
                    "{family}{{{series}}}: buckets not cumulative"
                );
            }
            let (last_le, last_count) = *rows.last().unwrap();
            assert!(
                last_le.is_infinite(),
                "{family}{{{series}}}: missing +Inf bucket"
            );
            let count = counts
                .get(&(family.clone(), series.clone()))
                .unwrap_or_else(|| panic!("{family}{{{series}}}: missing _count"));
            assert_eq!(last_count, *count, "{family}{{{series}}}: +Inf != count");
        }
        // The hostile tenant id survived the trip through escaping.
        assert!(text.contains("tenant=\"we\\\"ird\\\\ten\""));
        // The recorded exemplar rides its bucket line.
        assert!(
            text.contains(&format!(
                " # {{trace_id=\"{}\"}} 0.00035",
                t2v_trace::format_id(0xABCD_EF01)
            )),
            "exemplar rendered"
        );
    }
}
