//! A sharded worker pool with bounded queues — the CPU stage of the server.
//!
//! Connection threads do the blocking I/O; translation jobs are pushed here
//! so the number of in-flight translations is bounded no matter how many
//! sockets are open. Each shard owns an independent `Mutex<VecDeque>` +
//! `Condvar` and a slice of the workers, so queue contention divides by the
//! shard count. Submission round-robins across shards and probes every shard
//! once before giving up; a full pool returns [`SubmitError::Overloaded`]
//! and the caller sheds load with a 503 instead of queueing unboundedly.

use crate::metrics::Metrics;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A one-value rendezvous between a connection thread and a worker.
pub struct OneShot<T> {
    inner: Arc<(Mutex<Option<T>>, Condvar)>,
}

impl<T> Clone for OneShot<T> {
    fn clone(&self) -> Self {
        OneShot {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> OneShot<T> {
    pub fn new() -> Self {
        OneShot {
            inner: Arc::new((Mutex::new(None), Condvar::new())),
        }
    }

    pub fn send(&self, value: T) {
        let (slot, cv) = &*self.inner;
        *lock(slot) = Some(value);
        cv.notify_all();
    }

    /// Block until a value arrives or `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        let (slot, cv) = &*self.inner;
        let mut guard = lock(slot);
        let deadline = std::time::Instant::now() + timeout;
        while guard.is_none() {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return None;
            }
            let (g, _) = cv.wait_timeout(guard, left).unwrap_or_else(|e| {
                let (g, t) = e.into_inner();
                (g, t)
            });
            guard = g;
        }
        guard.take()
    }
}

impl<T> Default for OneShot<T> {
    fn default() -> Self {
        OneShot::new()
    }
}

#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Every shard's queue is at capacity, or the submitting class has
    /// exhausted its weighted share of the pool.
    Overloaded,
    /// The pool is shutting down.
    ShuttingDown,
}

struct Shard {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    capacity: usize,
}

/// Weighted admission budget for one submission class (one per backend in
/// the serving layer): at most `max` jobs of the class may be in the system
/// (queued or executing) at once, so a flood of cheap-backend traffic can
/// never squeeze the heavy backends out of the pool — shares are
/// proportional to the configured weights.
struct ClassBudget {
    in_flight: AtomicUsize,
    max: usize,
}

struct PoolShared {
    shards: Vec<Shard>,
    /// Per-class budgets; empty ⇒ no class-level admission control.
    classes: Vec<ClassBudget>,
    shutdown: AtomicBool,
    metrics: Arc<Metrics>,
}

/// Decrements a class's in-flight count when its job finishes (or is
/// dropped un-run: rejected submission, shutdown drain, worker panic — the
/// `Drop` runs in every case, so budgets can never leak).
struct InFlightGuard {
    shared: Arc<PoolShared>,
    class: usize,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.shared.classes[self.class]
            .in_flight
            .fetch_sub(1, Ordering::AcqRel);
    }
}

/// The pool handle. Dropping it without [`WorkerPool::shutdown`] detaches
/// the workers (they park on their condvars until process exit), so call
/// `shutdown` for an orderly stop.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    next: AtomicUsize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn `workers` threads over `shards` queues of `queue_capacity`
    /// each, with no class-level admission control.
    pub fn new(
        workers: usize,
        shards: usize,
        queue_capacity: usize,
        metrics: Arc<Metrics>,
    ) -> WorkerPool {
        WorkerPool::new_weighted(workers, shards, queue_capacity, &[], metrics)
    }

    /// [`WorkerPool::new`] with weighted submission classes: class `i` may
    /// hold at most `max(1, ⌊total · wᵢ / Σw⌋)` jobs in the system at once,
    /// where `total` is every queue slot plus every worker. Pass an empty
    /// slice for an unclassed pool.
    pub fn new_weighted(
        workers: usize,
        shards: usize,
        queue_capacity: usize,
        class_weights: &[u32],
        metrics: Arc<Metrics>,
    ) -> WorkerPool {
        let workers = workers.max(1);
        let shards = shards.clamp(1, workers);
        let total_slots = shards * queue_capacity.max(1) + workers;
        let weight_sum: u64 = class_weights.iter().map(|&w| w.max(1) as u64).sum();
        let shared = Arc::new(PoolShared {
            shards: (0..shards)
                .map(|_| Shard {
                    queue: Mutex::new(VecDeque::with_capacity(queue_capacity.max(1))),
                    cv: Condvar::new(),
                    capacity: queue_capacity.max(1),
                })
                .collect(),
            classes: class_weights
                .iter()
                .map(|&w| ClassBudget {
                    in_flight: AtomicUsize::new(0),
                    max: ((total_slots as u64 * w.max(1) as u64 / weight_sum.max(1)) as usize)
                        .max(1),
                })
                .collect(),
            shutdown: AtomicBool::new(false),
            metrics,
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("t2v-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w % shards))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            next: AtomicUsize::new(0),
            workers: Mutex::new(handles),
        }
    }

    /// Enqueue `job`, probing every shard once starting from the round-robin
    /// cursor. O(shards) worst case, lock-per-probe.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        self.enqueue(Box::new(job))
    }

    /// [`WorkerPool::submit`] under class `class`'s weighted budget. If the
    /// class is at its share, the job is shed with
    /// [`SubmitError::Overloaded`] even while other classes' slots are
    /// free. Classes beyond the configured weight vector (or any class on
    /// an unclassed pool) bypass admission control.
    pub fn submit_classed(
        &self,
        class: usize,
        job: impl FnOnce() + Send + 'static,
    ) -> Result<(), SubmitError> {
        let Some(budget) = self.shared.classes.get(class) else {
            return self.submit(job);
        };
        if budget.in_flight.fetch_add(1, Ordering::AcqRel) >= budget.max {
            budget.in_flight.fetch_sub(1, Ordering::AcqRel);
            return Err(SubmitError::Overloaded);
        }
        let guard = InFlightGuard {
            shared: Arc::clone(&self.shared),
            class,
        };
        // The guard rides inside the job: whether it runs, panics, or is
        // dropped unexecuted, the slot is released exactly once.
        self.enqueue(Box::new(move || {
            let _guard = guard;
            job();
        }))
    }

    /// The weighted in-system budget of `class`, if the pool is classed.
    pub fn class_share(&self, class: usize) -> Option<usize> {
        self.shared.classes.get(class).map(|c| c.max)
    }

    fn enqueue(&self, job: Job) -> Result<(), SubmitError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let shards = self.shared.shards.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        for probe in 0..shards {
            let shard = &self.shared.shards[(start + probe) % shards];
            let mut queue = lock(&shard.queue);
            if queue.len() < shard.capacity {
                queue.push_back(job);
                drop(queue);
                self.shared
                    .metrics
                    .queue_depth
                    .fetch_add(1, Ordering::Relaxed);
                shard.cv.notify_one();
                return Ok(());
            }
        }
        Err(SubmitError::Overloaded)
    }

    /// Jobs waiting across all shards (observational; racy by nature).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .shards
            .iter()
            .map(|s| lock(&s.queue).len())
            .sum()
    }

    /// Stop accepting jobs and join the workers. Queued jobs that already
    /// made it in are still executed. `&self` so a pool shared behind an
    /// `Arc` can be stopped in place; idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for shard in &self.shared.shards {
            shard.cv.notify_all();
        }
        for h in lock(&self.workers).drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, home: usize) {
    let shards = shared.shards.len();
    loop {
        // Fast path: wait on the home shard. If it stays empty briefly, steal
        // a job from any other shard so one hot shard can't starve while
        // other workers idle.
        let job = {
            let shard = &shared.shards[home];
            let mut queue = lock(&shard.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                let (q, timeout) = shard
                    .cv
                    .wait_timeout(queue, Duration::from_millis(5))
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
                if timeout.timed_out() {
                    drop(queue);
                    if let Some(job) = steal(shared, home, shards) {
                        break Some(job);
                    }
                    queue = lock(&shard.queue);
                }
            }
        };
        match job {
            Some(job) => {
                shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                // A panicking job must not take the worker with it: with no
                // respawn, `workers` panics would silently drain the pool to
                // zero and wedge the server. Unwinding drops the job's
                // captured state, which is where fail-fast lives: the
                // serving layer rides a reply guard inside every job, so the
                // drop fulfils the caller's OneShot with a structured
                // `internal` error immediately instead of leaving the
                // connection thread to time out.
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                    shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => return,
        }
    }
}

fn steal(shared: &PoolShared, home: usize, shards: usize) -> Option<Job> {
    for probe in 1..shards {
        let shard = &shared.shards[(home + probe) % shards];
        if let Some(job) = lock(&shard.queue).pop_front() {
            return Some(job);
        }
    }
    None
}

/// Poison-transparent lock: a panicking job poisons nothing we can't use —
/// the queue itself is always structurally valid.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Barrier;

    fn pool(workers: usize, shards: usize, cap: usize) -> WorkerPool {
        WorkerPool::new(workers, shards, cap, Arc::new(Metrics::new()))
    }

    #[test]
    fn executes_submitted_jobs() {
        // Queue capacity covers every job: workers may not drain at all
        // before the submit loop finishes on a single-core host.
        let p = pool(4, 2, 64);
        let counter = Arc::new(AtomicU64::new(0));
        let slots: Vec<OneShot<u64>> = (0..64).map(|_| OneShot::new()).collect();
        for (i, slot) in slots.iter().enumerate() {
            let counter = Arc::clone(&counter);
            let slot = slot.clone();
            p.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                slot.send(i as u64);
            })
            .unwrap();
        }
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(slot.recv_timeout(Duration::from_secs(5)), Some(i as u64));
        }
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        p.shutdown();
    }

    #[test]
    fn overload_is_deterministic_when_workers_are_blocked() {
        // 1 worker, 1 shard, queue of 2. Gate the worker so nothing drains.
        let p = pool(1, 1, 2);
        let gate = Arc::new(Barrier::new(2));
        let started = OneShot::new();
        {
            let gate = Arc::clone(&gate);
            let started = started.clone();
            p.submit(move || {
                started.send(());
                gate.wait();
            })
            .unwrap();
        }
        // Wait until the worker is inside the gated job, then fill the queue.
        started.recv_timeout(Duration::from_secs(5)).unwrap();
        p.submit(|| {}).unwrap();
        p.submit(|| {}).unwrap();
        assert_eq!(p.queue_depth(), 2);
        assert_eq!(p.submit(|| {}).unwrap_err(), SubmitError::Overloaded);
        gate.wait(); // release the worker
        p.shutdown();
    }

    #[test]
    fn workers_steal_across_shards() {
        // 2 workers × 2 shards; saturate shard 0 only — worker 1 (home
        // shard 1) must steal or the jobs take twice as long.
        let p = pool(2, 2, 64);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            // Both submissions round-robin, so both shards get work; the
            // stealing path is exercised by the uneven finish order.
            p.submit(move || {
                std::thread::sleep(Duration::from_micros(200));
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while done.load(Ordering::Relaxed) < 32 {
            assert!(std::time::Instant::now() < deadline, "jobs never finished");
            std::thread::sleep(Duration::from_millis(1));
        }
        p.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_jobs_but_runs_queued_ones() {
        let p = pool(1, 1, 8);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..4 {
            let done = Arc::clone(&done);
            p.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        p.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panicking_jobs_do_not_kill_workers() {
        let metrics = Arc::new(Metrics::new());
        let p = WorkerPool::new(1, 1, 8, Arc::clone(&metrics));
        // Several panicking jobs in a row on the single worker…
        for _ in 0..3 {
            p.submit(|| panic!("job blew up")).unwrap();
        }
        // …and the same worker must still execute real work afterwards.
        let slot = OneShot::new();
        {
            let slot = slot.clone();
            p.submit(move || slot.send(42u64)).unwrap();
        }
        assert_eq!(slot.recv_timeout(Duration::from_secs(5)), Some(42));
        assert_eq!(metrics.worker_panics.load(Ordering::Relaxed), 3);
        p.shutdown();
    }

    #[test]
    fn weighted_classes_get_proportional_shares() {
        // 2 workers + 2 shards × 8 slots = 18 in-system slots; weights 4:1
        // and 1:1 splits.
        let p = WorkerPool::new_weighted(2, 2, 8, &[4, 1], Arc::new(Metrics::new()));
        assert_eq!(p.class_share(0), Some((18 * 4) / 5)); // 14
        assert_eq!(p.class_share(1), Some(18 / 5).map(|s: usize| s.max(1))); // 3
        assert_eq!(p.class_share(2), None, "unknown class is unbudgeted");
        p.shutdown();

        // Tiny pools still give every class at least one slot.
        let p = WorkerPool::new_weighted(1, 1, 1, &[1, 1_000_000], Arc::new(Metrics::new()));
        assert_eq!(p.class_share(0), Some(1));
        p.shutdown();
    }

    #[test]
    fn saturated_class_sheds_while_other_classes_still_run() {
        // One gated worker; class 0 budget is 1 of the 5 in-system slots,
        // class 1 gets the rest.
        let p = WorkerPool::new_weighted(1, 1, 4, &[1, 4], Arc::new(Metrics::new()));
        assert_eq!(p.class_share(0), Some(1));
        assert_eq!(p.class_share(1), Some(4));
        let gate = Arc::new(Barrier::new(2));
        let started = OneShot::new();
        {
            let gate = Arc::clone(&gate);
            let started = started.clone();
            p.submit_classed(0, move || {
                started.send(());
                gate.wait();
            })
            .unwrap();
        }
        started.recv_timeout(Duration::from_secs(5)).unwrap();
        // Class 0 is now at its share: more class-0 work is shed…
        assert_eq!(
            p.submit_classed(0, || {}).unwrap_err(),
            SubmitError::Overloaded
        );
        // …while class 1 still has queue room.
        let done = OneShot::new();
        {
            let done = done.clone();
            p.submit_classed(1, move || done.send(42u64)).unwrap();
        }
        gate.wait();
        assert_eq!(done.recv_timeout(Duration::from_secs(5)), Some(42));
        // The finished class-0 job released its slot: admission works again.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match p.submit_classed(0, || {}) {
                Ok(()) => break,
                Err(SubmitError::Overloaded) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("class slot never released: {e:?}"),
            }
        }
        p.shutdown();
    }

    #[test]
    fn panicking_classed_jobs_release_their_budget() {
        let p = WorkerPool::new_weighted(1, 1, 4, &[1, 1], Arc::new(Metrics::new()));
        let share = p.class_share(0).unwrap();
        for _ in 0..share {
            // Serialise: wait for each panic to be processed so the budget
            // check below races nothing.
            p.submit_classed(0, || panic!("boom")).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let slot = OneShot::new();
            let s = slot.clone();
            match p.submit_classed(0, move || s.send(1u64)) {
                Ok(()) => {
                    assert_eq!(slot.recv_timeout(Duration::from_secs(5)), Some(1));
                    break;
                }
                Err(SubmitError::Overloaded) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("panicked jobs leaked budget: {e:?}"),
            }
        }
        p.shutdown();
    }

    #[test]
    fn oneshot_timeout_expires_empty() {
        let slot: OneShot<()> = OneShot::new();
        assert_eq!(slot.recv_timeout(Duration::from_millis(10)), None);
    }
}
