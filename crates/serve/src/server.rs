//! The service itself: state construction, request handling, and the
//! TCP transport.
//!
//! Thread model (DESIGN.md §7): one acceptor thread hands each socket to a
//! lightweight connection thread (blocking reads, keep-alive); connection
//! threads answer health/metrics/cache-hits inline and push translation
//! jobs into the sharded [`WorkerPool`], which bounds CPU-stage concurrency
//! regardless of how many sockets are open. Overload — full queues or too
//! many sockets — answers 503 immediately instead of queueing unboundedly.
//!
//! The HTTP surface is versioned (DESIGN.md §8): every registered
//! [`Translator`] backend serves through `POST /v1/translate` (with
//! `"backend"` selection and optional NDJSON stage streaming),
//! `POST /v1/translate/batch`, and `GET /v1/backends`; the pre-redesign
//! unversioned `POST /translate` answers its deprecation policy
//! (308 redirect or 410 gone, `legacy_translate` knob).

use crate::access_log::AccessLog;
use crate::batch::{BatchRetriever, Batcher};
use crate::breaker::{Admission, BreakerConfig, CircuitBreaker};
use crate::cache::ShardedTtlLruCache;
use crate::config::NetMode;
use crate::config::{AnnMode, ConfigError, LegacyRoute, ServeConfig};
use crate::http::{self, BodySink, Request, Response};
use crate::metrics::{Metrics, Route, TenantMetrics};
use crate::pool::{OneShot, SubmitError, WorkerPool};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use t2v_baselines::{BaselineTrainConfig, NeuralSeq2Seq, RgVisNet, Seq2Vis, TransformerBaseline};
use t2v_core::{
    BackendInfo, BackendRegistry, StageRecord, StageSink, TranslateError, TranslateRequest,
    TranslateResponse, Translator,
};
use t2v_corpus::{generate, Corpus, Database};
use t2v_engine::{execute, Json, Store};
use t2v_gred::{AutoRetriever, DirectRetriever, Gred};
use t2v_llm::{LlmConfig, SimulatedChatModel};
use t2v_store::{EmbedderPool, LibrarySource, Provenance, SnapshotError};
use t2v_tenant::{snapshot_filename, CorpusSpec, RcuCell, TenantSpec, DEFAULT_TENANT_ID};
use t2v_trace::{FinishedTrace, Recorder, Stage, Trace};

/// Why the server could not start. Every variant prints as one line and
/// exits cleanly in the binaries — startup problems are operator errors or
/// environment damage, not panics.
#[derive(Debug)]
pub enum StartupError {
    /// A knob that parsed cleanly points at an environment that cannot
    /// work (missing snapshot_save parent, absent tenant_dir, ...). Caught
    /// by `ServeConfig::validate` *before* any expensive build.
    Config(ConfigError),
    /// The library snapshot could not be loaded or trusted.
    Snapshot(SnapshotError),
    /// The startup tenant set could not be materialised (catalog scan
    /// failure, per-tenant snapshot failure, ...).
    Tenant(String),
    /// Binding the listen address (or other socket setup) failed.
    Io(std::io::Error),
}

impl std::fmt::Display for StartupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartupError::Config(e) => write!(f, "config: {e}"),
            StartupError::Snapshot(e) => write!(f, "library snapshot: {e}"),
            StartupError::Tenant(e) => write!(f, "tenant: {e}"),
            StartupError::Io(e) => write!(f, "cannot bind: {e}"),
        }
    }
}

impl std::error::Error for StartupError {}

impl From<SnapshotError> for StartupError {
    fn from(e: SnapshotError) -> Self {
        StartupError::Snapshot(e)
    }
}

impl From<std::io::Error> for StartupError {
    fn from(e: std::io::Error) -> Self {
        StartupError::Io(e)
    }
}

/// One servable database: schema, synthesized rows, and the fingerprint that
/// scopes cache entries to exactly this (schema, data) pair.
pub struct DbEntry {
    pub db: Database,
    pub store: Store,
    pub fingerprint: u64,
}

/// Cache key: tenant epoch × backend index × normalised NLQ × database
/// fingerprint × response shape. The backend index namespaces the cache
/// per backend — the same question through different models must never
/// share an entry — and the tenant epoch namespaces it per *attachment*:
/// every attach mints a fresh epoch, so tenants can never cross-hit, and a
/// detach-then-reattach cycle can never resurrect stale entries (the old
/// epoch's entries simply age out of the LRU).
pub type CacheKey = (u32, u16, Box<str>, u64, bool);

/// What the worker pool hands back for one translation: the serialised body
/// plus the HTTP status the connection thread frames it with. Translation
/// outcomes — including structured translation-level errors like
/// `no_output` — are 200 by the v1 contract; `internal` failures (bugs,
/// injected faults, a worker that died mid-job) are 500, and a job whose
/// deadline was already spent when a worker picked it up is 504.
#[derive(Clone)]
pub struct Reply {
    pub status: u16,
    pub body: Arc<Vec<u8>>,
}

/// Late-bound handle to the micro-batcher's retriever. The backend registry
/// is built with server state (before the batcher thread exists); the
/// spawned server plugs the retriever in, and until then — and in tests
/// that never spawn — the GRED backend falls back to direct lookups, which
/// are bit-identical by the batcher's correctness contract.
#[derive(Clone, Default)]
pub struct RetrieverSlot(Arc<OnceLock<BatchRetriever>>);

impl RetrieverSlot {
    fn set(&self, retriever: BatchRetriever) {
        let _ = self.0.set(retriever);
    }

    fn get(&self) -> Option<&BatchRetriever> {
        self.0.get()
    }
}

/// The GRED pipeline as a registry backend: same `Translator` surface as
/// every baseline, with retrieval routed through the server's micro-batcher
/// once it is running.
struct GredBackend {
    gred: Gred<SimulatedChatModel>,
    slot: RetrieverSlot,
    /// ANN routing for the direct (non-batched) path: `None` = exact flat
    /// scan, `Some(n)` = probe the library's attached IVF index with
    /// `n` cells (0 ⇒ the index default). Mirrors the batcher's routing so
    /// batched and direct lookups stay identical.
    ann_nprobe: Option<usize>,
}

impl GredBackend {
    fn run(
        &self,
        req: &TranslateRequest<'_>,
        sink: Option<&mut dyn StageSink>,
    ) -> Result<TranslateResponse, TranslateError> {
        match (self.slot.get(), self.ann_nprobe) {
            (Some(r), _) => self.gred.translate_api(req, r, sink),
            (None, Some(nprobe)) => self.gred.translate_api(
                req,
                &AutoRetriever {
                    library: self.gred.library(),
                    nprobe,
                },
                sink,
            ),
            (None, None) => {
                self.gred
                    .translate_api(req, &DirectRetriever(self.gred.library()), sink)
            }
        }
    }
}

impl Translator for GredBackend {
    fn info(&self) -> BackendInfo {
        self.gred.info()
    }

    fn translate(&self, req: &TranslateRequest<'_>) -> Result<TranslateResponse, TranslateError> {
        self.run(req, None)
    }

    fn translate_streamed(
        &self,
        req: &TranslateRequest<'_>,
        sink: &mut dyn StageSink,
    ) -> Result<TranslateResponse, TranslateError> {
        self.run(req, Some(sink))
    }
}

/// One tenant's complete serving runtime: its corpus's backends, GRED
/// pipeline, databases, library provenance, and metrics handle. Immutable
/// once built — attach/detach swaps whole `Arc<TenantRuntime>`s in and out
/// of the RCU table, never mutates one in place.
pub struct TenantRuntime {
    /// The tenant id (`default` for the implicit tenant the unprefixed
    /// `/v1/*` routes serve).
    pub id: String,
    /// Unique per attachment within the process — the cache-key namespace.
    pub epoch: u32,
    /// Canonical `profile:seed` label of the corpus this tenant serves.
    pub corpus_label: String,
    pub gred: Gred<SimulatedChatModel>,
    pub registry: BackendRegistry,
    pub dbs: HashMap<String, Arc<DbEntry>>,
    /// How this tenant's embedding library materialised.
    pub library_provenance: Provenance,
    /// Fingerprint of the training split the tenant's library covers.
    pub library_fingerprint: u64,
    /// Per-backend circuit breakers, parallel to `registry` order. A
    /// backend whose breaker is open fast-fails (or degrades) instead of
    /// queueing doomed work; see DESIGN.md §11.
    pub breakers: Vec<Arc<CircuitBreaker>>,
    /// Lock-free recording handle into the `tenant="<id>"` counter family.
    pub metrics: Arc<TenantMetrics>,
    /// Only the default tenant participates in the weighted worker-pool
    /// classes and the unlabelled per-backend metric families (both are
    /// sized/registered at startup for a fixed backend list).
    pub is_default: bool,
    /// ANN routing in effect for this tenant's GRED retrieval (`None` =
    /// exact flat scans; `Some(n)` = attached IVF index probed with `n`
    /// cells, 0 ⇒ index default).
    pub ann_nprobe: Option<usize>,
    batch_slot: RetrieverSlot,
}

impl TenantRuntime {
    /// The index kind actually serving this tenant's retrieval: the
    /// library's attached ANN index when routing is enabled and training
    /// succeeded, flat otherwise (ann=off, or ann=on over a corpus too
    /// small to benefit).
    pub fn index_kind(&self) -> t2v_embed::IndexKind {
        match self.ann_nprobe {
            Some(_) => self.gred.library().index_kind(),
            None => t2v_embed::IndexKind::Flat,
        }
    }

    /// The per-query probe count in effect (`None` when serving flat).
    pub fn effective_nprobe(&self) -> Option<usize> {
        let pair = self.gred.library().ann()?;
        let n = self.ann_nprobe?;
        Some(if n == 0 {
            pair.nlq.default_nprobe()
        } else {
            n.min(pair.nlq.cells())
        })
    }
}

/// The immutable tenant set readers resolve against, in attach order
/// (default first). Swapped wholesale through [`RcuCell`] on admin
/// mutations; linear lookup — tenant counts are dozens, not thousands, and
/// a scan over inline `Arc`s beats a hash probe at that size.
pub struct TenantTable {
    list: Vec<Arc<TenantRuntime>>,
}

impl TenantTable {
    pub fn get(&self, id: &str) -> Option<&Arc<TenantRuntime>> {
        self.list.iter().find(|t| t.id == id)
    }

    pub fn iter(&self) -> impl Iterator<Item = &Arc<TenantRuntime>> {
        self.list.iter()
    }

    pub fn len(&self) -> usize {
        self.list.len()
    }

    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

/// A runtime attach request (the admin route's parsed body).
pub struct AttachRequest {
    pub id: String,
    pub corpus: CorpusSpec,
    /// Load the tenant's library from this verified snapshot instead of
    /// building it.
    pub snapshot: Option<PathBuf>,
    /// Backends to register for the tenant (default: the server's
    /// configured backend list).
    pub backends: Option<String>,
}

/// Why an admin tenant mutation was refused.
#[derive(Debug)]
pub enum TenantAdminError {
    /// Attach of an id that is already serving.
    Duplicate(String),
    /// Detach/lookup of an id that is not serving.
    Unknown(String),
    /// The default tenant cannot be detached.
    Undetachable,
    /// The tenant's snapshot could not be loaded or trusted.
    Snapshot(SnapshotError),
    /// A malformed id or backend list.
    Invalid(String),
}

impl std::fmt::Display for TenantAdminError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantAdminError::Duplicate(id) => write!(f, "tenant '{id}' is already attached"),
            TenantAdminError::Unknown(id) => write!(f, "unknown tenant '{id}'"),
            TenantAdminError::Undetachable => {
                write!(f, "the '{DEFAULT_TENANT_ID}' tenant cannot be detached")
            }
            TenantAdminError::Snapshot(e) => write!(f, "snapshot: {e}"),
            TenantAdminError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl TenantAdminError {
    /// Stable wire code for the structured error envelope.
    pub fn code(&self) -> &'static str {
        match self {
            TenantAdminError::Duplicate(_) => "duplicate_tenant",
            TenantAdminError::Unknown(_) => "unknown_tenant",
            TenantAdminError::Undetachable => "undetachable",
            TenantAdminError::Snapshot(_) => "snapshot_error",
            TenantAdminError::Invalid(_) => "bad_request",
        }
    }

    fn status(&self) -> u16 {
        match self {
            TenantAdminError::Duplicate(_) => 409,
            TenantAdminError::Unknown(_) => 404,
            TenantAdminError::Undetachable => 400,
            TenantAdminError::Snapshot(_) => 422,
            TenantAdminError::Invalid(_) => 400,
        }
    }
}

/// Everything the request path reads. Shared read-only across all threads
/// — except the tenant table, which admin routes swap RCU-style (readers
/// never lock on the fast path; see `t2v_tenant::RcuCell`).
pub struct ServerState {
    pub config: ServeConfig,
    /// The default tenant's GRED pipeline (shared `Arc` internals with
    /// `default_tenant` — kept as a field for the pre-tenant API surface).
    pub gred: Gred<SimulatedChatModel>,
    /// The default tenant's registry (same sharing note as `gred`).
    pub registry: BackendRegistry,
    /// The default tenant's databases (same sharing note as `gred`).
    pub dbs: HashMap<String, Arc<DbEntry>>,
    /// One translation cache across all tenants, namespaced by the tenant
    /// epoch in [`CacheKey`]: global capacity stays bounded no matter how
    /// many tenants attach, and a detached tenant's entries age out of the
    /// shared LRU instead of needing an eager purge.
    pub cache: ShardedTtlLruCache<CacheKey, Arc<Vec<u8>>>,
    pub metrics: Arc<Metrics>,
    /// How the default tenant's embedding library materialised.
    pub library_provenance: Provenance,
    /// Fingerprint of the default tenant's training split.
    pub library_fingerprint: u64,
    /// The implicit tenant the unprefixed `/v1/*` routes serve.
    pub default_tenant: Arc<TenantRuntime>,
    /// Flight recorder for completed request traces (`None` when
    /// `trace_buffer=0`); backs `GET /v1/admin/trace/*`. See DESIGN.md §12.
    pub recorder: Option<Recorder>,
    /// Structured JSON access log (`None` when `access_log=` is unset).
    /// `Arc`-shared with the observability sampler thread, which appends
    /// SLO state-transition lines between request lines.
    pub access_log: Option<Arc<AccessLog>>,
    /// The live tenant table (default + attached), RCU-swapped by admin
    /// mutations.
    tenants: RcuCell<TenantTable>,
    /// Serialises attach/detach and owns the embedder dedup pool (tenants
    /// sharing an embedder fingerprint share one table in memory).
    admin: Mutex<EmbedderPool>,
    /// Mints cache-key epochs for attachments (0 is the default tenant).
    next_epoch: AtomicU32,
}

impl ServerState {
    /// Generate the configured corpus, prepare every configured backend
    /// over it, synthesize the execution stores. The expensive part of
    /// startup (the neural baselines train here).
    pub fn build(config: ServeConfig) -> Result<ServerState, StartupError> {
        // Environment validation runs before the corpus exists: a broken
        // snapshot_save path must cost milliseconds, not a full build.
        config.validate().map_err(StartupError::Config)?;
        let corpus = generate(&config.corpus.corpus_config());
        ServerState::from_corpus(&corpus, config)
    }

    /// Like [`ServerState::build`] for an already-generated corpus (tests
    /// and benches reuse one corpus across servers).
    ///
    /// The default tenant's embedding library resolves through the
    /// [`LibrarySource`] seam: `library_snapshot=` loads the snapshot
    /// (falling back to a build only when the file does not exist — corrupt
    /// or mismatched snapshots fail startup loudly), and `snapshot_save=`
    /// writes a freshly built library through to disk so the *next* restart
    /// is warm. Startup tenants (`tenants=` / `tenant_dir=`) materialise
    /// after the default, sharing embedder tables where fingerprints match.
    pub fn from_corpus(corpus: &Corpus, config: ServeConfig) -> Result<ServerState, StartupError> {
        config.validate().map_err(StartupError::Config)?;
        let source = if config.library_snapshot.is_empty() {
            LibrarySource::Build
        } else {
            LibrarySource::SnapshotOrBuild {
                path: config.library_snapshot.clone().into(),
            }
        };
        let mut embedder_pool = EmbedderPool::new();
        let mut resolved = source.resolve(corpus, &t2v_embed::EmbedConfig::default())?;
        embedder_pool.adopt(&mut resolved);
        let mut snapshots_written = 0u64;
        if resolved.provenance == Provenance::Built && !config.snapshot_save.is_empty() {
            t2v_store::save(&config.snapshot_save, &resolved.library, &resolved.embedder)?;
            snapshots_written = 1;
        }
        let ids = config.backend_ids();
        let metrics = Arc::new(Metrics::with_backends(&ids));
        let default_tenant = Arc::new(build_tenant_runtime(
            DEFAULT_TENANT_ID,
            0,
            config.corpus.label(),
            corpus,
            resolved,
            &config,
            &ids,
            metrics.register_tenant(DEFAULT_TENANT_ID),
            true,
        ));
        let cache = ShardedTtlLruCache::new(
            config.cache_capacity,
            config.cache_ttl(),
            config.effective_cache_shards(),
        );
        metrics
            .cache_shards
            .store(cache.shard_count() as u64, Ordering::Relaxed);
        metrics.set_library_info(
            default_tenant.library_fingerprint,
            default_tenant.library_provenance.label(),
            default_tenant.gred.library().len(),
        );
        metrics
            .snapshots_written
            .fetch_add(snapshots_written, Ordering::Relaxed);

        // Startup tenants: declared by the tenants= knob (snapshots pulled
        // from tenant_dir when the conventionally-named file exists), or —
        // with no declarations — by scanning tenant_dir as a catalog.
        let mut list = vec![Arc::clone(&default_tenant)];
        let mut next_epoch = 1u32;
        for (spec, tenant_source) in startup_tenants(&config)? {
            let tenant_corpus = generate(&spec.corpus.corpus_config());
            let mut tenant_resolved = tenant_source
                .resolve(&tenant_corpus, &t2v_embed::EmbedConfig::default())
                .map_err(|e| StartupError::Tenant(format!("'{}': {e}", spec.id)))?;
            embedder_pool.adopt(&mut tenant_resolved);
            list.push(Arc::new(build_tenant_runtime(
                &spec.id,
                next_epoch,
                spec.corpus.label(),
                &tenant_corpus,
                tenant_resolved,
                &config,
                &ids,
                metrics.register_tenant(&spec.id),
                false,
            )));
            next_epoch += 1;
        }

        let recorder = (config.trace_buffer > 0).then(|| Recorder::new(config.trace_buffer));
        let access_log = if config.access_log.is_empty() {
            None
        } else {
            // validate() already vetted the parent directory; an open
            // failure here (permissions, races) still fails startup loudly.
            Some(Arc::new(AccessLog::open(
                &config.access_log,
                config.access_log_rotate_mb,
                config.access_log_keep,
            )?))
        };

        Ok(ServerState {
            gred: default_tenant.gred.clone(),
            registry: default_tenant.registry.clone(),
            dbs: default_tenant.dbs.clone(),
            cache,
            metrics,
            library_provenance: default_tenant.library_provenance.clone(),
            library_fingerprint: default_tenant.library_fingerprint,
            default_tenant,
            recorder,
            access_log,
            tenants: RcuCell::new(TenantTable { list }),
            admin: Mutex::new(embedder_pool),
            next_epoch: AtomicU32::new(next_epoch),
            config,
        })
    }

    /// The live tenant table (lock-free on the reader fast path).
    pub fn tenants(&self) -> Arc<TenantTable> {
        self.tenants.load()
    }

    /// Attach a tenant to the running server: generate its corpus, resolve
    /// its library (verified snapshot or fresh build), construct its
    /// backend registry, and RCU-swap it into the table. In-flight requests
    /// never block on this — they keep reading the old table until the swap
    /// lands. This is also the backend hot-registration path: a fresh
    /// registry (any configured backend subset) materialises without a
    /// restart.
    pub fn attach_tenant(
        &self,
        req: &AttachRequest,
    ) -> Result<Arc<TenantRuntime>, TenantAdminError> {
        t2v_tenant::validate_tenant_id(&req.id)
            .map_err(|e| TenantAdminError::Invalid(e.message))?;
        let backends = match &req.backends {
            None => self.config.backends.clone(),
            Some(list) => {
                // Borrow the config grammar so the admin route accepts
                // exactly what the backends= knob accepts.
                let mut probe = self.config.clone();
                probe
                    .set("backends", list)
                    .map_err(|e| TenantAdminError::Invalid(e.message))?;
                probe.backends
            }
        };
        // The admin mutex serialises the whole read-build-swap sequence
        // (and guards the embedder pool); readers never touch it.
        let mut pool = self.admin.lock().expect("admin lock poisoned");
        if self.tenants.load().get(&req.id).is_some() {
            return Err(TenantAdminError::Duplicate(req.id.clone()));
        }
        let corpus = generate(&req.corpus.corpus_config());
        let source = match &req.snapshot {
            Some(path) => LibrarySource::Snapshot { path: path.clone() },
            None => LibrarySource::Build,
        };
        let mut resolved = source
            .resolve(&corpus, &t2v_embed::EmbedConfig::default())
            .map_err(TenantAdminError::Snapshot)?;
        pool.adopt(&mut resolved);
        let mut tenant_config = self.config.clone();
        tenant_config.backends = backends;
        let ids = tenant_config.backend_ids();
        let epoch = self.next_epoch.fetch_add(1, Ordering::AcqRel);
        let runtime = Arc::new(build_tenant_runtime(
            &req.id,
            epoch,
            req.corpus.label(),
            &corpus,
            resolved,
            &tenant_config,
            &ids,
            self.metrics.register_tenant(&req.id),
            false,
        ));
        let published = Arc::clone(&runtime);
        self.tenants.update(move |table| {
            let mut list = table.list.clone();
            list.push(Arc::clone(&published));
            TenantTable { list }
        });
        Ok(runtime)
    }

    /// Detach a tenant: RCU-swap a table without it. Translations already
    /// in flight hold their own `Arc<TenantRuntime>` and complete normally;
    /// the next request for the id gets a structured 404. The tenant's
    /// cache entries are left to age out of the shared LRU (their epoch is
    /// never minted again).
    pub fn detach_tenant(&self, id: &str) -> Result<(), TenantAdminError> {
        if id == DEFAULT_TENANT_ID {
            return Err(TenantAdminError::Undetachable);
        }
        let _pool = self.admin.lock().expect("admin lock poisoned");
        if self.tenants.load().get(id).is_none() {
            return Err(TenantAdminError::Unknown(id.to_string()));
        }
        self.tenants.update(|table| TenantTable {
            list: table.list.iter().filter(|t| t.id != id).cloned().collect(),
        });
        self.metrics.drop_tenant(id);
        Ok(())
    }
}

/// Build one tenant's runtime from its resolved library. The expensive
/// part of attach (the trained baselines train here, on the tenant's own
/// corpus).
#[allow(clippy::too_many_arguments)]
fn build_tenant_runtime(
    id: &str,
    epoch: u32,
    corpus_label: String,
    corpus: &Corpus,
    resolved: t2v_store::ResolvedLibrary,
    config: &ServeConfig,
    backend_ids: &[&str],
    tenant_metrics: Arc<TenantMetrics>,
    is_default: bool,
) -> TenantRuntime {
    // ANN adoption/training happens before the pipeline is assembled: a
    // snapshot-borne index is already attached (the decoder did it), and
    // `train_ann` declines rather than replaces, so this is idempotent.
    // With ann=on a too-small corpus declines and the tenant serves flat;
    // ann=force trains regardless (tests and smoke rigs).
    let ann_nprobe = config.effective_ann();
    if ann_nprobe.is_some() && resolved.library.ann().is_none() {
        let ivf_cfg = t2v_ann::IvfConfig {
            min_rows: match config.ann {
                AnnMode::Force => 1,
                _ => t2v_ann::DEFAULT_MIN_ROWS,
            },
            ..Default::default()
        };
        resolved.library.train_ann(&ivf_cfg);
    }
    let gred = Gred::from_parts(
        Arc::clone(&resolved.embedder),
        Arc::clone(&resolved.library),
        SimulatedChatModel::new(LlmConfig::default()),
        config.gred_config(),
    );
    let batch_slot = RetrieverSlot::default();
    let mut registry = BackendRegistry::new();
    // Trained baselines use a minimal profile: serving startup must stay
    // bounded (it runs in tests and CI), and the serving surface routes
    // requests — model quality is the bench binaries' concern.
    let train_cfg = BaselineTrainConfig {
        seed: config.store_seed,
        max_train: 64,
        epochs: 3,
        hidden: 24,
        emb: 16,
        ..BaselineTrainConfig::fast()
    };
    for backend_id in backend_ids {
        let backend: Arc<dyn Translator> = match *backend_id {
            "gred" => Arc::new(GredBackend {
                gred: gred.clone(),
                slot: batch_slot.clone(),
                ann_nprobe,
            }),
            "seq2vis" => Arc::new(Seq2Vis::train(corpus, &train_cfg)),
            "transformer" => Arc::new(TransformerBaseline::train(corpus, &train_cfg)),
            "rgvisnet" => Arc::new(RgVisNet::build(corpus)),
            "neural" => Arc::new(NeuralSeq2Seq::train(corpus, &train_cfg)),
            other => unreachable!("config validated backend id '{other}'"),
        };
        registry.register(*backend_id, backend);
    }
    // One breaker per backend, and the gauge cells go straight into the
    // tenant's metric family so `/metrics` renders
    // `t2v_breaker_state{tenant,backend}` without ever touching the
    // breaker's lock.
    let breakers: Vec<Arc<CircuitBreaker>> = backend_ids
        .iter()
        .map(|_| {
            Arc::new(CircuitBreaker::new(BreakerConfig {
                window: config.breaker_window,
                min_samples: config.breaker_min_samples,
                threshold_pct: config.breaker_threshold_pct,
                open_ms: config.breaker_open_ms,
            }))
        })
        .collect();
    let _ = tenant_metrics.breaker_states.set(
        backend_ids
            .iter()
            .zip(&breakers)
            .map(|(id, b)| (id.to_string(), b.state_cell()))
            .collect(),
    );
    let dbs = corpus
        .databases
        .iter()
        .map(|db| {
            let store = Store::synthesize(db, config.store_seed, config.store_rows);
            let fingerprint = db_fingerprint(db, config.store_seed, config.store_rows);
            (
                db.id.clone(),
                Arc::new(DbEntry {
                    db: db.clone(),
                    store,
                    fingerprint,
                }),
            )
        })
        .collect();
    TenantRuntime {
        id: id.to_string(),
        epoch,
        corpus_label,
        gred,
        registry,
        dbs,
        library_provenance: resolved.provenance,
        library_fingerprint: resolved.corpus_fingerprint,
        breakers,
        metrics: tenant_metrics,
        is_default,
        ann_nprobe,
        batch_slot,
    }
}

/// The startup tenant set: `(spec, library source)` pairs, derived from
/// the `tenants=` and `tenant_dir=` knobs.
fn startup_tenants(config: &ServeConfig) -> Result<Vec<(TenantSpec, LibrarySource)>, StartupError> {
    let declared = config.tenant_specs();
    if !declared.is_empty() {
        // Declared tenants: prefer the conventionally-named catalog
        // snapshot when one exists (strict — a present-but-broken file
        // fails startup), build otherwise.
        return Ok(declared
            .into_iter()
            .map(|spec| {
                let source = if config.tenant_dir.is_empty() {
                    LibrarySource::Build
                } else {
                    let path =
                        std::path::Path::new(&config.tenant_dir).join(snapshot_filename(&spec));
                    if path.exists() {
                        LibrarySource::Snapshot { path }
                    } else {
                        LibrarySource::Build
                    }
                };
                (spec, source)
            })
            .collect());
    }
    if config.tenant_dir.is_empty() {
        return Ok(Vec::new());
    }
    // Catalog mode: every conforming snapshot in the directory declares a
    // tenant; corrupt conforming files fail the whole scan loudly.
    let entries = t2v_tenant::scan_catalog(&config.tenant_dir)
        .map_err(|e| StartupError::Tenant(e.to_string()))?;
    Ok(entries
        .into_iter()
        .map(|e| (e.spec, LibrarySource::Snapshot { path: e.path }))
        .collect())
}

/// FNV-1a over everything that determines a translation + execution result
/// for a database: id, rendered schema, and the store synthesis parameters.
pub fn db_fingerprint(db: &Database, store_seed: u64, store_rows: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(db.id.as_bytes());
    eat(&[0xff]);
    eat(db.render_prompt_schema().as_bytes());
    eat(&store_seed.to_le_bytes());
    eat(&(store_rows as u64).to_le_bytes());
    h
}

/// Lowercase + collapse runs of whitespace: the embedder tokenizes
/// case-insensitively on non-alphanumerics, so NLQs that normalise equal
/// translate identically and may share a cache entry.
pub fn normalize_nlq(nlq: &str) -> String {
    let mut out = String::with_capacity(nlq.len());
    let mut pending_space = false;
    for c in nlq.chars() {
        if c.is_whitespace() {
            pending_space = !out.is_empty();
        } else {
            if pending_space {
                out.push(' ');
                pending_space = false;
            }
            out.extend(c.to_lowercase());
        }
    }
    out
}

fn opt_str(s: &Option<String>) -> Json {
    match s {
        Some(s) => Json::str(s.as_str()),
        None => Json::Null,
    }
}

fn stages_json(stages: &[StageRecord]) -> Json {
    Json::Arr(
        stages
            .iter()
            .map(|s| Json::obj([("name", Json::str(s.name)), ("dvq", opt_str(&s.dvq))]))
            .collect(),
    )
}

/// Serialise one translation outcome as the `/v1/translate` response body.
/// Pure and timing-free: the same inputs always serialise the same bytes,
/// which is what makes cache hits bit-identical to cold translations
/// (stage timings go to the per-backend metrics histograms instead).
/// Failures are structured `{"error": {"code", "message"}}` objects from
/// the [`TranslateError`] taxonomy.
pub fn render_translation(
    backend_id: &str,
    nlq_normalized: &str,
    entry: &DbEntry,
    want_vegalite: bool,
    result: &Result<TranslateResponse, TranslateError>,
) -> Vec<u8> {
    let mut body = Json::obj([
        ("backend", Json::str(backend_id)),
        ("db", Json::str(entry.db.id.as_str())),
        ("nlq", Json::str(nlq_normalized)),
    ]);
    match result {
        Ok(resp) => {
            body.set("stages", stages_json(&resp.stages));
            body.set("dvq", Json::str(resp.dvq.as_str()));
            if want_vegalite {
                match t2v_dvq::parse(&resp.dvq) {
                    Ok(q) => match execute(&q, &entry.store) {
                        Ok(rs) => body.set("vegalite", t2v_engine::to_vegalite(&q, &rs)),
                        Err(e) => {
                            body.set("vegalite", Json::Null);
                            body.set("vegalite_error", Json::str(format!("{e:?}")));
                        }
                    },
                    Err(e) => {
                        body.set("vegalite", Json::Null);
                        body.set("vegalite_error", Json::str(format!("{e}")));
                    }
                }
            }
        }
        Err(e) => {
            let stages: &[StageRecord] = match e {
                TranslateError::NoOutput { stages, .. }
                | TranslateError::InvalidOutput { stages, .. } => stages,
                _ => &[],
            };
            body.set("stages", stages_json(stages));
            body.set("dvq", Json::Null);
            body.set(
                "error",
                Json::obj([
                    ("code", Json::str(e.code())),
                    ("message", Json::str(e.to_string())),
                ]),
            );
        }
    }
    body.compact().into_bytes()
}

/// Run one translation through `backend` and serialise it — the body the
/// worker pool computes on a cache miss.
pub fn translate_body(
    backend: &dyn Translator,
    backend_id: &str,
    nlq_normalized: &str,
    entry: &DbEntry,
    want_vegalite: bool,
) -> Vec<u8> {
    let result = backend.translate(&TranslateRequest::new(nlq_normalized, &entry.db));
    render_translation(backend_id, nlq_normalized, entry, want_vegalite, &result)
}

/// What both connection drivers — the thread-per-connection loop and the
/// epoll event loop — share with every in-flight request.
pub(crate) struct Shared {
    pub(crate) state: Arc<ServerState>,
    pub(crate) pool: WorkerPool,
    pub(crate) shutdown: AtomicBool,
    /// Requests parsed by the event loop but not yet picked up by a
    /// dispatch thread (0 under the threaded driver). Surfaced in
    /// `/v1/admin/status` as the accept-side queue depth.
    pub(crate) dispatch_depth: AtomicU64,
    /// The self-contained ops plane (ring-buffer TSDB, SLO burn-rate
    /// engine, stage profiler); `None` when `obs_sample_ms=0` and
    /// `obs_profile_hz=0`. See DESIGN.md §15.
    pub(crate) obs: Option<Arc<t2v_obs::ObsEngine>>,
    /// Event-loop occupancy, published by the `t2v-event` thread every
    /// ~250ms (all zeros under the threaded driver). Read by
    /// `/v1/admin/status`.
    pub(crate) event_stats: EventStats,
}

/// Connection-state census of the epoll event loop, refreshed by the loop
/// itself so the status endpoint never has to lock the connection table.
#[derive(Default)]
pub(crate) struct EventStats {
    /// Connections currently accumulating request bytes.
    pub(crate) reading: AtomicU64,
    /// Connections with a request in flight on a dispatch thread.
    pub(crate) dispatched: AtomicU64,
    /// Connections flushing a response under write backpressure.
    pub(crate) writing: AtomicU64,
    /// Idle keep-alive connections parked between requests.
    pub(crate) keep_alive: AtomicU64,
    /// Read buffers currently parked in the loop's buffer pool.
    pub(crate) pool_buffers: AtomicU64,
    /// 1 while the loop is in its shutdown drain window.
    pub(crate) draining: AtomicU64,
}

/// The transport serving the listener: the classic thread-per-connection
/// acceptor, or the epoll event loop (`net=event`, the default).
enum Driver {
    Threaded(JoinHandle<()>),
    Event(crate::event::EventDriver),
}

/// A running server. Bind with [`Server::spawn`]; stop with
/// [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    batcher: Option<Batcher>,
    driver: Option<Driver>,
    addr: SocketAddr,
}

impl Server {
    /// Bind `state.config.addr` and start serving.
    pub fn spawn(state: Arc<ServerState>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&state.config.addr)?;
        let addr = listener.local_addr()?;
        let config = &state.config;
        // Arm the deterministic fault plan, if one is configured. The
        // injection points live in leaf crates that know nothing about
        // server instances, so arming is process-global — the knob exists
        // for chaos drills, which run one server per process. The spec
        // already parsed when the knob was set; a failure here means the
        // field was mutated directly, and silently serving unfaulted is
        // the safe answer.
        if !config.fault_plan.is_empty() {
            if let Ok(plan) = t2v_fault::FaultPlan::parse(&config.fault_plan) {
                t2v_fault::arm(&plan);
            }
        }
        // The batcher only serves the default tenant's GRED retrieval; skip
        // the thread entirely when gred is not registered. Attached tenants
        // fall back to direct lookups — bit-identical by the batcher's
        // correctness contract, so tenancy never changes translation bytes.
        let batcher = if config.batch && state.registry.get("gred").is_some() {
            let b = Batcher::spawn(
                state.gred.shared_library(),
                Duration::from_micros(config.batch_window_us),
                Arc::clone(&state.metrics),
                config.effective_ann(),
            );
            // From here on the GRED backend coalesces retrieval through the
            // batcher (bit-identical to the direct lookups it replaces).
            state.default_tenant.batch_slot.set(b.retriever());
            Some(b)
        } else {
            None
        };
        // One submission class per registered backend, weighted by the
        // `backend_weights` knob: heavy backends get proportionally more
        // in-system pool shares than trivial ones. With no weights
        // configured the pool stays *unclassed* — equal implicit weights
        // would still cap every backend at 1/N of the pool, a silent
        // throughput regression for skewed traffic nobody asked to shape.
        let weights = if config.backend_weights.is_empty() {
            Vec::new()
        } else {
            config.backend_weight_vector()
        };
        let pool = WorkerPool::new_weighted(
            config.effective_workers(),
            config.effective_shards(),
            config.queue_capacity,
            &weights,
            Arc::clone(&state.metrics),
        );
        for idx in 0..weights.len() {
            if let Some(share) = pool.class_share(idx) {
                state
                    .metrics
                    .backend(idx)
                    .pool_share
                    .store(share as u64, Ordering::Relaxed);
            }
        }
        let obs = build_obs(&state);
        let shared = Arc::new(Shared {
            state,
            pool,
            shutdown: AtomicBool::new(false),
            dispatch_depth: AtomicU64::new(0),
            obs,
            event_stats: EventStats::default(),
        });
        let driver = match shared.state.config.net {
            NetMode::Threaded => {
                let shared = Arc::clone(&shared);
                Driver::Threaded(
                    std::thread::Builder::new()
                        .name("t2v-acceptor".to_string())
                        .spawn(move || accept_loop(&shared, listener))
                        .expect("spawn acceptor thread"),
                )
            }
            NetMode::Event => Driver::Event(crate::event::EventDriver::spawn(
                Arc::clone(&shared),
                listener,
            )?),
        };
        Ok(Server {
            shared,
            batcher,
            driver: Some(driver),
            addr,
        })
    }

    /// The bound address (useful with `addr = 127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn state(&self) -> &ServerState {
        &self.shared.state
    }

    /// Orderly stop: close the listener, drain the pool, stop the batcher.
    /// Under the threaded driver open keep-alive connections die on their
    /// next read timeout; the event driver drains in-flight requests (idle
    /// sockets close immediately, busy ones finish their response) before
    /// its loop exits.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        match self.driver.take() {
            Some(Driver::Threaded(h)) => {
                // Poke the acceptor out of its blocking accept().
                let _ = TcpStream::connect(self.addr);
                let _ = h.join();
            }
            Some(Driver::Event(driver)) => driver.shutdown(),
            None => {}
        }
        self.shared.pool.shutdown();
        if let Some(b) = self.batcher.take() {
            b.shutdown();
        }
        if let Some(obs) = &self.shared.obs {
            obs.stop();
        }
    }
}

/// Construct and start the ops plane from the `obs_*` / `slo*` knobs.
/// Returns `None` when both cadence knobs are zero — the request path then
/// carries no observability overhead beyond the atomics it already bumps.
fn build_obs(state: &Arc<ServerState>) -> Option<Arc<t2v_obs::ObsEngine>> {
    let config = &state.config;
    if config.obs_sample_ms == 0 && config.obs_profile_hz == 0 {
        return None;
    }
    // The spec parsed when the knob was set (same contract as fault_plan);
    // a parse failure here means the field was mutated directly, and an
    // SLO-less ops plane is the safe answer.
    let slos = t2v_obs::parse_slos(&config.slo).unwrap_or_default();
    let sources = t2v_obs::SloSources {
        latency_bounds_s: crate::metrics::BUCKET_BOUNDS_NS
            .iter()
            .map(|&ns| ns as f64 / 1e9)
            .collect(),
        ..t2v_obs::SloSources::default()
    };
    let windows = t2v_obs::BurnWindows {
        fast_ms: config.slo_fast_s.saturating_mul(1000),
        slow_ms: config.slo_slow_s.saturating_mul(1000),
        ..t2v_obs::BurnWindows::default()
    };
    let engine = Arc::new(t2v_obs::ObsEngine::new(t2v_obs::ObsConfig {
        sample_ms: config.obs_sample_ms,
        retention_s: config.obs_retention_s,
        profile_hz: config.obs_profile_hz,
        slos,
        sources,
        windows,
    }));
    // The collector captures only the metrics registry (not the server
    // state) so the engine can never keep tenants or caches alive.
    let metrics = Arc::clone(&state.metrics);
    let collector: t2v_obs::Collector = Box::new(move || {
        let (requests, requests_5xx) = metrics.requests_all();
        let mut out = vec![
            ("http.requests".to_string(), requests),
            ("http.requests_5xx".to_string(), requests_5xx),
            (
                "http.rejected".to_string(),
                metrics.rejected.load(Ordering::Relaxed),
            ),
            (
                "cache.hits".to_string(),
                metrics.cache_hits.load(Ordering::Relaxed),
            ),
            (
                "cache.misses".to_string(),
                metrics.cache_misses.load(Ordering::Relaxed),
            ),
            (
                "deadline.exceeded".to_string(),
                metrics.deadline_exceeded.load(Ordering::Relaxed),
            ),
            (
                "degraded".to_string(),
                metrics.degraded.load(Ordering::Relaxed),
            ),
            (
                "breaker.opens".to_string(),
                metrics.breaker_opens.load(Ordering::Relaxed),
            ),
            (
                "worker.panics".to_string(),
                metrics.worker_panics.load(Ordering::Relaxed),
            ),
            (
                "conn.reaped".to_string(),
                metrics.conn_reaped.load(Ordering::Relaxed),
            ),
            (
                "queue.depth".to_string(),
                metrics.queue_depth.load(Ordering::Relaxed),
            ),
            (
                "connections.active".to_string(),
                metrics.connections_active.load(Ordering::Relaxed),
            ),
        ];
        let cumulative = metrics.request_total_latency.cumulative_counts();
        for (i, c) in cumulative.iter().enumerate() {
            out.push((format!("request_seconds.bucket:{i}"), *c));
        }
        out.push((
            "request_seconds.bucket:inf".to_string(),
            metrics.request_total_latency.count(),
        ));
        out
    });
    // SLO state flips land in the access log between request lines, so an
    // operator tailing it sees "when did it start burning" in context.
    let sink: Option<t2v_obs::TransitionSink> = state.access_log.as_ref().map(|log| {
        let log = Arc::clone(log);
        Box::new(move |t: &t2v_obs::SloTransition| {
            log.write_line(&crate::access_log::render_slo_transition(
                t2v_obs::unix_ms(),
                &t.slo,
                t.firing,
                t.fast_burn,
                t.slow_burn,
            ));
        }) as t2v_obs::TransitionSink
    });
    engine.start(collector, sink);
    Some(engine)
}

/// Accept failures that mean *we* (or the host) ran out of file
/// descriptors. Retrying immediately cannot succeed — the listener stays
/// readable with the pending connection still queued — so without a pause
/// the loop spins at 100% CPU exactly when the box is saturated.
pub(crate) fn fd_exhausted(err: &std::io::Error) -> bool {
    matches!(err.raw_os_error(), Some(libc_emfile) if libc_emfile == 24 || libc_emfile == 23)
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let metrics = &shared.state.metrics;
        let stream = match stream {
            Ok(stream) => stream,
            Err(err) => {
                metrics.accept_errors.fetch_add(1, Ordering::Relaxed);
                if fd_exhausted(&err) {
                    // EMFILE/ENFILE: back off until existing connections
                    // release fds instead of spinning on a hot listener.
                    std::thread::sleep(Duration::from_millis(20));
                }
                continue;
            }
        };
        metrics.connections_total.fetch_add(1, Ordering::Relaxed);
        let active = metrics.connections_active.fetch_add(1, Ordering::AcqRel) + 1;
        if active as usize > shared.state.config.max_connections {
            // Shed before spawning anything: canned bytes, no allocation.
            let mut s = stream;
            let _ = s.write_all(http::overload_response_bytes());
            metrics.rejected.fetch_add(1, Ordering::Relaxed);
            metrics.connections_active.fetch_sub(1, Ordering::AcqRel);
            continue;
        }
        // Cloned up front: if the thread spawn fails the stream is gone
        // (moved into the dropped closure), and the peer deserves a 503
        // rather than a silent hangup.
        let reply_half = stream.try_clone();
        let shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("t2v-conn".to_string())
            .spawn(move || {
                connection_loop(&shared, stream);
                shared
                    .state
                    .metrics
                    .connections_active
                    .fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            // Thread exhaustion is overload like any other: shed loudly.
            metrics.accept_errors.fetch_add(1, Ordering::Relaxed);
            metrics.rejected.fetch_add(1, Ordering::Relaxed);
            metrics.connections_active.fetch_sub(1, Ordering::AcqRel);
            if let Ok(mut s) = reply_half {
                let _ = s.write_all(http::overload_response_bytes());
            }
        }
    }
}

fn connection_loop(shared: &Shared, stream: TcpStream) {
    let keep_alive = Duration::from_secs(shared.state.config.keep_alive_secs.max(1));
    if stream.set_read_timeout(Some(keep_alive)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let max_body = shared.state.config.max_body_bytes;

    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Block until the *first byte* of the next request without
        // consuming it: the trace clock starts here, so keep-alive idle
        // never counts against `conn.read` and span durations sum to the
        // latency the client actually observed.
        use std::io::BufRead as _;
        match reader.fill_buf() {
            Ok([]) => return, // clean EOF between requests
            Ok(_) => {}
            Err(_) => return, // keep-alive timeout or transport failure
        }
        let t0 = Instant::now();
        let req = match http::read_request(&mut reader, max_body) {
            Ok(req) => req,
            Err(http::ReadError::Closed) | Err(http::ReadError::Io(_)) => return,
            Err(err) => {
                write_read_error(shared, &err, &mut writer);
                return;
            }
        };
        let read_dur = t0.elapsed();
        if !handle_request(shared, &req, t0, read_dur, &mut writer) {
            return;
        }
    }
}

/// Answer an unreadable request (the driver-independent half of read-error
/// handling): a 400 for a malformed head, a 413 for an oversized body,
/// counted under `Route::Other`. `Closed`/`Io` errors never reach here —
/// both drivers hang up silently on those.
pub(crate) fn write_read_error<W: BodySink + ?Sized>(
    shared: &Shared,
    err: &http::ReadError,
    writer: &mut W,
) {
    let (status, message): (u16, &str) = match err {
        http::ReadError::Malformed(why) => (400, why),
        http::ReadError::BodyTooLarge => (413, "request body too large"),
        http::ReadError::Closed | http::ReadError::Io(_) => return,
    };
    let resp = Response::error(status, message);
    shared.state.metrics.record_request(Route::Other, status);
    let _ = resp.write_to_sink(writer, false);
}

/// Serve one parsed request end to end — trace setup, routing, response
/// write, trace publication — and say whether the connection may carry
/// another. Both connection drivers funnel through this one function,
/// which is what keeps their response bytes identical by construction.
pub(crate) fn handle_request<W: BodySink + ?Sized>(
    shared: &Shared,
    req: &Request,
    t0: Instant,
    read_dur: Duration,
    writer: &mut W,
) -> bool {
    // Trace setup (DESIGN.md §12). Every request gets an id (it rides
    // the `x-t2v-trace-id` header regardless); spans are recorded only
    // when something could consume them — the client forced it, the
    // sampler hit, the slow/error override is armed, or the access log
    // needs per-stage timings. With `trace_sample=0
    // trace_force_slow_ms=0` and no access log, the whole machinery is
    // id generation plus no-op guards.
    let config = &shared.state.config;
    let force = req
        .header("x-t2v-trace")
        .is_some_and(|v| v.trim() == "1" || v.trim().eq_ignore_ascii_case("true"));
    let trace_id = t2v_trace::new_trace_id();
    let sampled = config.trace_sample > 0.0 && t2v_trace::sample_hit(trace_id, config.trace_sample);
    let record = force
        || sampled
        || (config.trace_force_slow_ms > 0 && shared.state.recorder.is_some())
        || shared.state.access_log.is_some();
    let trace = Trace::start_at(trace_id, record, t0);
    trace.add_span(Stage::ConnRead, t0, read_dur);
    let scope = trace.scope();

    let keep = !req.wants_close();
    let (route, handled) = respond(shared, req, writer);
    match handled {
        Handled::Reply(resp) => {
            // Chaos seam: a `conn.write_stall` fault delays the response
            // write, modelling a peer (or proxy) draining us slowly.
            t2v_fault::inject_delay(t2v_fault::FaultPoint::ConnWriteStall);
            shared.state.metrics.record_request(route, resp.status);
            // Seal the trace before writing: request-level fields come
            // off the response itself (headers the endpoints already
            // set), and the inline tree — when the client asked for it
            // — must ride in this very body. The `resp.write` span is
            // appended to the sealed trace after the write (it cannot
            // be inside a body that is being written), so the recorder
            // and access log see it; the inline copy does not.
            drop(scope);
            let tenant = request_tenant(&req.path);
            let backend = resp_header(&resp, "x-t2v-backend").unwrap_or("");
            let cache = resp_header(&resp, "x-t2v-cache").unwrap_or("bypass");
            let degraded = resp_header(&resp, "x-t2v-degraded");
            let mut finished = trace.finish(resp.status, tenant, backend, cache, degraded);
            let mut resp = resp.with_header("x-t2v-trace-id", t2v_trace::format_id(trace_id));
            if force {
                if let Some(f) = &finished {
                    if resp.content_type.starts_with("application/json") {
                        resp.body = splice_trace(resp.body.as_slice(), f).into();
                    }
                }
            }
            let wstart = Instant::now();
            let ok = resp.write_to_sink(writer, keep);
            if let Some(f) = &mut finished {
                let wdur = wstart.elapsed();
                f.spans.push(t2v_trace::Span {
                    stage: Stage::Write,
                    start_ns: wstart.duration_since(t0).as_nanos() as u64,
                    dur_ns: wdur.as_nanos() as u64,
                    parent: Some(0),
                    notes: Vec::new(),
                });
                f.total_ns = t0.elapsed().as_nanos() as u64;
                f.spans[0].dur_ns = f.total_ns;
            }
            if let Some(f) = finished {
                publish_trace(shared, req, force, sampled, f);
            }
            ok.is_ok() && keep
        }
        // The endpoint already wrote an EOF-delimited streaming body;
        // the connection closes to mark the end of the stream. A traced
        // stream gets its span tree as one final NDJSON line.
        Handled::Streamed(status) => {
            shared.state.metrics.record_request(route, status);
            drop(scope);
            let tenant = request_tenant(&req.path);
            if let Some(f) = trace.finish(status, tenant, "", "bypass", None) {
                if force {
                    let line = Json::obj([("trace", trace_json(&f))]).compact();
                    let _ = writer
                        .write_all(line.as_bytes())
                        .and_then(|_| writer.write_all(b"\n"))
                        .and_then(|_| writer.flush());
                }
                publish_trace(shared, req, force, sampled, f);
            }
            false
        }
    }
}

/// The tenant a request path addresses (`default` for unprefixed routes).
fn request_tenant(path: &str) -> &str {
    path.strip_prefix("/v1/t/")
        .and_then(|rest| rest.split('/').next())
        .filter(|id| !id.is_empty())
        .unwrap_or(DEFAULT_TENANT_ID)
}

/// First value of a response header (the endpoints communicate per-request
/// observability facts — backend, cache outcome, degradation — through the
/// headers they already set for clients).
fn resp_header<'a>(resp: &'a Response, name: &str) -> Option<&'a str> {
    resp.headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// Splice `,"trace": {...}` into a serialised JSON object body (the
/// `X-T2V-Trace: 1` opt-in). Like `mark_degraded`, this happens *after* the
/// cache, so cached bodies stay byte-identical across plain requests.
fn splice_trace(body: &[u8], f: &FinishedTrace) -> Vec<u8> {
    match body.last() {
        Some(b'}') => {
            let tree = trace_json(f).compact();
            let mut out = Vec::with_capacity(body.len() + tree.len() + 12);
            out.extend_from_slice(&body[..body.len() - 1]);
            out.extend_from_slice(b",\"trace\":");
            out.extend_from_slice(tree.as_bytes());
            out.push(b'}');
            out
        }
        // Not an object: serve untouched rather than corrupt it.
        _ => body.to_vec(),
    }
}

/// Store / log / count one sealed trace according to the knobs: the
/// recorder keeps it when the client forced it, the sampler hit, or the
/// slow/error override fires; the access log always gets its line; a
/// slow request also charges `t2v_slow_requests_total{stage}` with its
/// dominant stage.
fn publish_trace(shared: &Shared, req: &Request, force: bool, sampled: bool, f: FinishedTrace) {
    let config = &shared.state.config;
    let slow = config.trace_force_slow_ms > 0
        && f.total_ns >= config.trace_force_slow_ms.saturating_mul(1_000_000);
    let error = f.status >= 500;
    if slow {
        // A trace that hit the span cap lost spans — its "dominant stage"
        // would be computed from a partial tree, silently mis-attributing
        // the slowness. Charge those to an explicit `truncated` bucket
        // instead (raise `trace_max_spans=` when it grows).
        if f.dropped_spans > 0 {
            shared.state.metrics.record_slow_truncated();
        } else {
            shared.state.metrics.record_slow(f.dominant_stage());
        }
    }
    if let Some(log) = &shared.state.access_log {
        log.write_line(&crate::access_log::render_line(&req.method, &req.path, &f));
    }
    if force || sampled || slow || error {
        if let Some(recorder) = &shared.state.recorder {
            // This trace is retrievable via `/v1/admin/trace/{id}`, so it
            // can serve as the latency exemplar for its histogram bucket —
            // the `/metrics` → flight recorder jump (DESIGN.md §15).
            shared
                .state
                .metrics
                .request_total_latency
                .record_exemplar(f.total_ns, f.id);
            recorder.store(Arc::new(f));
        }
    }
}

/// How a request was answered: a framed response to write, or a streaming
/// body the endpoint already wrote itself.
enum Handled {
    Reply(Response),
    Streamed(u16),
}

/// Route one request. Health, metrics, backend listings, and cache hits are
/// answered on the connection thread; translation misses go through the
/// worker pool. Tenant-scoped traffic lives under `/v1/t/{tenant}/...`
/// (same sub-routes as the default tenant's unprefixed `/v1/*`).
fn respond<W: BodySink + ?Sized>(
    shared: &Shared,
    req: &Request,
    writer: &mut W,
) -> (Route, Handled) {
    let reply = |route: Route, resp: Response| (route, Handled::Reply(resp));
    // Tenant-scoped routes first: /v1/t/{tenant}/{sub}.
    if let Some(rest) = req.path.strip_prefix("/v1/t/") {
        let Some((tenant_id, sub)) = rest.split_once('/') else {
            return reply(Route::Tenant, Response::error(404, "no such route"));
        };
        if !matches!(sub, "translate" | "translate/batch" | "backends") {
            return reply(Route::Tenant, Response::error(404, "no such route"));
        }
        let table = shared.state.tenants();
        let Some(tenant) = table.get(tenant_id) else {
            return reply(
                Route::Tenant,
                Response::error_code(
                    404,
                    "unknown_tenant",
                    &format!("unknown tenant '{tenant_id}'"),
                ),
            );
        };
        return match (req.method.as_str(), sub) {
            ("POST", "translate") => {
                let (_, handled) = translate_endpoint(shared, req, writer, tenant);
                (Route::Tenant, handled)
            }
            ("POST", "translate/batch") => {
                reply(Route::Tenant, batch_endpoint(shared, req, tenant))
            }
            ("GET", "backends") => reply(
                Route::Tenant,
                backends_endpoint(&shared.state, tenant, true),
            ),
            _ => reply(Route::Tenant, Response::error(405, "method not allowed")),
        };
    }
    // Trace admin routes: a path suffix (the id), so prefix-matched.
    if let Some(rest) = req.path.strip_prefix("/v1/admin/trace/") {
        if req.method != "GET" {
            return reply(Route::Admin, Response::error(405, "method not allowed"));
        }
        let resp = if rest == "recent" {
            admin_trace_recent(&shared.state, req)
        } else {
            admin_trace_get(&shared.state, rest)
        };
        return reply(Route::Admin, resp);
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => reply(Route::Healthz, healthz(&shared.state)),
        ("GET", "/v1/admin/status") => reply(Route::Admin, admin_status(shared)),
        ("GET", "/v1/admin/tsdb") => reply(Route::Admin, admin_tsdb(shared, req)),
        ("GET", "/v1/admin/alerts") => reply(Route::Admin, admin_alerts(shared)),
        ("GET", "/v1/admin/profile") => reply(Route::Admin, admin_profile(shared, req)),
        ("GET", "/metrics") => reply(
            Route::Metrics,
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                headers: Vec::new(),
                body: render_metrics(shared).into(),
            },
        ),
        ("GET", "/v1/backends") => reply(
            Route::Backends,
            backends_endpoint(&shared.state, &shared.state.default_tenant, false),
        ),
        ("POST", "/v1/admin/snapshot") => {
            reply(Route::Admin, admin_snapshot_endpoint(&shared.state, req))
        }
        ("GET", "/v1/admin/tenants") => reply(Route::Admin, admin_tenants_list(&shared.state)),
        ("POST", "/v1/admin/tenants/attach") => {
            reply(Route::Admin, admin_tenants_attach(&shared.state, req))
        }
        ("DELETE", "/v1/admin/tenants/detach") => {
            reply(Route::Admin, admin_tenants_detach(&shared.state, req))
        }
        ("POST", "/v1/translate") => {
            translate_endpoint(shared, req, writer, &shared.state.default_tenant)
        }
        ("POST", "/v1/translate/batch") => reply(
            Route::TranslateBatch,
            batch_endpoint(shared, req, &shared.state.default_tenant),
        ),
        ("POST", "/translate") => reply(Route::Legacy, legacy_endpoint(&shared.state)),
        (
            _,
            "/healthz"
            | "/metrics"
            | "/translate"
            | "/v1/translate"
            | "/v1/translate/batch"
            | "/v1/backends"
            | "/v1/admin/snapshot"
            | "/v1/admin/status"
            | "/v1/admin/tsdb"
            | "/v1/admin/alerts"
            | "/v1/admin/profile"
            | "/v1/admin/tenants"
            | "/v1/admin/tenants/attach"
            | "/v1/admin/tenants/detach",
        ) => reply(Route::Other, Response::error(405, "method not allowed")),
        _ => reply(Route::Other, Response::error(404, "no such route")),
    }
}

/// Serialise one sealed trace as the wire span tree (admin endpoints, the
/// inline `X-T2V-Trace: 1` splice, and the final NDJSON trace line).
fn trace_json(f: &FinishedTrace) -> Json {
    let spans: Vec<Json> = f
        .spans
        .iter()
        .map(|s| {
            let mut span = Json::obj([
                ("stage", Json::str(s.stage.name())),
                ("start_ms", Json::Num(s.start_ns as f64 / 1e6)),
                ("dur_ms", Json::Num(s.dur_ns as f64 / 1e6)),
                (
                    "parent",
                    match s.parent {
                        Some(p) => Json::Num(p as f64),
                        None => Json::Null,
                    },
                ),
            ]);
            if !s.notes.is_empty() {
                span.set(
                    "notes",
                    Json::Arr(s.notes.iter().map(|n| Json::str(n.as_str())).collect()),
                );
            }
            span
        })
        .collect();
    let mut body = Json::obj([
        ("id", Json::str(t2v_trace::format_id(f.id))),
        ("wall_ms", Json::Num(f.wall_ms as f64)),
        ("tenant", Json::str(&*f.tenant)),
        ("backend", Json::str(&*f.backend)),
        ("cache", Json::str(&*f.cache)),
        (
            "degraded",
            match &f.degraded {
                Some(d) => Json::str(&**d),
                None => Json::Null,
            },
        ),
        ("status", Json::Num(f.status as f64)),
        ("total_ms", Json::Num(f.total_ns as f64 / 1e6)),
        ("dominant_stage", Json::str(f.dominant_stage().name())),
        ("spans", Json::Arr(spans)),
    ]);
    if f.dropped_spans > 0 {
        body.set("dropped_spans", Json::Num(f.dropped_spans as f64));
    }
    body
}

/// One row of `GET /v1/admin/trace/recent`: the request-level facts without
/// the span tree (fetch the id for the full tree).
fn trace_summary_json(f: &FinishedTrace) -> Json {
    Json::obj([
        ("id", Json::str(t2v_trace::format_id(f.id))),
        ("wall_ms", Json::Num(f.wall_ms as f64)),
        ("tenant", Json::str(&*f.tenant)),
        ("backend", Json::str(&*f.backend)),
        ("cache", Json::str(&*f.cache)),
        ("status", Json::Num(f.status as f64)),
        ("total_ms", Json::Num(f.total_ns as f64 / 1e6)),
        ("dominant_stage", Json::str(f.dominant_stage().name())),
    ])
}

/// `GET /v1/admin/trace/{id}` — one trace from the flight recorder, full
/// span tree.
fn admin_trace_get(state: &ServerState, id_str: &str) -> Response {
    let Some(recorder) = &state.recorder else {
        return Response::error_code(
            404,
            "recorder_disabled",
            "the flight recorder is disabled (trace_buffer=0)",
        );
    };
    let Some(id) = t2v_trace::parse_id(id_str) else {
        return Response::error(400, "malformed trace id (expected 32 hex chars)");
    };
    match recorder.get(id) {
        Some(t) => Response::json(200, trace_json(&t).compact()),
        None => Response::error_code(
            404,
            "unknown_trace",
            "trace not found (never recorded, or already evicted from the flight recorder)",
        ),
    }
}

/// One `key=value` out of a query string (no percent-decoding — trace
/// filters are plain identifiers and integers).
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// `GET /v1/admin/trace/recent?tenant=&min_ms=&limit=` — newest recorded
/// traces, summarised.
fn admin_trace_recent(state: &ServerState, req: &Request) -> Response {
    let Some(recorder) = &state.recorder else {
        return Response::error_code(
            404,
            "recorder_disabled",
            "the flight recorder is disabled (trace_buffer=0)",
        );
    };
    let tenant = query_param(&req.query, "tenant").filter(|t| !t.is_empty());
    let min_ms = match query_param(&req.query, "min_ms") {
        None => 0u64,
        Some(v) => match v.parse() {
            Ok(ms) => ms,
            Err(_) => return Response::error(400, "min_ms must be a non-negative integer"),
        },
    };
    let limit = match query_param(&req.query, "limit") {
        None => 50usize,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n.min(500),
            _ => return Response::error(400, "limit must be a positive integer"),
        },
    };
    let traces = recorder.recent(tenant, min_ms.saturating_mul(1_000_000), limit);
    let body = Json::obj([
        ("count", Json::Num(traces.len() as f64)),
        (
            "traces",
            Json::Arr(traces.iter().map(|t| trace_summary_json(t)).collect()),
        ),
    ]);
    Response::json(200, body.compact())
}

/// `GET /v1/admin/status` — one JSON snapshot of what an operator checks
/// first: pool pressure, per-tenant breaker states, cache effectiveness,
/// attached tenants, recorder fill, and build/format versions.
fn admin_status(shared: &Shared) -> Response {
    let state = &shared.state;
    let table = state.tenants();
    let cache = state.cache.stats();
    let probes = cache.hits + cache.misses;
    let hit_rate = if probes == 0 {
        0.0
    } else {
        cache.hits as f64 / probes as f64
    };
    let tenants: Vec<Json> = table
        .iter()
        .map(|t| {
            let breakers: Vec<Json> = t
                .registry
                .ids()
                .zip(&t.breakers)
                .map(|(id, b)| {
                    Json::obj([
                        ("backend", Json::str(id)),
                        ("state", Json::str(breaker_state_label(b.state()))),
                        ("opens", Json::Num(b.opens() as f64)),
                        (
                            "mean_latency_ms",
                            Json::Num(b.mean_latency_ns() as f64 / 1e6),
                        ),
                    ])
                })
                .collect();
            Json::obj([
                ("id", Json::str(t.id.as_str())),
                ("corpus", Json::str(t.corpus_label.as_str())),
                ("epoch", Json::Num(t.epoch as f64)),
                ("index", Json::str(t.index_kind().label())),
                ("rows", Json::Num(t.gred.library().len() as f64)),
                (
                    "nprobe",
                    match t.effective_nprobe() {
                        Some(n) => Json::Num(n as f64),
                        None => Json::Null,
                    },
                ),
                ("breakers", Json::Arr(breakers)),
            ])
        })
        .collect();
    let body = Json::obj([
        (
            "build",
            Json::obj([
                ("version", Json::str(env!("CARGO_PKG_VERSION"))),
                (
                    "snapshot_format",
                    Json::Num(t2v_store::FORMAT_VERSION_ANN as f64),
                ),
            ]),
        ),
        (
            "pool",
            Json::obj([
                (
                    "workers",
                    Json::Num(state.config.effective_workers() as f64),
                ),
                ("shards", Json::Num(state.config.effective_shards() as f64)),
                ("queue_depth", Json::Num(shared.pool.queue_depth() as f64)),
                (
                    "queue_capacity",
                    Json::Num(state.config.queue_capacity as f64),
                ),
            ]),
        ),
        (
            "connections",
            Json::obj([
                ("net", Json::str(state.config.net.label())),
                (
                    "open",
                    Json::Num(state.metrics.connections_active.load(Ordering::Relaxed) as f64),
                ),
                ("max", Json::Num(state.config.max_connections as f64)),
                (
                    "reaped",
                    Json::Num(state.metrics.conn_reaped.load(Ordering::Relaxed) as f64),
                ),
                (
                    "accept_errors",
                    Json::Num(state.metrics.accept_errors.load(Ordering::Relaxed) as f64),
                ),
                (
                    "dispatch_queue_depth",
                    Json::Num(shared.dispatch_depth.load(Ordering::Relaxed) as f64),
                ),
            ]),
        ),
        (
            "event",
            Json::obj([
                (
                    "reading",
                    Json::Num(shared.event_stats.reading.load(Ordering::Relaxed) as f64),
                ),
                (
                    "dispatched",
                    Json::Num(shared.event_stats.dispatched.load(Ordering::Relaxed) as f64),
                ),
                (
                    "writing",
                    Json::Num(shared.event_stats.writing.load(Ordering::Relaxed) as f64),
                ),
                (
                    "keep_alive",
                    Json::Num(shared.event_stats.keep_alive.load(Ordering::Relaxed) as f64),
                ),
                (
                    "pool_buffers",
                    Json::Num(shared.event_stats.pool_buffers.load(Ordering::Relaxed) as f64),
                ),
                (
                    "draining",
                    Json::Bool(shared.event_stats.draining.load(Ordering::Relaxed) != 0),
                ),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("entries", Json::Num(cache.len as f64)),
                ("hits", Json::Num(cache.hits as f64)),
                ("misses", Json::Num(cache.misses as f64)),
                ("hit_rate", Json::Num(hit_rate)),
                ("expired", Json::Num(cache.expired as f64)),
                ("evicted", Json::Num(cache.evicted as f64)),
                ("shards", Json::Num(state.cache.shard_count() as f64)),
            ]),
        ),
        (
            "trace",
            match &state.recorder {
                Some(r) => Json::obj([
                    ("recorded", Json::Num(r.len() as f64)),
                    ("capacity", Json::Num(r.capacity() as f64)),
                    ("sample", Json::Num(state.config.trace_sample)),
                    (
                        "force_slow_ms",
                        Json::Num(state.config.trace_force_slow_ms as f64),
                    ),
                ]),
                None => Json::Null,
            },
        ),
        ("tenants", Json::Arr(tenants)),
    ]);
    Response::json(200, body.compact())
}

/// `/metrics` — the Prometheus registry, plus the SLO gauges the burn-rate
/// engine maintains (when `slo=` objectives are configured and the sampler
/// is running).
fn render_metrics(shared: &Shared) -> String {
    let mut out = shared.state.metrics.render_prometheus();
    let Some(slo) = shared.obs.as_ref().and_then(|o| o.slo()) else {
        return out;
    };
    let statuses = slo.last();
    if statuses.is_empty() {
        return out;
    }
    out.push_str("# HELP t2v_slo_burn_rate Error-budget burn rate per SLO and window (1 = spending exactly the budget).\n");
    out.push_str("# TYPE t2v_slo_burn_rate gauge\n");
    for s in &statuses {
        let name = crate::metrics::escape_label(&s.name);
        out.push_str(&format!(
            "t2v_slo_burn_rate{{slo=\"{name}\",window=\"fast\"}} {}\n",
            s.fast_burn
        ));
        out.push_str(&format!(
            "t2v_slo_burn_rate{{slo=\"{name}\",window=\"slow\"}} {}\n",
            s.slow_burn
        ));
    }
    out.push_str("# HELP t2v_slo_error_budget_remaining Fraction of the error budget left over the slow window (negative = overspent).\n");
    out.push_str("# TYPE t2v_slo_error_budget_remaining gauge\n");
    for s in &statuses {
        let name = crate::metrics::escape_label(&s.name);
        out.push_str(&format!(
            "t2v_slo_error_budget_remaining{{slo=\"{name}\"}} {}\n",
            s.budget_remaining
        ));
    }
    out
}

/// The ops plane, if the sampler half of it is running.
fn obs_sampling(shared: &Shared) -> Option<&Arc<t2v_obs::ObsEngine>> {
    shared.obs.as_ref().filter(|o| o.sample_ms() > 0)
}

/// `GET /v1/admin/tsdb?series=&window=&step=` — the in-process ring-buffer
/// TSDB. Without `series=`, lists what is retained; with it, returns the
/// windowed points plus the delta and per-second rate over the window.
fn admin_tsdb(shared: &Shared, req: &Request) -> Response {
    let Some(obs) = obs_sampling(shared) else {
        return Response::error_code(
            404,
            "obs_disabled",
            "the metrics sampler is disabled (obs_sample_ms=0)",
        );
    };
    let tsdb = obs.tsdb();
    let Some(series) = query_param(&req.query, "series").filter(|s| !s.is_empty()) else {
        let names = tsdb.series_names();
        let body = Json::obj([
            ("sample_ms", Json::Num(obs.sample_ms() as f64)),
            ("count", Json::Num(names.len() as f64)),
            (
                "series",
                Json::Arr(names.iter().map(|n| Json::str(n.as_str())).collect()),
            ),
        ]);
        return Response::json(200, body.compact());
    };
    let window_s = match query_param(&req.query, "window") {
        None => 300u64,
        Some(v) => match v.parse() {
            Ok(s) if s >= 1 => s,
            _ => return Response::error(400, "window must be a positive integer (seconds)"),
        },
    };
    let step_s = match query_param(&req.query, "step") {
        None => 0u64, // 0 = native sample cadence
        Some(v) => match v.parse() {
            Ok(s) => s,
            Err(_) => return Response::error(400, "step must be a non-negative integer (seconds)"),
        },
    };
    let now_ms = t2v_obs::unix_ms();
    let window_ms = window_s.saturating_mul(1000);
    let step_ms = step_s.saturating_mul(1000).max(obs.sample_ms());
    let points = tsdb.points(series, window_ms, step_ms, now_ms);
    if points.is_empty() {
        return Response::error_code(
            404,
            "unknown_series",
            "series not found (never collected, or outside retention)",
        );
    }
    let delta = tsdb.delta(series, window_ms, now_ms);
    let rate = tsdb.rate(series, window_ms, now_ms);
    let body = Json::obj([
        ("series", Json::str(series)),
        ("window_s", Json::Num(window_s as f64)),
        ("step_ms", Json::Num(step_ms as f64)),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|&(t, v)| Json::Arr(vec![Json::Num(t as f64), Json::Num(v as f64)]))
                    .collect(),
            ),
        ),
        (
            "delta",
            match delta {
                Some(d) => Json::Num(d as f64),
                None => Json::Null,
            },
        ),
        (
            "rate",
            match rate {
                Some(r) => Json::Num(r),
                None => Json::Null,
            },
        ),
    ]);
    Response::json(200, body.compact())
}

/// `GET /v1/admin/alerts` — every configured SLO with its multi-window
/// burn state: the first page an operator checks (DESIGN.md §15).
fn admin_alerts(shared: &Shared) -> Response {
    let Some(slo) = obs_sampling(shared).and_then(|o| o.slo()) else {
        return Response::error_code(
            404,
            "slo_disabled",
            "no SLOs configured (set slo= and obs_sample_ms>0)",
        );
    };
    let statuses = slo.last();
    let firing = statuses.iter().filter(|s| s.firing).count();
    let w = slo.windows();
    let body = Json::obj([
        ("firing", Json::Num(firing as f64)),
        (
            "windows",
            Json::obj([
                ("fast_s", Json::Num(w.fast_ms as f64 / 1000.0)),
                ("slow_s", Json::Num(w.slow_ms as f64 / 1000.0)),
                ("threshold", Json::Num(w.threshold)),
            ]),
        ),
        (
            "slos",
            Json::Arr(
                statuses
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("name", Json::str(&s.name)),
                            ("target", Json::Num(s.target)),
                            ("firing", Json::Bool(s.firing)),
                            ("fast_burn", Json::Num(s.fast_burn)),
                            ("slow_burn", Json::Num(s.slow_burn)),
                            ("budget_remaining", Json::Num(s.budget_remaining)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Response::json(200, body.compact())
}

/// `GET /v1/admin/profile?seconds=N` — the last N seconds of stage
/// occupancy as flamegraph-compatible folded stacks (`stack count` lines).
fn admin_profile(shared: &Shared, req: &Request) -> Response {
    let Some(obs) = shared.obs.as_ref().filter(|o| o.profile_hz() > 0) else {
        return Response::error_code(
            404,
            "profiler_disabled",
            "the stage profiler is disabled (obs_profile_hz=0)",
        );
    };
    let seconds = match query_param(&req.query, "seconds") {
        None => 60u64,
        Some(v) => match v.parse() {
            Ok(s) if s >= 1 => s,
            _ => return Response::error(400, "seconds must be a positive integer"),
        },
    };
    Response {
        status: 200,
        content_type: "text/plain; charset=utf-8",
        headers: Vec::new(),
        body: obs.profile().render(seconds, t2v_obs::unix_ms()).into(),
    }
}

fn breaker_state_label(state: crate::breaker::BreakerState) -> &'static str {
    match state {
        crate::breaker::BreakerState::Closed => "closed",
        crate::breaker::BreakerState::Open => "open",
        crate::breaker::BreakerState::HalfOpen => "half_open",
    }
}

fn healthz(state: &ServerState) -> Response {
    let body = Json::obj([
        ("status", Json::str("ok")),
        ("databases", Json::Num(state.dbs.len() as f64)),
        ("library", Json::Num(state.gred.library().len() as f64)),
        ("backends", Json::Num(state.registry.len() as f64)),
        ("tenants", Json::Num(state.tenants().len() as f64)),
    ]);
    Response::json(200, body.compact())
}

/// `GET /v1/backends` (and `GET /v1/t/{tenant}/backends`): capability
/// metadata for every backend the tenant registers. The tenant-scoped
/// variant additionally names its tenant; the default route's body is
/// byte-identical to the pre-tenant surface.
fn backends_endpoint(_state: &ServerState, tenant: &TenantRuntime, named: bool) -> Response {
    let backends: Vec<Json> = tenant
        .registry
        .infos()
        .into_iter()
        .map(|(id, info)| {
            Json::obj([
                ("id", Json::str(id)),
                ("name", Json::str(info.name)),
                ("kind", Json::str(info.kind.label())),
                (
                    "stages",
                    Json::Arr(info.stages.iter().map(|s| Json::str(*s)).collect()),
                ),
                ("deterministic", Json::Bool(info.deterministic)),
                ("description", Json::str(info.description)),
            ])
        })
        .collect();
    let mut body = Json::obj([
        (
            "default",
            Json::str(tenant.registry.default_id().unwrap_or("")),
        ),
        ("backends", Json::Arr(backends)),
        (
            "library",
            Json::obj([
                (
                    "fingerprint",
                    Json::str(format!("{:#018x}", tenant.library_fingerprint)),
                ),
                ("source", Json::str(tenant.library_provenance.label())),
                ("entries", Json::Num(tenant.gred.library().len() as f64)),
            ]),
        ),
    ]);
    if named {
        body.set("tenant", Json::str(tenant.id.as_str()));
        body.set("corpus", Json::str(tenant.corpus_label.as_str()));
    }
    Response::json(200, body.compact())
}

/// One tenant's row in `GET /v1/admin/tenants` / the attach reply.
fn tenant_json(tenant: &TenantRuntime) -> Json {
    Json::obj([
        ("id", Json::str(tenant.id.as_str())),
        ("corpus", Json::str(tenant.corpus_label.as_str())),
        (
            "fingerprint",
            Json::str(format!("{:#018x}", tenant.library_fingerprint)),
        ),
        ("source", Json::str(tenant.library_provenance.label())),
        ("entries", Json::Num(tenant.gred.library().len() as f64)),
        (
            "backends",
            Json::Arr(tenant.registry.ids().map(Json::str).collect()),
        ),
        ("databases", Json::Num(tenant.dbs.len() as f64)),
        ("epoch", Json::Num(tenant.epoch as f64)),
        ("default", Json::Bool(tenant.is_default)),
    ])
}

fn tenant_admin_error(e: &TenantAdminError) -> Response {
    Response::error_code(e.status(), e.code(), &e.to_string())
}

/// `GET /v1/admin/tenants` — the live tenant table, in attach order.
fn admin_tenants_list(state: &ServerState) -> Response {
    let table = state.tenants();
    let body = Json::obj([(
        "tenants",
        Json::Arr(table.iter().map(|t| tenant_json(t)).collect()),
    )]);
    Response::json(200, body.compact())
}

/// `POST /v1/admin/tenants/attach` — load a tenant into the live server.
/// Body: `{"id", "corpus", "snapshot"?, "backends"?}`. Builds the tenant's
/// corpus + library + registry on this connection thread (attach is a rare
/// admin action; blocking the admin's own connection is the honest cost),
/// then RCU-swaps the table — translations in flight never stall.
fn admin_tenants_attach(state: &ServerState, req: &Request) -> Response {
    let Ok(body_text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let parsed = match Json::parse(body_text) {
        Ok(j) => j,
        Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
    };
    let Some(id) = parsed.get("id").and_then(Json::as_str) else {
        return Response::error(400, "missing string field 'id'");
    };
    let Some(corpus_spec) = parsed.get("corpus").and_then(Json::as_str) else {
        return Response::error(400, "missing string field 'corpus' (e.g. \"tiny:8\")");
    };
    let corpus = match t2v_tenant::parse_corpus_spec(corpus_spec) {
        Ok(c) => c,
        Err(e) => return Response::error(400, &e.message),
    };
    let snapshot = match parsed.get("snapshot") {
        None | Some(Json::Null) => None,
        Some(Json::Str(p)) => Some(PathBuf::from(p.as_str())),
        Some(_) => return Response::error(400, "field 'snapshot' must be a string path"),
    };
    let backends = match parsed.get("backends") {
        None | Some(Json::Null) => None,
        Some(Json::Str(b)) => Some(b.clone()),
        Some(_) => return Response::error(400, "field 'backends' must be a string list"),
    };
    let attach = AttachRequest {
        id: id.to_string(),
        corpus,
        snapshot,
        backends,
    };
    match state.attach_tenant(&attach) {
        Ok(runtime) => Response::json(
            200,
            Json::obj([("attached", tenant_json(&runtime))]).compact(),
        ),
        Err(e) => tenant_admin_error(&e),
    }
}

/// `DELETE /v1/admin/tenants/detach` — body `{"id"}`. The tenant vanishes
/// from the table atomically; in-flight translations on it complete.
fn admin_tenants_detach(state: &ServerState, req: &Request) -> Response {
    let Ok(body_text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let parsed = match Json::parse(body_text) {
        Ok(j) => j,
        Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
    };
    let Some(id) = parsed.get("id").and_then(Json::as_str) else {
        return Response::error(400, "missing string field 'id'");
    };
    match state.detach_tenant(id) {
        Ok(()) => Response::json(200, Json::obj([("detached", Json::str(id))]).compact()),
        Err(e) => tenant_admin_error(&e),
    }
}

/// `POST /v1/admin/snapshot` — persist the live embedding library to disk.
/// Body: `{"path": "..."}` (optional; defaults to the `snapshot_save`
/// knob). The written artifact is exactly what `library_snapshot=` loads on
/// the next start.
fn admin_snapshot_endpoint(state: &ServerState, req: &Request) -> Response {
    let mut path = state.config.snapshot_save.clone();
    if !req.body.is_empty() {
        let Ok(body_text) = std::str::from_utf8(&req.body) else {
            return Response::error(400, "body is not UTF-8");
        };
        let parsed = match Json::parse(body_text) {
            Ok(j) => j,
            Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
        };
        match parsed.get("path") {
            None => {}
            Some(Json::Str(p)) => path = p.clone(),
            Some(_) => return Response::error(400, "field 'path' must be a string"),
        }
    }
    if path.is_empty() {
        return Response::error_code(
            400,
            "no_path",
            "no snapshot path: pass {\"path\": ...} or set snapshot_save=",
        );
    }
    match t2v_store::save(&path, state.gred.library(), state.gred.embedder()) {
        Ok(manifest) => {
            state
                .metrics
                .snapshots_written
                .fetch_add(1, Ordering::Relaxed);
            let body = Json::obj([
                ("path", Json::str(path)),
                ("bytes", Json::Num(manifest.file_len as f64)),
                ("entries", Json::Num(manifest.entries as f64)),
                (
                    "fingerprint",
                    Json::str(format!("{:#018x}", manifest.corpus_fingerprint)),
                ),
            ]);
            Response::json(200, body.compact())
        }
        Err(e) => Response::error_code(500, e.code(), &format!("snapshot not written: {e}")),
    }
}

/// The deprecated unversioned route: never translates any more.
fn legacy_endpoint(state: &ServerState) -> Response {
    let message =
        "POST /translate is deprecated; use POST /v1/translate (with optional \"backend\")";
    match state.config.legacy_translate {
        LegacyRoute::Redirect => Response::error_code(308, "deprecated", message)
            .with_header("Location", "/v1/translate"),
        LegacyRoute::Gone => Response::error_code(410, "deprecated", message)
            .with_header("Location", "/v1/translate"),
    }
}

/// One parsed-and-resolved translate item (shared by the single and batch
/// endpoints). Holds its tenant runtime: a detach mid-request cannot pull
/// the registry, databases, or metrics out from under the translation.
struct Item {
    tenant: Arc<TenantRuntime>,
    backend_idx: usize,
    backend_id: String,
    backend: Arc<dyn Translator>,
    entry: Arc<DbEntry>,
    nlq_normalized: String,
    want_vegalite: bool,
}

/// Parse one translate object (`{"nlq", "db", "backend"?, "vegalite"?}`)
/// against the tenant's registry and database set.
fn resolve_item(tenant: &Arc<TenantRuntime>, parsed: &Json) -> Result<Item, Response> {
    let Some(nlq) = parsed.get("nlq").and_then(Json::as_str) else {
        return Err(Response::error(400, "missing string field 'nlq'"));
    };
    let Some(db_id) = parsed.get("db").and_then(Json::as_str) else {
        return Err(Response::error(400, "missing string field 'db'"));
    };
    let backend_req = match parsed.get("backend") {
        None => None,
        Some(v) => match v.as_str() {
            Some(s) => Some(s),
            None => return Err(Response::error(400, "field 'backend' must be a string")),
        },
    };
    let want_vegalite = match parsed.get("vegalite") {
        None => false,
        Some(v) => match v.as_bool() {
            Some(b) => b,
            None => return Err(Response::error(400, "field 'vegalite' must be a boolean")),
        },
    };
    let (backend_idx, backend_id, backend) = match tenant.registry.resolve(backend_req) {
        Ok((i, id, b)) => (i, id.to_string(), Arc::clone(b)),
        Err(unknown) => {
            return Err(Response::error_code(
                404,
                "unknown_backend",
                &format!(
                    "unknown backend '{unknown}' (registered: {})",
                    tenant.registry.ids().collect::<Vec<_>>().join(", ")
                ),
            ))
        }
    };
    let nlq_normalized = normalize_nlq(nlq);
    if nlq_normalized.is_empty() {
        return Err(Response::error_code(400, "empty_query", "'nlq' is empty"));
    }
    let Some(entry) = tenant.dbs.get(db_id) else {
        return Err(Response::error_code(
            404,
            "unknown_database",
            &format!("unknown database '{db_id}'"),
        ));
    };
    Ok(Item {
        tenant: Arc::clone(tenant),
        backend_idx,
        backend_id,
        backend,
        entry: Arc::clone(entry),
        nlq_normalized,
        want_vegalite,
    })
}

impl Item {
    fn cache_key(&self) -> CacheKey {
        (
            self.tenant.epoch,
            self.backend_idx as u16,
            self.nlq_normalized.clone().into_boxed_str(),
            self.entry.fingerprint,
            self.want_vegalite,
        )
    }

    /// Record a cache hit/miss into the tenant family and — default tenant
    /// only, where the index maps onto the startup-registered set — the
    /// unlabelled per-backend family.
    fn record_cache(&self, state: &ServerState, hit: bool) {
        let (global, tenant) = if hit {
            (&state.metrics.cache_hits, &self.tenant.metrics.cache_hits)
        } else {
            (
                &state.metrics.cache_misses,
                &self.tenant.metrics.cache_misses,
            )
        };
        global.fetch_add(1, Ordering::Relaxed);
        tenant.fetch_add(1, Ordering::Relaxed);
        if self.tenant.is_default {
            let bm = state.metrics.backend(self.backend_idx);
            if hit {
                bm.cache_hits.fetch_add(1, Ordering::Relaxed);
            } else {
                bm.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Rides inside every pool job: if the job never answers — a worker panic
/// (injected or real) unwinds the closure — dropping the guard fulfils the
/// caller's slot with a structured 500 and records the failure on the
/// backend's breaker, so the connection thread fails fast instead of
/// waiting out its deadline on a reply that will never come.
struct ReplyGuard {
    slot: OneShot<Reply>,
    breaker: Arc<CircuitBreaker>,
    metrics: Arc<Metrics>,
    answered: bool,
}

impl ReplyGuard {
    fn answer(mut self, reply: Reply) {
        self.answered = true;
        self.slot.send(reply);
    }
}

impl Drop for ReplyGuard {
    fn drop(&mut self) {
        if self.answered {
            return;
        }
        if self.breaker.record(false, 0) {
            self.metrics.breaker_opens.fetch_add(1, Ordering::Relaxed);
        }
        self.slot
            .send(error_reply(500, "translation worker failed"));
    }
}

/// A structured-error [`Reply`] (the body reuses the HTTP error envelope).
fn error_reply(status: u16, message: &str) -> Reply {
    Reply {
        status,
        body: Arc::new(Response::error(status, message).body.as_slice().to_vec()),
    }
}

/// The effective deadline for one request: the `deadline_ms` knob, lowered
/// — never raised — by an `X-T2V-Deadline-Ms` header. `None` when both are
/// unset (deadlines disabled).
fn request_deadline(config: &ServeConfig, req: &Request, started: Instant) -> Option<Instant> {
    let mut ms = config.deadline_ms;
    if let Some(h) = req.header("x-t2v-deadline-ms") {
        if let Ok(v) = h.trim().parse::<u64>() {
            if v > 0 {
                ms = if ms == 0 { v } else { ms.min(v) };
            }
        }
    }
    (ms > 0).then(|| started + Duration::from_millis(ms))
}

/// Splice `"degraded": "<reason>"` into a serialised response object, so a
/// stale or fallback body is always self-describing. The reason is an
/// internal constant (never client data), so no escaping is needed.
fn mark_degraded(body: &[u8], reason: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + reason.len() + 16);
    match body.last() {
        Some(b'}') => {
            out.extend_from_slice(&body[..body.len() - 1]);
            out.extend_from_slice(b",\"degraded\":\"");
            out.extend_from_slice(reason.as_bytes());
            out.extend_from_slice(b"\"}");
        }
        // Not an object (can't happen for our own bodies): serve untouched
        // rather than corrupt it.
        _ => out.extend_from_slice(body),
    }
    out
}

/// First rung of the degradation ladder: the item's cache entry *ignoring
/// TTL*, marked `degraded: stale_cache`. `None` when disabled
/// (`degrade_stale=false`) or nothing was ever cached for the key.
fn stale_degraded_body(shared: &Shared, key: &CacheKey) -> Option<Vec<u8>> {
    if !shared.state.config.degrade_stale {
        return None;
    }
    let stale = shared.state.cache.get_stale(key)?;
    shared
        .state
        .metrics
        .degraded
        .fetch_add(1, Ordering::Relaxed);
    t2v_trace::note("degrade:stale_cache");
    Some(mark_degraded(&stale, "stale_cache"))
}

/// Submit one item's cold translation to the pool. The returned slot
/// resolves to a [`Reply`]; the worker also caches successful bodies and
/// records per-backend, per-tenant, and breaker outcomes. A `deadline`
/// already spent when a worker picks the job up short-circuits to 504
/// without running the backend.
fn submit_translation(
    shared: &Shared,
    item: &Item,
    key: CacheKey,
    stage_tx: Option<mpsc::Sender<String>>,
    deadline: Option<Instant>,
) -> Result<OneShot<Reply>, SubmitError> {
    let slot: OneShot<Reply> = OneShot::new();
    let job_slot = slot.clone();
    let state = Arc::clone(&shared.state);
    let tenant = Arc::clone(&item.tenant);
    let backend = Arc::clone(&item.backend);
    let breaker = Arc::clone(&item.tenant.breakers[item.backend_idx]);
    let backend_idx = item.backend_idx;
    let backend_id = item.backend_id.clone();
    let entry = Arc::clone(&item.entry);
    let want_vegalite = item.want_vegalite;
    let enqueued = Instant::now();
    // The connection thread's trace rides into the job: the worker installs
    // it as *its* current trace, so the backend span (and the embed/retrieve
    // spans the leaf crates open) land in the same tree.
    let trace = t2v_trace::current();
    let job = move || {
        let _trace_scope = trace.as_ref().map(Trace::scope);
        let guard = ReplyGuard {
            slot: job_slot,
            breaker: Arc::clone(&breaker),
            metrics: Arc::clone(&state.metrics),
            answered: false,
        };
        let queue_wait = enqueued.elapsed();
        if let Some(t) = &trace {
            t.add_span(Stage::QueueWait, enqueued, queue_wait);
        }
        state
            .metrics
            .queue_wait
            .observe_ns(queue_wait.as_nanos() as u64);
        if deadline.is_some_and(|d| Instant::now() >= d) {
            // The budget died in the queue: don't burn a worker on a body
            // nobody is waiting for.
            state
                .metrics
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            guard.answer(error_reply(
                504,
                "deadline exceeded before translation started",
            ));
            return;
        }
        if state.config.debug_translate_sleep_ms > 0 {
            std::thread::sleep(Duration::from_millis(state.config.debug_translate_sleep_ms));
        }
        let t0 = Instant::now();
        let result = {
            // The backend span covers fault firing + the translate call, so
            // the embed/retrieve child spans (and any fault note) nest here.
            let _span = t2v_trace::span(Stage::Backend);
            // Chaos seams: an armed `backend.panic` unwinds here (the guard
            // and the pool's catch_unwind turn it into a structured 500 +
            // metrics); an armed `backend.error` swaps the translation for
            // an internal error without touching the backend.
            if t2v_fault::fire_for(t2v_fault::FaultPoint::BackendPanic, &backend_id).is_some() {
                panic!("injected fault: backend '{backend_id}' panic");
            }
            let injected =
                t2v_fault::fire_for(t2v_fault::FaultPoint::BackendError, &backend_id).is_some();
            let req = TranslateRequest::new(&key.2, &entry.db);
            if injected {
                Err(TranslateError::Internal {
                    message: format!("injected fault: backend '{backend_id}' error"),
                })
            } else {
                match &stage_tx {
                    // Streaming: forward each stage line as the pipeline
                    // produces it (timings included — stream lines are never
                    // cached).
                    Some(tx) => backend.translate_streamed(&req, &mut |s: &StageRecord| {
                        let line = Json::obj([(
                            "stage",
                            Json::obj([
                                ("name", Json::str(s.name)),
                                ("dvq", opt_str(&s.dvq)),
                                ("micros", Json::Num(s.micros as f64)),
                            ]),
                        )])
                        .compact();
                        let _ = tx.send(line);
                    }),
                    None => backend.translate(&req),
                }
            }
        };
        let elapsed = t0.elapsed().as_nanos() as u64;
        state.metrics.translate.observe_ns(elapsed);
        tenant.metrics.translations.fetch_add(1, Ordering::Relaxed);
        tenant.metrics.translate.observe_ns(elapsed);
        if result.is_err() {
            tenant.metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        if tenant.is_default {
            // The unlabelled per-backend family indexes the startup
            // registry; only the default tenant's indices map onto it.
            let bm = state.metrics.backend(backend_idx);
            bm.translations.fetch_add(1, Ordering::Relaxed);
            bm.translate.observe_ns(elapsed);
            if result.is_err() {
                bm.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Breaker accounting: `internal` failures (bugs, injected faults)
        // say the *backend* is unhealthy. Input-level outcomes — including
        // structured no_output/invalid_output — are properties of the
        // query, not the backend, and must never trip it.
        let internal_failure = matches!(result, Err(TranslateError::Internal { .. }));
        if breaker.record(!internal_failure, elapsed) {
            state.metrics.breaker_opens.fetch_add(1, Ordering::Relaxed);
        }
        let status = if internal_failure { 500 } else { 200 };
        let body = Arc::new(render_translation(
            &backend_id,
            &key.2,
            &entry,
            want_vegalite,
            &result,
        ));
        if status == 200 {
            // Transient internal failures are never cached — a retry (or
            // the storm simply passing) must be able to succeed.
            state.cache.insert(key, Arc::clone(&body));
        }
        guard.answer(Reply { status, body });
    };
    // The weighted class budgets are keyed by the default tenant's
    // registry order, but admission is by backend *id*: tenant traffic
    // through a backend the default tenant also registers shares that
    // backend's budget (so `backend_weights=` keeps protecting heavy
    // backends no matter which tenant the traffic arrives under). Only a
    // backend the startup registry never saw is admitted unclassed, with
    // the queue-capacity backstop.
    let class = if item.tenant.is_default {
        Some(item.backend_idx)
    } else {
        shared.state.registry.index_of(&item.backend_id)
    };
    match class {
        Some(class) => shared.pool.submit_classed(class, job)?,
        None => shared.pool.submit(job)?,
    }
    Ok(slot)
}

/// `POST /v1/translate` (and `/v1/t/{tenant}/translate`) — single
/// translation against `tenant`, optionally streamed.
fn translate_endpoint<W: BodySink + ?Sized>(
    shared: &Shared,
    req: &Request,
    writer: &mut W,
    tenant: &Arc<TenantRuntime>,
) -> (Route, Handled) {
    let started = Instant::now();
    let state = &shared.state;
    let reply = |resp: Response| (Route::Translate, Handled::Reply(resp));

    // ---- parse + validate ----
    let body_text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return reply(Response::error(400, "body is not UTF-8")),
    };
    let parsed = match Json::parse(body_text) {
        Ok(j) => j,
        Err(e) => return reply(Response::error(400, &format!("invalid JSON: {e}"))),
    };
    let stream = match parsed.get("stream") {
        None => false,
        Some(v) => match v.as_bool() {
            Some(b) => b,
            None => return reply(Response::error(400, "field 'stream' must be a boolean")),
        },
    };
    let item = match resolve_item(tenant, &parsed) {
        Ok(item) => item,
        Err(resp) => return reply(resp),
    };
    let deadline = request_deadline(&state.config, req, started);

    if stream {
        return stream_endpoint(shared, item, writer, deadline);
    }

    // ---- cache fast path (connection thread, no queueing) ----
    // `lookup` (not `get`) so an expired entry survives in place: if the
    // breaker rejects the recompute below, `stale_degraded_body` serves it.
    let key = item.cache_key();
    let lookup = {
        let _span = t2v_trace::span(Stage::CacheLookup);
        state.cache.lookup(&key)
    };
    if let crate::cache::Lookup::Fresh(hit) = lookup {
        item.record_cache(state, true);
        state
            .metrics
            .request_total_latency
            .observe_ns(started.elapsed().as_nanos() as u64);
        // The Arc goes straight into the response — no body copy on a hit.
        return reply(
            Response::json(200, hit)
                .with_header("x-t2v-cache", "hit")
                .with_header("x-t2v-backend", item.backend_id.clone()),
        );
    }
    item.record_cache(state, false);

    // ---- breaker admission, then the CPU stage through the bounded pool ----
    let admission = {
        let _span = t2v_trace::span(Stage::Breaker);
        item.tenant.breakers[item.backend_idx].admit()
    };
    if let Admission::Reject { retry_after_ms } = admission {
        return reply(breaker_rejection(
            shared,
            &item,
            &key,
            retry_after_ms,
            deadline,
        ));
    }
    let slot = match submit_translation(shared, &item, key.clone(), None, deadline) {
        Ok(slot) => slot,
        Err(SubmitError::Overloaded) | Err(SubmitError::ShuttingDown) => {
            if admission == Admission::Probe {
                item.tenant.breakers[item.backend_idx].probe_aborted();
            }
            state.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return reply(
                Response::error(503, "server overloaded").with_header("Retry-After", "1"),
            );
        }
    };
    let wait = deadline
        .map(|d| d.saturating_duration_since(Instant::now()))
        .unwrap_or(Duration::from_secs(60));
    let Some(r) = slot.recv_timeout(wait) else {
        // The budget ran out waiting on the worker. Degrade to a marked
        // stale body when we have one; the orphaned job's reply goes to
        // nobody (and an injected-fault body was never cached anyway).
        if deadline.is_some() {
            state
                .metrics
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            if let Some(body) = stale_degraded_body(shared, &key) {
                return reply(
                    Response::json(200, body)
                        .with_header("x-t2v-cache", "stale")
                        .with_header("x-t2v-degraded", "stale_cache")
                        .with_header("x-t2v-backend", item.backend_id),
                );
            }
            return reply(Response::error(
                504,
                "deadline exceeded before the translation finished",
            ));
        }
        return reply(Response::error(500, "translation timed out"));
    };
    state
        .metrics
        .request_total_latency
        .observe_ns(started.elapsed().as_nanos() as u64);
    reply(
        Response::json(r.status, r.body)
            .with_header("x-t2v-cache", "miss")
            .with_header("x-t2v-backend", item.backend_id),
    )
}

/// The response for a request whose backend breaker is open: walk the
/// degradation ladder — a stale-but-marked cache hit, then a fallback
/// through the tenant's cheap `gred` backend — before admitting defeat
/// with a structured 503 `backend_unavailable` + `Retry-After`.
fn breaker_rejection(
    shared: &Shared,
    item: &Item,
    key: &CacheKey,
    retry_after_ms: u64,
    deadline: Option<Instant>,
) -> Response {
    let state = &shared.state;
    state
        .metrics
        .breaker_rejections
        .fetch_add(1, Ordering::Relaxed);
    // The whole ladder is one degradation decision in the trace; notes say
    // which rung answered.
    let _span = t2v_trace::span(Stage::Degrade);
    t2v_trace::note(format!("breaker:open:{}", item.backend_id));
    if let Some(body) = stale_degraded_body(shared, key) {
        return Response::json(200, body)
            .with_header("x-t2v-cache", "stale")
            .with_header("x-t2v-degraded", "stale_cache")
            .with_header("x-t2v-backend", item.backend_id.clone());
    }
    if let Some(resp) = gred_fallback(shared, item, deadline) {
        return resp;
    }
    let secs = retry_after_ms.div_ceil(1000).max(1);
    Response::error_code(
        503,
        "backend_unavailable",
        &format!(
            "backend '{}' is unavailable (circuit open); retry or degrade",
            item.backend_id
        ),
    )
    .with_header("Retry-After", secs.to_string())
}

/// Second rung of the degradation ladder: re-run the request through the
/// tenant's `gred` backend (retrieval is cheap and has no trained weights
/// to be wedged) when the refused backend isn't gred itself and gred's own
/// breaker admits. The body is marked `degraded: fallback:gred`.
fn gred_fallback(shared: &Shared, item: &Item, deadline: Option<Instant>) -> Option<Response> {
    if item.backend_id == "gred" {
        return None;
    }
    let (idx, id, backend) = item.tenant.registry.resolve(Some("gred")).ok()?;
    let fb = Item {
        tenant: Arc::clone(&item.tenant),
        backend_idx: idx,
        backend_id: id.to_string(),
        backend: Arc::clone(backend),
        entry: Arc::clone(&item.entry),
        nlq_normalized: item.nlq_normalized.clone(),
        want_vegalite: item.want_vegalite,
    };
    let key = fb.cache_key();
    let degraded_ok = |body: Vec<u8>| {
        shared
            .state
            .metrics
            .degraded
            .fetch_add(1, Ordering::Relaxed);
        t2v_trace::note("degrade:fallback:gred");
        Some(
            Response::json(200, body)
                .with_header("x-t2v-degraded", "fallback:gred")
                .with_header("x-t2v-backend", "gred"),
        )
    };
    if let crate::cache::Lookup::Fresh(hit) = shared.state.cache.lookup(&key) {
        return degraded_ok(mark_degraded(&hit, "fallback:gred"));
    }
    let admission = fb.tenant.breakers[idx].admit();
    if matches!(admission, Admission::Reject { .. }) {
        return None;
    }
    let slot = match submit_translation(shared, &fb, key, None, deadline) {
        Ok(slot) => slot,
        Err(_) => {
            if admission == Admission::Probe {
                fb.tenant.breakers[idx].probe_aborted();
            }
            return None;
        }
    };
    let wait = deadline
        .map(|d| d.saturating_duration_since(Instant::now()))
        .unwrap_or(Duration::from_secs(60));
    let r = slot.recv_timeout(wait)?;
    if r.status != 200 {
        return None;
    }
    degraded_ok(mark_degraded(&r.body, "fallback:gred"))
}

/// The NDJSON streaming variant of `/v1/translate`: one line per completed
/// stage as the backend produces it, then the full (non-streamed-identical)
/// response object as the final line. EOF-delimited: the connection closes
/// when the stream ends. Bypasses the cache read path (a cached body has no
/// stages left to stream) but still populates the cache for later requests.
fn stream_endpoint<W: BodySink + ?Sized>(
    shared: &Shared,
    item: Item,
    writer: &mut W,
    deadline: Option<Instant>,
) -> (Route, Handled) {
    let state = &shared.state;
    let key = item.cache_key();
    item.record_cache(state, false);
    let admission = item.tenant.breakers[item.backend_idx].admit();
    if let Admission::Reject { retry_after_ms } = admission {
        state
            .metrics
            .breaker_rejections
            .fetch_add(1, Ordering::Relaxed);
        let secs = retry_after_ms.div_ceil(1000).max(1);
        return (
            Route::Translate,
            Handled::Reply(
                Response::error_code(
                    503,
                    "backend_unavailable",
                    &format!(
                        "backend '{}' is unavailable (circuit open)",
                        item.backend_id
                    ),
                )
                .with_header("Retry-After", secs.to_string()),
            ),
        );
    }
    let (tx, rx) = mpsc::channel::<String>();
    let slot = match submit_translation(shared, &item, key, Some(tx), deadline) {
        Ok(slot) => slot,
        Err(SubmitError::Overloaded) | Err(SubmitError::ShuttingDown) => {
            if admission == Admission::Probe {
                item.tenant.breakers[item.backend_idx].probe_aborted();
            }
            state.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return (
                Route::Translate,
                Handled::Reply(
                    Response::error(503, "server overloaded").with_header("Retry-After", "1"),
                ),
            );
        }
    };
    if http::write_streaming_head(writer, 200, "application/x-ndjson").is_err() {
        return (Route::Translate, Handled::Streamed(200));
    }
    // Relay stage lines until the worker hangs up the channel (it drops the
    // sender when the job finishes), then emit the final body. One shared
    // deadline (the request budget, or 60 s with deadlines disabled) covers
    // the whole stream, and a dead client ends the relay immediately — no
    // second timeout stacks on top.
    let deadline = deadline.unwrap_or_else(|| Instant::now() + Duration::from_secs(60));
    let mut client_gone = false;
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(line) => {
                if writer
                    .write_all(line.as_bytes())
                    .and_then(|_| writer.write_all(b"\n"))
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    client_gone = true;
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if Instant::now() >= deadline {
                    break;
                }
            }
        }
    }
    if !client_gone {
        let left = deadline.saturating_duration_since(Instant::now());
        if let Some(r) = slot.recv_timeout(left) {
            let _ = writer
                .write_all(&r.body)
                .and_then(|_| writer.write_all(b"\n"))
                .and_then(|_| writer.flush());
        }
    }
    (Route::Translate, Handled::Streamed(200))
}

/// `POST /v1/translate/batch` — `{"requests": [{...}, ...]}` →
/// `{"results": [...]}`, one result object per item in order. Item-level
/// failures (unknown backend/database, overload) are inline structured
/// error objects; only a malformed envelope fails the whole request.
fn batch_endpoint(shared: &Shared, req: &Request, tenant: &Arc<TenantRuntime>) -> Response {
    let started = Instant::now();
    let state = &shared.state;
    let body_text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "body is not UTF-8"),
    };
    let parsed = match Json::parse(body_text) {
        Ok(j) => j,
        Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
    };
    let Some(Json::Arr(requests)) = parsed.get("requests") else {
        return Response::error(400, "missing array field 'requests'");
    };
    if requests.is_empty() {
        return Response::error(400, "'requests' is empty");
    }
    if requests.len() > state.config.max_batch_items {
        return Response::error(
            400,
            &format!(
                "'requests' has {} items; max_batch_items is {}",
                requests.len(),
                state.config.max_batch_items
            ),
        );
    }

    // Phase 1: resolve every item, serve cache hits, submit every *distinct*
    // miss so the pool works on all of them concurrently. Identical items
    // within one batch (same backend × NLQ × db × shape) share a single
    // cold translation instead of racing the cache. An open breaker
    // degrades to a marked stale body or fails the item inline — it never
    // queues doomed work.
    enum Pending {
        Done(Arc<Vec<u8>>),
        Waiting {
            slot: OneShot<Reply>,
            /// Kept for transient-failure retries in phase 2.
            item: Item,
            key: CacheKey,
        },
        Failed(Vec<u8>),
        /// Same key as an earlier item in this batch: reuse its result.
        Dup(usize),
    }
    let deadline = request_deadline(&state.config, req, started);
    let mut in_flight: HashMap<CacheKey, usize> = HashMap::new();
    let pending: Vec<Pending> = requests
        .iter()
        .enumerate()
        .map(|(i, obj)| {
            let item = match resolve_item(tenant, obj) {
                Ok(item) => item,
                // Reuse the single-endpoint error body as the item result.
                Err(resp) => return Pending::Failed(resp.body.as_slice().to_vec()),
            };
            let key = item.cache_key();
            if let Some(&first) = in_flight.get(&key) {
                return Pending::Dup(first);
            }
            // Non-destructive lookup, same reason as the single endpoint:
            // a stale entry must survive for the rejection path below.
            if let crate::cache::Lookup::Fresh(hit) = state.cache.lookup(&key) {
                item.record_cache(state, true);
                return Pending::Done(hit);
            }
            item.record_cache(state, false);
            let admission = item.tenant.breakers[item.backend_idx].admit();
            if let Admission::Reject { .. } = admission {
                state
                    .metrics
                    .breaker_rejections
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(body) = stale_degraded_body(shared, &key) {
                    return Pending::Done(Arc::new(body));
                }
                return Pending::Failed(
                    Response::error_code(
                        503,
                        "backend_unavailable",
                        &format!(
                            "backend '{}' is unavailable (circuit open)",
                            item.backend_id
                        ),
                    )
                    .body
                    .as_slice()
                    .to_vec(),
                );
            }
            in_flight.insert(key.clone(), i);
            match submit_translation(shared, &item, key.clone(), None, deadline) {
                Ok(slot) => Pending::Waiting { slot, item, key },
                Err(_) => {
                    if admission == Admission::Probe {
                        item.tenant.breakers[item.backend_idx].probe_aborted();
                    }
                    state.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    Pending::Failed(
                        Response::error(503, "server overloaded")
                            .body
                            .as_slice()
                            .to_vec(),
                    )
                }
            }
        })
        .collect();

    // Phase 2: collect in order, under one shared deadline (the request
    // budget, or 60 s with deadlines disabled). A transient `internal`
    // failure retries with jittered exponential backoff while budget
    // remains — chaos storms pass; the batch shouldn't fail for one blip.
    let deadline_i = deadline.unwrap_or(started + Duration::from_secs(60));
    let timeout_body = || {
        let (status, msg) = if deadline.is_some() {
            state
                .metrics
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            (504, "deadline exceeded before the translation finished")
        } else {
            (500, "translation timed out")
        };
        Response::error(status, msg).body.as_slice().to_vec()
    };
    // Resolved bodies by item index, so later duplicates can reference
    // earlier results (a Dup always points backwards).
    let mut resolved: Vec<Option<Arc<Vec<u8>>>> = Vec::with_capacity(pending.len());
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(b"{\"results\": [");
    for (i, p) in pending.into_iter().enumerate() {
        if i > 0 {
            out.extend_from_slice(b", ");
        }
        let body: Option<Arc<Vec<u8>>> = match p {
            Pending::Done(body) => Some(body),
            Pending::Failed(bytes) => {
                out.extend_from_slice(&bytes);
                resolved.push(None);
                continue;
            }
            Pending::Waiting { slot, item, key } => {
                let left = deadline_i.saturating_duration_since(Instant::now());
                let mut reply = slot.recv_timeout(left);
                let mut attempt = 0usize;
                while reply.as_ref().is_some_and(|r| r.status == 500)
                    && attempt < state.config.retry_max
                {
                    attempt += 1;
                    let base = state.config.retry_base_ms.max(1);
                    // Deterministic jitter — (item, attempt)-dependent so
                    // concurrent batches don't retry in lockstep, with no
                    // RNG to perturb fault-plan replay.
                    let backoff = base * (1u64 << (attempt - 1).min(6))
                        + (i as u64 * 7 + attempt as u64 * 13) % base;
                    if deadline_i.saturating_duration_since(Instant::now())
                        <= Duration::from_millis(backoff)
                    {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(backoff));
                    if matches!(
                        item.tenant.breakers[item.backend_idx].admit(),
                        Admission::Reject { .. }
                    ) {
                        // The failures already tripped the breaker: stop
                        // hammering, the inline error stands.
                        break;
                    }
                    state.metrics.batch_retries.fetch_add(1, Ordering::Relaxed);
                    match submit_translation(shared, &item, key.clone(), None, deadline) {
                        Ok(slot) => {
                            reply = slot
                                .recv_timeout(deadline_i.saturating_duration_since(Instant::now()))
                        }
                        Err(_) => break,
                    }
                }
                reply.map(|r| r.body)
            }
            Pending::Dup(first) => resolved[first].clone(),
        };
        match &body {
            Some(b) => out.extend_from_slice(b),
            None => out.extend_from_slice(&timeout_body()),
        }
        resolved.push(body);
    }
    out.extend_from_slice(b"]}");
    state
        .metrics
        .request_total_latency
        .observe_ns(started.elapsed().as_nanos() as u64);
    Response::json(200, out)
}

/// Convenience: build state from config and spawn, one call.
pub fn serve(config: ServeConfig) -> Result<Server, StartupError> {
    let state = Arc::new(ServerState::build(config)?);
    Server::spawn(state).map_err(StartupError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gred_only_state() -> (t2v_corpus::Corpus, ServerState) {
        let corpus = generate(&t2v_corpus::CorpusConfig::tiny(7));
        let mut config = ServeConfig::default();
        config.set("backends", "gred").unwrap();
        let state = ServerState::from_corpus(&corpus, config).expect("no snapshot configured");
        (corpus, state)
    }

    #[test]
    fn normalization_lowercases_and_collapses_whitespace() {
        assert_eq!(
            normalize_nlq("  Show   ME\tthe  Wages "),
            "show me the wages"
        );
        assert_eq!(normalize_nlq(""), "");
        assert_eq!(normalize_nlq("   "), "");
        assert_eq!(normalize_nlq("É é"), "é é");
    }

    #[test]
    fn fingerprints_separate_dbs_and_store_params() {
        let corpus = generate(&t2v_corpus::CorpusConfig::tiny(7));
        let a = db_fingerprint(&corpus.databases[0], 7, 30);
        let b = db_fingerprint(&corpus.databases[1], 7, 30);
        let a_rows = db_fingerprint(&corpus.databases[0], 7, 31);
        let a_seed = db_fingerprint(&corpus.databases[0], 8, 30);
        assert_ne!(a, b);
        assert_ne!(a, a_rows);
        assert_ne!(a, a_seed);
        assert_eq!(a, db_fingerprint(&corpus.databases[0], 7, 30));
    }

    #[test]
    fn translate_body_is_deterministic_and_parses() {
        let (corpus, state) = gred_only_state();
        let ex = &corpus.dev[0];
        let entry = state.dbs.get(&corpus.databases[ex.db].id).unwrap();
        let backend = Arc::clone(state.registry.get("gred").unwrap());
        let nlq = normalize_nlq(&ex.nlq);
        let a = translate_body(backend.as_ref(), "gred", &nlq, entry, true);
        let b = translate_body(backend.as_ref(), "gred", &nlq, entry, true);
        assert_eq!(a, b, "same inputs must serialise identical bytes");
        let doc = Json::parse(std::str::from_utf8(&a).unwrap()).unwrap();
        assert_eq!(doc.get("backend").and_then(Json::as_str), Some("gred"));
        let dvq = doc.get("dvq").and_then(Json::as_str).expect("a DVQ");
        t2v_dvq::parse(dvq).unwrap();
        assert!(doc.get("vegalite").is_some());
        // Stages are the full GRED pipeline, name + dvq only (no timings —
        // body bytes must be clock-independent for cache identity).
        let Some(Json::Arr(stages)) = doc.get("stages") else {
            panic!("stages array");
        };
        assert_eq!(stages.len(), 3);
        assert_eq!(
            stages[0].get("name").and_then(Json::as_str),
            Some("generator")
        );
        assert!(stages[0].get("micros").is_none());
    }

    #[test]
    fn translate_body_matches_the_raw_gred_pipeline() {
        // The acceptance bar: the /v1 surface serves byte-serialisations of
        // exactly what the pre-redesign pipeline computed.
        let (corpus, state) = gred_only_state();
        for ex in corpus.dev.iter().take(5) {
            let entry = state.dbs.get(&corpus.databases[ex.db].id).unwrap();
            let backend = Arc::clone(state.registry.get("gred").unwrap());
            let nlq = normalize_nlq(&ex.nlq);
            let body = translate_body(backend.as_ref(), "gred", &nlq, entry, false);
            let doc = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
            let legacy = state.gred.translate(&nlq, &entry.db);
            assert_eq!(
                doc.get("dvq").and_then(Json::as_str),
                legacy.final_dvq(),
                "served DVQ must equal the raw pipeline's"
            );
        }
    }

    #[test]
    fn translation_errors_are_structured_objects() {
        let (_corpus, state) = gred_only_state();
        let entry = state.dbs.values().next().unwrap();
        // A mute backend produces a structured no_output error body.
        let mute = t2v_core::FnBackend::new("mute", |_: &str, _: &Database| None);
        let body = translate_body(&mute, "mute", "show wages", entry, false);
        let doc = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert!(matches!(doc.get("dvq"), Some(Json::Null)));
        let err = doc.get("error").expect("error object");
        assert_eq!(err.get("code").and_then(Json::as_str), Some("no_output"));
        assert!(err
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("mute"));
    }
}
